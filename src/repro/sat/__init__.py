"""SAT substrate: CNF, CDCL solver, Tseitin encoding, equivalence checking."""

from .cnf import CNF
from .solver import ConflictBudgetExceeded, SatResult, SatSolver, solve
from .tseitin import CircuitEncoder, encode_circuit
from .equivalence import (
    structurally_identical,
    structurally_equivalent,
    EquivalenceResult,
    check_equivalence,
    cone_circuit,
    equivalent,
    miter_cnf,
)

__all__ = [
    "CNF",
    "ConflictBudgetExceeded",
    "SatResult",
    "SatSolver",
    "solve",
    "CircuitEncoder",
    "encode_circuit",
    "EquivalenceResult",
    "check_equivalence",
    "cone_circuit",
    "equivalent",
    "miter_cnf",
    "structurally_identical",
    "structurally_equivalent",
]
