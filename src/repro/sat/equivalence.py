"""Combinational equivalence checking (the Synopsys Formality substitute).

Two circuits are equivalent when, for every assignment of the shared primary
inputs, every shared primary output takes the same value.  We build a miter —
both circuits driven by the same inputs, each output pair XORed, the XORs ORed
into a single flag — and ask the SAT solver whether the flag can be 1.

For circuits whose input count is small, an exhaustive-simulation check is
also provided (and used as a cross-check in the tests).

Sharded verification
--------------------
The monolithic miter is one big SAT query, but equivalence is naturally a
conjunction of per-output claims.  When a :class:`~repro.parallel.WorkerPool`
is available (explicitly, or through the ``REPRO_INTRA_WORKERS`` budget),
:func:`check_equivalence` splits the query into one *shard per primary
output*, each restricted to the output's fan-in cones in both circuits:
shards are smaller than the full miter, structurally identical cone pairs
skip SAT entirely, and shards solve concurrently with a deterministic
short-circuit — the first (lowest-index) satisfiable shard wins and later
shards are cancelled.  Verdict, counterexample and conflict count are
bit-identical across the serial, thread and process backends; the legacy
single-query path remains the default when no pool is in budget.
"""

from __future__ import annotations

from concurrent.futures import CancelledError
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..netlist.circuit import Circuit, CircuitError
from ..obs import span
from ..netlist.simulate import exhaustive_patterns, simulate_patterns
from ..netlist.traversal import fanin_cone, transitive_inputs
from ..parallel import WorkerPool, resolve_pool
from .cnf import CNF
from .solver import solve
from .tseitin import CircuitEncoder

__all__ = [
    "EquivalenceResult",
    "check_equivalence",
    "cone_circuit",
    "equivalent",
    "miter_cnf",
    "structurally_identical",
    "structurally_equivalent",
]


@dataclass
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    counterexample: Optional[Dict[str, bool]]
    method: str
    conflicts: int = 0
    #: Number of per-output shards the proof split into (0 = monolithic).
    shards: int = 0

    def __bool__(self) -> bool:
        return self.equivalent


def _common_interface(a: Circuit, b: Circuit) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    inputs_a = set(a.inputs) | set(a.key_inputs)
    inputs_b = set(b.inputs) | set(b.key_inputs)
    if inputs_a != inputs_b:
        raise CircuitError(
            "circuits have different input interfaces: "
            f"only-in-A={sorted(inputs_a - inputs_b)[:5]}, "
            f"only-in-B={sorted(inputs_b - inputs_a)[:5]}"
        )
    outputs_a, outputs_b = set(a.outputs), set(b.outputs)
    if outputs_a != outputs_b:
        raise CircuitError(
            "circuits have different output interfaces: "
            f"only-in-A={sorted(outputs_a - outputs_b)[:5]}, "
            f"only-in-B={sorted(outputs_b - outputs_a)[:5]}"
        )
    return tuple(sorted(inputs_a)), tuple(sorted(outputs_a))


def miter_cnf(
    a: Circuit,
    b: Circuit,
    *,
    key_assignment: Optional[Mapping[str, bool]] = None,
) -> Tuple[CNF, Dict[str, int]]:
    """Build the miter CNF of two circuits over their shared interface.

    Returns the CNF (satisfiable iff the circuits differ) and the mapping from
    shared input names to CNF variables (to decode counterexamples).

    ``key_assignment`` pins key-input nets of either circuit to constants,
    which lets callers check "locked circuit under key k == original".
    """
    key_assignment = dict(key_assignment or {})
    inputs_a = set(a.inputs) | set(a.key_inputs)
    inputs_b = set(b.inputs) | set(b.key_inputs)
    shared_inputs = sorted((inputs_a | inputs_b) - set(key_assignment))
    outputs = sorted(set(a.outputs) & set(b.outputs))
    if not outputs:
        raise CircuitError("circuits share no outputs to compare")

    encoder = CircuitEncoder()
    cnf = encoder.cnf
    shared_vars = {net: cnf.var(f"in::{net}") for net in shared_inputs}
    for net, value in key_assignment.items():
        var = cnf.var(f"in::{net}")
        shared_vars[net] = var
        cnf.add_clause([var if value else -var])

    share_a = {net: shared_vars[net] for net in inputs_a if net in shared_vars}
    share_b = {net: shared_vars[net] for net in inputs_b if net in shared_vars}
    vars_a = encoder.encode(a, prefix="A::", share_nets=share_a)
    vars_b = encoder.encode(b, prefix="B::", share_nets=share_b)

    xor_vars = []
    for net in outputs:
        va, vb = vars_a[net], vars_b[net]
        x = cnf.new_var()
        cnf.add_clause([-x, va, vb])
        cnf.add_clause([-x, -va, -vb])
        cnf.add_clause([x, -va, vb])
        cnf.add_clause([x, va, -vb])
        xor_vars.append(x)
    # The miter is satisfiable iff some output pair differs.
    cnf.add_clause(xor_vars)
    return cnf, shared_vars


def structurally_identical(a: Circuit, b: Circuit) -> bool:
    """True when both circuits have identical interfaces and identical gates.

    Structural identity (same net names, same cells, same pin connections) is
    a sufficient condition for equivalence and serves as a fast path for the
    removal-success check: a clean protection-logic removal reproduces the
    original netlist gate for gate.
    """
    if set(a.inputs) != set(b.inputs) or set(a.key_inputs) != set(b.key_inputs):
        return False
    if set(a.outputs) != set(b.outputs):
        return False
    gates_a, gates_b = a.gates, b.gates
    if set(gates_a) != set(gates_b):
        return False
    for name, gate in gates_a.items():
        other = gates_b[name]
        if gate.cell.name != other.cell.name:
            return False
        if gate.cell.name in _COMMUTATIVE_CELLS:
            if sorted(gate.inputs) != sorted(other.inputs):
                return False
        elif gate.inputs != other.inputs:
            return False
    return True


_COMMUTATIVE_CELLS = frozenset(
    {
        "AND", "NAND", "OR", "NOR", "XOR", "XNOR",
        "AND2", "AND3", "AND4", "NAND2", "NAND3", "NAND4",
        "OR2", "OR3", "OR4", "NOR2", "NOR3", "NOR4",
        "XOR2", "XOR3", "XNOR2", "XNOR3", "MAJ3",
    }
)


def structurally_equivalent(a: Circuit, b: Circuit) -> bool:
    """Structural equivalence up to internal net renaming.

    Every net is assigned a canonical identifier by hash-consing the DAG from
    the primary/key inputs upwards (commutative cells sort their children).
    Two circuits are structurally equivalent when their interfaces match and
    every shared primary output maps to the same canonical identifier.  This
    is sound (no false positives) but incomplete (functionally equal yet
    structurally different circuits are not detected) — exactly what is needed
    as a fast path before the SAT-based proof.
    """
    if set(a.inputs) != set(b.inputs) or set(a.key_inputs) != set(b.key_inputs):
        return False
    if set(a.outputs) != set(b.outputs):
        return False

    structures: Dict[tuple, int] = {}

    def canonical_ids(circuit: Circuit) -> Dict[str, int]:
        ids: Dict[str, int] = {}
        for net in list(circuit.inputs) + list(circuit.key_inputs):
            key = ("leaf", net)
            ids[net] = structures.setdefault(key, len(structures))
        for name in circuit.topological_order():
            gate = circuit.gate(name)
            child_ids = [ids[n] for n in gate.inputs]
            if gate.cell.name in _COMMUTATIVE_CELLS:
                child_ids = sorted(child_ids)
            key = (gate.cell.name, tuple(child_ids))
            ids[name] = structures.setdefault(key, len(structures))
        return ids

    try:
        ids_a = canonical_ids(a)
        ids_b = canonical_ids(b)
    except CircuitError:
        return False
    for po in a.outputs:
        if po not in ids_a or po not in ids_b or ids_a[po] != ids_b[po]:
            return False
    return True


def cone_circuit(
    circuit: Circuit, output: str, *, order: Optional[Sequence[str]] = None
) -> Circuit:
    """The sub-circuit feeding one primary output (its fan-in cone).

    Inputs and key inputs keep their declaration order (restricted to the
    cone's structural support) and gates keep their topological order, so the
    extraction — and everything downstream of it, CNF variable numbering
    included — is deterministic.  Callers extracting many cones of the same
    circuit pass ``order=circuit.topological_order()`` once instead of
    paying the per-call list copy.
    """
    cone = fanin_cone(circuit, output)
    support = transitive_inputs(circuit, output)
    sub = Circuit(f"{circuit.name}.{output}", circuit.library)
    for net in circuit.inputs:
        if net in support:
            sub.add_input(net)
    for net in circuit.key_inputs:
        if net in support:
            sub.add_key_input(net)
    if order is None:
        order = circuit.topological_order()
    for name in order:
        if name in cone:
            gate = circuit.gate(name)
            sub.add_gate(name, gate.cell, gate.inputs)
    sub.add_output(output)
    return sub


def _solve_shard(shard: Tuple) -> Tuple[bool, Optional[Dict[str, bool]], int]:
    """Pool job: decide equivalence of one per-output cone pair.

    Structurally matching cones are accepted without touching the solver —
    on removal-verification workloads most outputs are untouched by the
    attack, so this fast path usually leaves only a handful of real SAT
    shards.  Returns ``(outputs_equal, counterexample, conflicts)``.
    """
    sub_a, sub_b, key_assignment, max_conflicts = shard
    with span("equivalence_shard", output=next(iter(sub_a.outputs), None)) as handle:
        if not key_assignment and (
            structurally_identical(sub_a, sub_b)
            or structurally_equivalent(sub_a, sub_b)
        ):
            handle.tag(structural=True, equal=True)
            return True, None, 0
        cnf, shared_vars = miter_cnf(sub_a, sub_b, key_assignment=key_assignment)
        result = solve(cnf, max_conflicts=max_conflicts)
        if not result.satisfiable:
            handle.tag(structural=False, equal=True)
            return True, None, result.conflicts
        assignment = {net: result.value(var) for net, var in shared_vars.items()}
        handle.tag(structural=False, equal=False)
        return False, assignment, result.conflicts


def _check_sat_sharded(
    a: Circuit,
    b: Circuit,
    key_assignment: Mapping[str, bool],
    outputs: Sequence[str],
    pool: WorkerPool,
    max_conflicts: Optional[int],
) -> EquivalenceResult:
    """Solve one cone-restricted miter per output, concurrently.

    Results are deterministic regardless of backend or completion order: the
    accepted counterexample comes from the lowest-index satisfiable shard
    (exactly the shard a serial in-order scan would have stopped at), the
    conflict count sums the shards that scan would have solved, and an error
    in a shard the scan would have reached first is the error raised.
    """
    shards = []
    order_a = a.topological_order()
    order_b = b.topological_order()
    for output in outputs:
        sub_a = cone_circuit(a, output, order=order_a)
        sub_b = cone_circuit(b, output, order=order_b)
        interface = (
            set(sub_a.inputs) | set(sub_a.key_inputs)
            | set(sub_b.inputs) | set(sub_b.key_inputs)
        )
        keys = {net: bool(v) for net, v in key_assignment.items() if net in interface}
        shards.append((sub_a, sub_b, keys, max_conflicts))

    futures = [pool.submit(_solve_shard, shard) for shard in shards]
    index_of = {future: idx for idx, future in enumerate(futures)}
    outcomes: Dict[int, Tuple[bool, Optional[Dict[str, bool]], int]] = {}
    errors: Dict[int, BaseException] = {}
    winner: Optional[int] = None
    for future in pool.as_completed(futures):
        if future.cancelled():
            continue
        idx = index_of[future]
        try:
            outcomes[idx] = future.result()
        except CancelledError:
            continue
        except Exception as exc:  # noqa: BLE001 - re-raised in index order below
            errors[idx] = exc
            continue
        if not outcomes[idx][0] and (winner is None or idx < winner):
            winner = idx
            for later in futures[winner + 1:]:
                later.cancel()

    for idx in range(len(outputs)):
        if winner is not None and idx > winner:
            break
        if idx in errors:
            raise errors[idx]

    if winner is None:
        conflicts = sum(outcomes[idx][2] for idx in sorted(outcomes))
        return EquivalenceResult(True, None, "sat", conflicts, shards=len(shards))

    conflicts = sum(outcomes[idx][2] for idx in range(winner + 1))
    # Complete the winning cone's assignment to the full shared interface:
    # nets outside the cone cannot influence the differing output, so any
    # constant completes a valid counterexample — False, deterministically.
    assignment = outcomes[winner][1] or {}
    free_inputs = (
        (set(a.inputs) | set(a.key_inputs) | set(b.inputs) | set(b.key_inputs))
        - set(key_assignment)
    )
    counterexample = {net: assignment.get(net, False) for net in sorted(free_inputs)}
    counterexample.update({net: bool(v) for net, v in key_assignment.items()})
    return EquivalenceResult(
        False, counterexample, "sat", conflicts, shards=len(shards)
    )


def check_equivalence(
    a: Circuit,
    b: Circuit,
    *,
    key_assignment: Optional[Mapping[str, bool]] = None,
    method: str = "auto",
    max_conflicts: Optional[int] = None,
    pool: Optional[WorkerPool] = None,
) -> EquivalenceResult:
    """Check combinational equivalence of two circuits.

    Parameters
    ----------
    key_assignment:
        Optional constants for key inputs (of either circuit).  Inputs not
        pinned must exist in both circuits with identical names.
    method:
        ``"auto"`` (default: structural fast path, then SAT), ``"sat"``,
        ``"structural"`` (fast path only; inconclusive -> not equivalent) or
        ``"exhaustive"`` (only for small input counts).
    pool:
        Worker pool for the sharded SAT strategy (one cone-restricted miter
        per shared output).  ``None`` consults the global
        ``REPRO_INTRA_WORKERS`` budget; with no pool in budget the historic
        monolithic query runs, bit-identical to previous releases.
    """
    if method == "exhaustive":
        return _check_exhaustive(a, b, key_assignment or {})
    if method == "structural":
        return EquivalenceResult(
            structurally_identical(a, b) or structurally_equivalent(a, b),
            None,
            "structural",
        )
    if method == "auto":
        if not key_assignment and (
            structurally_identical(a, b) or structurally_equivalent(a, b)
        ):
            return EquivalenceResult(True, None, "structural")
        method = "sat"
    if method != "sat":
        raise ValueError(f"unknown equivalence method {method!r}")

    pool = resolve_pool(pool)
    shared_outputs = sorted(set(a.outputs) & set(b.outputs))
    if pool is not None and len(shared_outputs) > 1:
        return _check_sat_sharded(
            a, b, dict(key_assignment or {}), shared_outputs, pool, max_conflicts
        )

    cnf, shared_vars = miter_cnf(a, b, key_assignment=key_assignment)
    result = solve(cnf, max_conflicts=max_conflicts)
    if not result.satisfiable:
        return EquivalenceResult(True, None, "sat", result.conflicts)
    counterexample = {
        net: result.value(var) for net, var in shared_vars.items()
    }
    return EquivalenceResult(False, counterexample, "sat", result.conflicts)


def _check_exhaustive(
    a: Circuit, b: Circuit, key_assignment: Mapping[str, bool]
) -> EquivalenceResult:
    inputs, outputs = _common_interface_with_keys(a, b, key_assignment)
    if len(inputs) > 18:
        raise CircuitError(
            f"exhaustive equivalence over {len(inputs)} inputs is infeasible"
        )
    patterns = exhaustive_patterns(len(inputs))

    def run(circuit: Circuit) -> np.ndarray:
        order = circuit.all_inputs
        cols = []
        for net in order:
            if net in key_assignment:
                cols.append(np.full(len(patterns), bool(key_assignment[net])))
            else:
                cols.append(patterns[:, inputs.index(net)])
        matrix = np.column_stack(cols) if cols else np.zeros((len(patterns), 0), bool)
        return simulate_patterns(circuit, matrix, input_order=order, outputs=outputs)

    out_a, out_b = run(a), run(b)
    diff = np.any(out_a != out_b, axis=1)
    if not diff.any():
        return EquivalenceResult(True, None, "exhaustive")
    idx = int(np.argmax(diff))
    counterexample = {net: bool(patterns[idx, i]) for i, net in enumerate(inputs)}
    counterexample.update({k: bool(v) for k, v in key_assignment.items()})
    return EquivalenceResult(False, counterexample, "exhaustive")


def _common_interface_with_keys(
    a: Circuit, b: Circuit, key_assignment: Mapping[str, bool]
) -> Tuple[list, Tuple[str, ...]]:
    inputs_a = (set(a.inputs) | set(a.key_inputs)) - set(key_assignment)
    inputs_b = (set(b.inputs) | set(b.key_inputs)) - set(key_assignment)
    if inputs_a != inputs_b:
        raise CircuitError(
            "circuits have different free-input interfaces: "
            f"A-only={sorted(inputs_a - inputs_b)[:5]}, "
            f"B-only={sorted(inputs_b - inputs_a)[:5]}"
        )
    outputs = tuple(sorted(set(a.outputs) & set(b.outputs)))
    if not outputs:
        raise CircuitError("circuits share no outputs to compare")
    return sorted(inputs_a), outputs


def equivalent(a: Circuit, b: Circuit, **kwargs) -> bool:
    """Shorthand for ``check_equivalence(a, b, **kwargs).equivalent``."""
    return check_equivalence(a, b, **kwargs).equivalent
