"""CNF formula representation.

Variables are positive integers; literals are non-zero integers where a
negative literal denotes the negated variable (DIMACS convention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["CNF"]


class CNF:
    """A conjunction of clauses over integer variables."""

    def __init__(self) -> None:
        self._clauses: List[Tuple[int, ...]] = []
        self._n_vars = 0
        self._names: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Variable management
    # ------------------------------------------------------------------
    def new_var(self, name: Optional[str] = None) -> int:
        """Allocate a fresh variable, optionally registering a name for it."""
        self._n_vars += 1
        var = self._n_vars
        if name is not None:
            if name in self._names:
                raise ValueError(f"variable name {name!r} already in use")
            self._names[name] = var
        return var

    def var(self, name: str) -> int:
        """Look up (or lazily create) the variable with the given name."""
        if name not in self._names:
            return self.new_var(name)
        return self._names[name]

    def has_name(self, name: str) -> bool:
        return name in self._names

    @property
    def names(self) -> Dict[str, int]:
        return dict(self._names)

    @property
    def n_vars(self) -> int:
        return self._n_vars

    @property
    def n_clauses(self) -> int:
        return len(self._clauses)

    @property
    def clauses(self) -> List[Tuple[int, ...]]:
        return list(self._clauses)

    def clauses_from(self, start: int) -> List[Tuple[int, ...]]:
        """Clauses appended since index ``start`` (cheap incremental tail).

        Incremental consumers (a live :class:`~repro.sat.solver.SatSolver`
        fed by ``attach_new_clauses``) read only the tail instead of copying
        the whole clause list per query.
        """
        return self._clauses[start:]

    # ------------------------------------------------------------------
    # Clause management
    # ------------------------------------------------------------------
    def add_clause(self, literals: Iterable[int]) -> None:
        clause = tuple(int(l) for l in literals)
        if not clause:
            # An empty clause makes the formula trivially unsatisfiable; keep
            # it so the solver reports UNSAT instead of silently dropping it.
            self._clauses.append(clause)
            return
        for lit in clause:
            if lit == 0:
                raise ValueError("literal 0 is not allowed")
            self._n_vars = max(self._n_vars, abs(lit))
        self._clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def extend(self, other: "CNF", offset: Optional[int] = None) -> None:
        """Append another formula's clauses, shifting its variables by ``offset``."""
        shift = self._n_vars if offset is None else offset
        for clause in other._clauses:
            self.add_clause(
                tuple((lit + shift) if lit > 0 else (lit - shift) for lit in clause)
            )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dimacs(self) -> str:
        """Serialise to DIMACS CNF text."""
        lines = [f"p cnf {self._n_vars} {len(self._clauses)}"]
        for clause in self._clauses:
            lines.append(" ".join(str(l) for l in clause) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse DIMACS CNF text."""
        cnf = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("c") or line.startswith("p"):
                continue
            literals = [int(tok) for tok in line.split()]
            if literals and literals[-1] == 0:
                literals = literals[:-1]
            cnf.add_clause(literals)
        return cnf

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CNF(n_vars={self._n_vars}, n_clauses={len(self._clauses)})"
