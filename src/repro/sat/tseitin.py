"""Tseitin encoding of gate-level netlists into CNF.

Each net in the circuit gets one CNF variable; each gate contributes clauses
constraining its output variable to equal the cell function of its input
variables.  Cells with no hand-written encoding are encoded from their truth
table (exact, fine for the <=5-input cells in our libraries).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..netlist.circuit import Circuit, Gate
from .cnf import CNF

__all__ = ["CircuitEncoder", "encode_circuit"]


class CircuitEncoder:
    """Encode one or more circuits into a shared :class:`CNF` formula.

    Net variables are registered in the CNF under ``f"{prefix}{net}"`` so two
    copies of a circuit (e.g. the two halves of a miter, or the keyed copies
    inside a SAT-attack formulation) can coexist with shared or distinct
    inputs.
    """

    def __init__(self, cnf: Optional[CNF] = None):
        self.cnf = cnf if cnf is not None else CNF()

    def net_var(self, net: str, prefix: str = "") -> int:
        """CNF variable for a circuit net (created on first use)."""
        return self.cnf.var(f"{prefix}{net}")

    # ------------------------------------------------------------------
    def encode(
        self,
        circuit: Circuit,
        *,
        prefix: str = "",
        share_nets: Optional[Dict[str, int]] = None,
    ) -> Dict[str, int]:
        """Encode ``circuit`` and return a mapping net -> CNF variable.

        ``share_nets`` maps net names to pre-existing CNF variables (used to
        tie the primary inputs of two miter halves together).
        """
        var_of: Dict[str, int] = {}
        share_nets = share_nets or {}

        for net in circuit.all_inputs:
            var_of[net] = share_nets.get(net, self.net_var(net, prefix))
        for name in circuit.topological_order():
            gate = circuit.gate(name)
            out_var = share_nets.get(name, self.net_var(name, prefix))
            var_of[name] = out_var
            in_vars = [var_of[n] for n in gate.inputs]
            self._encode_gate(gate, out_var, in_vars)
        return var_of

    # ------------------------------------------------------------------
    def _encode_gate(self, gate: Gate, out: int, ins: List[int]) -> None:
        name = gate.cell.name
        add = self.cnf.add_clause
        if name in ("NOT", "INV"):
            add([out, ins[0]])
            add([-out, -ins[0]])
            return
        if name == "BUF":
            add([out, -ins[0]])
            add([-out, ins[0]])
            return
        if name in ("AND", "AND2", "AND3", "AND4"):
            self._encode_and(out, ins, invert=False)
            return
        if name in ("NAND", "NAND2", "NAND3", "NAND4"):
            self._encode_and(out, ins, invert=True)
            return
        if name in ("OR", "OR2", "OR3", "OR4"):
            self._encode_or(out, ins, invert=False)
            return
        if name in ("NOR", "NOR2", "NOR3", "NOR4"):
            self._encode_or(out, ins, invert=True)
            return
        if name in ("XOR", "XOR2", "XOR3", "XNOR", "XNOR2", "XNOR3"):
            self._encode_xor(out, ins, invert=name.startswith("XN"))
            return
        # Generic truth-table encoding for complex cells (AOI/OAI/MUX/MAJ/...).
        self._encode_truth_table(gate, out, ins)

    def _encode_and(self, out: int, ins: List[int], *, invert: bool) -> None:
        o = -out if invert else out
        for i in ins:
            self.cnf.add_clause([-o, i])
        self.cnf.add_clause([o] + [-i for i in ins])

    def _encode_or(self, out: int, ins: List[int], *, invert: bool) -> None:
        o = -out if invert else out
        for i in ins:
            self.cnf.add_clause([o, -i])
        self.cnf.add_clause([-o] + list(ins))

    def _encode_xor(self, out: int, ins: List[int], *, invert: bool) -> None:
        """Chain XORs pairwise through fresh intermediate variables."""
        acc = ins[0]
        for nxt in ins[1:-1]:
            fresh = self.cnf.new_var()
            self._encode_xor2(fresh, acc, nxt, invert=False)
            acc = fresh
        self._encode_xor2(out, acc, ins[-1], invert=invert)

    def _encode_xor2(self, out: int, a: int, b: int, *, invert: bool) -> None:
        o = -out if invert else out
        self.cnf.add_clause([-o, a, b])
        self.cnf.add_clause([-o, -a, -b])
        self.cnf.add_clause([o, -a, b])
        self.cnf.add_clause([o, a, -b])

    def _encode_truth_table(self, gate: Gate, out: int, ins: List[int]) -> None:
        k = len(ins)
        if k > 8:
            raise ValueError(
                f"cell {gate.cell.name} with {k} inputs is too wide for "
                "truth-table encoding"
            )
        for assignment in itertools.product([False, True], repeat=k):
            value = bool(gate.cell.evaluate(*[np.array(b) for b in assignment]))
            # Clause forbidding (assignment, not value) i.e. asserting
            # out == value whenever inputs match the assignment.
            clause = []
            for var, bit in zip(ins, assignment):
                clause.append(-var if bit else var)
            clause.append(out if value else -out)
            self.cnf.add_clause(clause)


def encode_circuit(circuit: Circuit, *, prefix: str = "") -> Tuple[CNF, Dict[str, int]]:
    """Encode a single circuit; returns (CNF, net -> variable mapping)."""
    encoder = CircuitEncoder()
    var_of = encoder.encode(circuit, prefix=prefix)
    return encoder.cnf, var_of
