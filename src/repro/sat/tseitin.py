"""Tseitin encoding of gate-level netlists into CNF.

Each net in the circuit gets one CNF variable; each gate contributes clauses
constraining its output variable to equal the cell function of its input
variables.  Cells with no hand-written encoding are encoded from their truth
table (exact, fine for the <=5-input cells in our libraries).

Encoding the same circuit repeatedly is a hot path: a miter encodes both
halves, the SAT attack encodes two keyed copies plus one copy per DIP, and
the sharded equivalence checker re-encodes per-output cones.  ``encode``
therefore memoises a per-circuit **encoding template** — the exact variable
allocation order and clause stream of a direct encode, keyed by a structural
fingerprint — and instantiates it by replaying the allocations into the
target CNF.  Instantiation is guaranteed to produce byte-identical clauses
and variable numbering to the direct path (this is asserted by tests, and
``REPRO_CNF_MEMO=0`` disables the cache entirely).
"""

from __future__ import annotations

import hashlib
import itertools
import os
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..netlist.circuit import Circuit, Gate
from .cnf import CNF

__all__ = ["CircuitEncoder", "encode_circuit", "clear_encoding_cache"]


class _EncodingTemplate:
    """Replayable record of one circuit's direct encode.

    ``slots[i]`` names the net bound to template-local variable ``i + 1``
    (``None`` for anonymous auxiliaries, e.g. XOR-chain intermediates), in
    the exact order the direct path allocates them.  ``clauses`` holds the
    clause stream in template-local literals.  ``var_of`` maps each net to
    its template-local variable.
    """

    __slots__ = ("slots", "clauses", "var_of")

    def __init__(
        self,
        slots: Tuple[Optional[str], ...],
        clauses: Tuple[Tuple[int, ...], ...],
        var_of: Dict[str, int],
    ):
        self.slots = slots
        self.clauses = clauses
        self.var_of = var_of


#: fingerprint -> template, LRU-bounded.  Process-local by design: worker
#: processes each warm their own cache.
_TEMPLATE_CACHE: "OrderedDict[bytes, _EncodingTemplate]" = OrderedDict()
_TEMPLATE_CACHE_MAX = 128
_TEMPLATE_LOCK = threading.Lock()

#: Pins cell objects whose id() participates in a cached fingerprint, so a
#: recycled id can never alias a different cell.
_FINGERPRINTED_CELLS: Dict[int, object] = {}


def clear_encoding_cache() -> None:
    """Drop all memoised encoding templates (mainly for tests)."""
    with _TEMPLATE_LOCK:
        _TEMPLATE_CACHE.clear()
        _FINGERPRINTED_CELLS.clear()


def _memo_enabled() -> bool:
    return os.environ.get("REPRO_CNF_MEMO", "1").strip().lower() not in (
        "0",
        "false",
        "off",
    )


def _circuit_fingerprint(circuit: Circuit) -> bytes:
    """Structural fingerprint: same value iff the direct encode is identical.

    Cells are identified by ``id()`` (library cells are process-level
    singletons, and every fingerprinted cell is pinned so ids cannot be
    recycled), nets by name, gates in topological order — exactly the data
    the direct encode consumes.
    """
    h = hashlib.blake2b(digest_size=16)

    def put(token: str) -> None:
        h.update(token.encode())
        h.update(b"\x00")

    for net in circuit.all_inputs:
        put(net)
    h.update(b"\x01")
    for net in circuit.outputs:
        put(net)
    h.update(b"\x01")
    for name in circuit.topological_order():
        gate = circuit.gate(name)
        cell = gate.cell
        _FINGERPRINTED_CELLS.setdefault(id(cell), cell)
        put(name)
        put(str(id(cell)))
        for net in gate.inputs:
            put(net)
        h.update(b"\x02")
    return h.digest()


class CircuitEncoder:
    """Encode one or more circuits into a shared :class:`CNF` formula.

    Net variables are registered in the CNF under ``f"{prefix}{net}"`` so two
    copies of a circuit (e.g. the two halves of a miter, or the keyed copies
    inside a SAT-attack formulation) can coexist with shared or distinct
    inputs.
    """

    def __init__(self, cnf: Optional[CNF] = None):
        self.cnf = cnf if cnf is not None else CNF()

    def net_var(self, net: str, prefix: str = "") -> int:
        """CNF variable for a circuit net (created on first use)."""
        return self.cnf.var(f"{prefix}{net}")

    # ------------------------------------------------------------------
    def encode(
        self,
        circuit: Circuit,
        *,
        prefix: str = "",
        share_nets: Optional[Dict[str, int]] = None,
    ) -> Dict[str, int]:
        """Encode ``circuit`` and return a mapping net -> CNF variable.

        ``share_nets`` maps net names to pre-existing CNF variables (used to
        tie the primary inputs of two miter halves together).

        Repeated encodes of a structurally-identical circuit replay a cached
        template instead of re-walking the netlist; the resulting CNF is
        byte-identical to the direct path in clause order and variable
        numbering.  Set ``REPRO_CNF_MEMO=0`` to force direct encoding.
        """
        if not _memo_enabled():
            return self._encode_direct(circuit, prefix=prefix, share_nets=share_nets)
        if share_nets and any(v > self.cnf.n_vars for v in share_nets.values()):
            # A shared variable above the current allocation high-water mark
            # would make the direct path grow n_vars mid-stream (interleaved
            # with aux allocation); replay cannot mirror that, so don't.
            return self._encode_direct(circuit, prefix=prefix, share_nets=share_nets)
        template = self._template_for(circuit)
        return self._instantiate(template, prefix=prefix, share_nets=share_nets or {})

    @staticmethod
    def _template_for(circuit: Circuit) -> _EncodingTemplate:
        fingerprint = _circuit_fingerprint(circuit)
        with _TEMPLATE_LOCK:
            template = _TEMPLATE_CACHE.get(fingerprint)
            if template is not None:
                _TEMPLATE_CACHE.move_to_end(fingerprint)
                return template
        # Build outside the lock: a direct encode into a private CNF, whose
        # variable numbers 1..n ARE the allocation order.
        recorder = CircuitEncoder(CNF())
        var_of = recorder._encode_direct(circuit)
        private = recorder.cnf
        names_by_var = {var: name for name, var in private.names.items()}
        slots = tuple(names_by_var.get(v) for v in range(1, private.n_vars + 1))
        template = _EncodingTemplate(slots, tuple(private.clauses_from(0)), var_of)
        with _TEMPLATE_LOCK:
            _TEMPLATE_CACHE[fingerprint] = template
            while len(_TEMPLATE_CACHE) > _TEMPLATE_CACHE_MAX:
                _TEMPLATE_CACHE.popitem(last=False)
        return template

    def _instantiate(
        self,
        template: _EncodingTemplate,
        *,
        prefix: str,
        share_nets: Dict[str, int],
    ) -> Dict[str, int]:
        """Replay a template into ``self.cnf``, mirroring the direct path.

        Note the direct path registers ``prefix + net`` in the CNF *even
        when* ``share_nets`` overrides that net (``dict.get`` evaluates its
        default eagerly), so we do the same — variable numbering must match
        exactly.
        """
        cnf = self.cnf
        mapping = [0]  # 1-based: mapping[local_var] -> target literal base
        for slot in template.slots:
            if slot is None:
                mapping.append(cnf.new_var())
            else:
                allocated = cnf.var(f"{prefix}{slot}")
                mapping.append(share_nets.get(slot, allocated))
        # Every mapped variable is <= cnf.n_vars (allocated above, or a
        # share variable pre-checked by encode()), and template literals are
        # already validated — append straight to the clause list.
        clause_list = cnf._clauses
        for clause in template.clauses:
            clause_list.append(
                tuple(mapping[lit] if lit > 0 else -mapping[-lit] for lit in clause)
            )
        return {net: mapping[local] for net, local in template.var_of.items()}

    def _encode_direct(
        self,
        circuit: Circuit,
        *,
        prefix: str = "",
        share_nets: Optional[Dict[str, int]] = None,
    ) -> Dict[str, int]:
        """Reference encoder: walk the netlist gate by gate."""
        var_of: Dict[str, int] = {}
        share_nets = share_nets or {}

        for net in circuit.all_inputs:
            var_of[net] = share_nets.get(net, self.net_var(net, prefix))
        for name in circuit.topological_order():
            gate = circuit.gate(name)
            out_var = share_nets.get(name, self.net_var(name, prefix))
            var_of[name] = out_var
            in_vars = [var_of[n] for n in gate.inputs]
            self._encode_gate(gate, out_var, in_vars)
        return var_of

    # ------------------------------------------------------------------
    def _encode_gate(self, gate: Gate, out: int, ins: List[int]) -> None:
        name = gate.cell.name
        add = self.cnf.add_clause
        if name in ("NOT", "INV"):
            add([out, ins[0]])
            add([-out, -ins[0]])
            return
        if name == "BUF":
            add([out, -ins[0]])
            add([-out, ins[0]])
            return
        if name in ("AND", "AND2", "AND3", "AND4"):
            self._encode_and(out, ins, invert=False)
            return
        if name in ("NAND", "NAND2", "NAND3", "NAND4"):
            self._encode_and(out, ins, invert=True)
            return
        if name in ("OR", "OR2", "OR3", "OR4"):
            self._encode_or(out, ins, invert=False)
            return
        if name in ("NOR", "NOR2", "NOR3", "NOR4"):
            self._encode_or(out, ins, invert=True)
            return
        if name in ("XOR", "XOR2", "XOR3", "XNOR", "XNOR2", "XNOR3"):
            self._encode_xor(out, ins, invert=name.startswith("XN"))
            return
        # Generic truth-table encoding for complex cells (AOI/OAI/MUX/MAJ/...).
        self._encode_truth_table(gate, out, ins)

    def _encode_and(self, out: int, ins: List[int], *, invert: bool) -> None:
        o = -out if invert else out
        for i in ins:
            self.cnf.add_clause([-o, i])
        self.cnf.add_clause([o] + [-i for i in ins])

    def _encode_or(self, out: int, ins: List[int], *, invert: bool) -> None:
        o = -out if invert else out
        for i in ins:
            self.cnf.add_clause([o, -i])
        self.cnf.add_clause([-o] + list(ins))

    def _encode_xor(self, out: int, ins: List[int], *, invert: bool) -> None:
        """Chain XORs pairwise through fresh intermediate variables."""
        acc = ins[0]
        for nxt in ins[1:-1]:
            fresh = self.cnf.new_var()
            self._encode_xor2(fresh, acc, nxt, invert=False)
            acc = fresh
        self._encode_xor2(out, acc, ins[-1], invert=invert)

    def _encode_xor2(self, out: int, a: int, b: int, *, invert: bool) -> None:
        o = -out if invert else out
        self.cnf.add_clause([-o, a, b])
        self.cnf.add_clause([-o, -a, -b])
        self.cnf.add_clause([o, -a, b])
        self.cnf.add_clause([o, a, -b])

    def _encode_truth_table(self, gate: Gate, out: int, ins: List[int]) -> None:
        k = len(ins)
        if k > 8:
            raise ValueError(
                f"cell {gate.cell.name} with {k} inputs is too wide for "
                "truth-table encoding"
            )
        for assignment in itertools.product([False, True], repeat=k):
            value = bool(gate.cell.evaluate(*[np.array(b) for b in assignment]))
            # Clause forbidding (assignment, not value) i.e. asserting
            # out == value whenever inputs match the assignment.
            clause = []
            for var, bit in zip(ins, assignment):
                clause.append(-var if bit else var)
            clause.append(out if value else -out)
            self.cnf.add_clause(clause)


def encode_circuit(circuit: Circuit, *, prefix: str = "") -> Tuple[CNF, Dict[str, int]]:
    """Encode a single circuit; returns (CNF, net -> variable mapping)."""
    encoder = CircuitEncoder()
    var_of = encoder.encode(circuit, prefix=prefix)
    return encoder.cnf, var_of
