"""A CDCL SAT solver with an incremental assumption interface.

This replaces the external SAT engines the paper's toolchain relies on
(equivalence checking with Synopsys Formality, the SAT queries inside the FALL
attack, and the classic oracle-guided SAT attack we provide as an extra
baseline).  It implements the standard conflict-driven clause-learning loop:

* two-watched-literal unit propagation,
* 1-UIP conflict analysis with clause learning,
* non-chronological backjumping,
* activity-based (VSIDS-style) decision heuristic with decay,
* Luby-sequence restarts,
* phase saving.

It is not competitive with MiniSat, but it is exact, dependency-free and fast
enough for the miters produced by the scaled benchmark circuits used here.

Incremental use
---------------
A :class:`SatSolver` instance can be queried repeatedly.  ``solve`` accepts
*assumptions* — literals treated as decisions at the first decision levels
(the MiniSat interface) — which are retracted automatically when the call
returns, and :meth:`SatSolver.add_clause` strengthens the live formula between
calls.  Learned clauses, variable activities and saved phases survive across
calls, so a query sequence over one growing formula (the SAT attack's DIP
loop, FALL's pattern enumeration) avoids rebuilding CNF and watch lists per
query and reuses everything learned so far.  Verdicts are always identical to
a fresh solver on the same formula + assumptions; models may legitimately
differ (both are satisfying assignments).

The legacy entry points are unchanged: the module-level :func:`solve` builds a
fresh solver per call, and constructor ``assumptions`` are baked in as unit
clauses (irrevocably — use per-call assumptions for retractable ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import span
from .cnf import CNF

__all__ = ["ConflictBudgetExceeded", "SatResult", "SatSolver", "solve"]


class ConflictBudgetExceeded(RuntimeError):
    """A ``solve(max_conflicts=...)`` call ran out of its conflict budget.

    Budgeted callers (the SAT attack's per-DIP queries, FALL's pattern
    enumeration) catch this specific type instead of a bare ``RuntimeError``,
    so unrelated failures propagate instead of being swallowed as "budget
    exhausted".
    """

    def __init__(self, budget: int, conflicts: int):
        super().__init__(
            f"SAT conflict budget of {budget} exceeded after {conflicts} conflicts"
        )
        self.budget = budget
        self.conflicts = conflicts


@dataclass
class SatResult:
    """Outcome of a SAT query."""

    satisfiable: bool
    assignment: Dict[int, bool]
    conflicts: int
    decisions: int
    propagations: int

    def is_assigned(self, var: int) -> bool:
        """True when the variable has a value in the satisfying assignment."""
        return var in self.assignment

    def value(self, var: int) -> bool:
        """Value of a variable in the satisfying assignment.

        Raises :class:`ValueError` for a variable the model leaves free (or on
        an UNSAT result, where every variable is free) — callers decoding key
        bits must not mistake a free variable for a 0 bit.  Use
        :meth:`is_assigned` / :meth:`value_or` when a free variable is an
        expected outcome.
        """
        try:
            return self.assignment[var]
        except KeyError:
            state = "free in this model" if self.satisfiable else "unassigned (UNSAT result)"
            raise ValueError(f"variable {var} is {state}") from None

    def value_or(self, var: int, default: bool = False) -> bool:
        """Value of a variable, or ``default`` when the model leaves it free."""
        return self.assignment.get(var, default)

    def __bool__(self) -> bool:
        return self.satisfiable


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence 1,1,2,1,1,2,4,..."""
    k = 1
    while (1 << k) - 1 < i:
        k += 1
    if (1 << k) - 1 == i:
        return 1 << (k - 1)
    return _luby(i - (1 << (k - 1)) + 1)


class SatSolver:
    """Conflict-driven clause-learning solver over a :class:`CNF` formula.

    ``phase_seed`` randomises the initial decision phases, which diversifies
    the models returned by repeated enumeration queries (used by the baseline
    attacks when collecting protected-pattern samples).

    The solver snapshots the clauses of ``cnf`` at construction time; clauses
    added to the CNF object afterwards must be fed in explicitly through
    :meth:`add_clause` (or :meth:`attach_new_clauses`).
    """

    def __init__(
        self,
        cnf: CNF,
        assumptions: Sequence[int] = (),
        *,
        phase_seed: Optional[int] = None,
    ):
        self.n_vars = cnf.n_vars
        for lit in assumptions:
            self.n_vars = max(self.n_vars, abs(lit))
        self.clauses: List[List[int]] = []
        self._unsat_on_input = False
        self._pending_units: List[int] = []
        #: Number of CNF clauses already ingested (for attach_new_clauses).
        self._cnf_clauses_seen = cnf.n_clauses

        for clause in list(cnf.clauses) + [(int(l),) for l in assumptions]:
            clause = list(dict.fromkeys(clause))  # dedupe, keep order
            if len(clause) == 0:
                self._unsat_on_input = True
                continue
            if any(-lit in clause for lit in clause):
                continue  # tautology
            if len(clause) == 1:
                self._pending_units.append(clause[0])
            else:
                self.clauses.append(clause)

        size = self.n_vars + 1
        self.assignment: List[Optional[bool]] = [None] * size
        self.level: List[int] = [0] * size
        self.reason: List[Optional[int]] = [None] * size
        self.activity: List[float] = [0.0] * size
        self.phase: List[bool] = [False] * size
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        self.var_inc = 1.0
        self.var_decay = 0.95
        if phase_seed is not None:
            self.set_phase_seed(phase_seed)

        self.watches: Dict[int, List[int]] = {}
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.solve_calls = 0

        for idx, clause in enumerate(self.clauses):
            self._watch(clause[0], idx)
            self._watch(clause[1], idx)

    # ------------------------------------------------------------------
    # Low-level helpers
    # ------------------------------------------------------------------
    def _watch(self, lit: int, clause_idx: int) -> None:
        self.watches.setdefault(lit, []).append(clause_idx)

    def _lit_value(self, lit: int) -> Optional[bool]:
        val = self.assignment[abs(lit)]
        if val is None:
            return None
        return val if lit > 0 else not val

    def _enqueue(self, lit: int, reason: Optional[int]) -> bool:
        """Assign ``lit`` true; returns False if it is already false."""
        current = self._lit_value(lit)
        if current is not None:
            return current
        var = abs(lit)
        self.assignment[var] = lit > 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    def _ensure_var(self, var: int) -> None:
        """Grow the per-variable arrays so ``var`` is addressable."""
        if var < len(self.assignment):
            self.n_vars = max(self.n_vars, var)
            return
        grow = var + 1 - len(self.assignment)
        self.assignment.extend([None] * grow)
        self.level.extend([0] * grow)
        self.reason.extend([None] * grow)
        self.activity.extend([0.0] * grow)
        self.phase.extend([False] * grow)
        self.n_vars = max(self.n_vars, var)

    def set_phase_seed(self, seed: int) -> None:
        """Re-randomise the decision phases (model diversification knob).

        Enumeration loops that previously built a fresh solver per query with
        a different ``phase_seed`` call this between incremental queries to
        keep drawing diverse models.
        """
        import random

        rng = random.Random(seed)
        self.phase = [rng.random() < 0.5 for _ in range(len(self.assignment))]

    # ------------------------------------------------------------------
    # Incremental clause interface
    # ------------------------------------------------------------------
    def add_clause(self, literals: Sequence[int]) -> None:
        """Strengthen the live formula with one clause.

        Sound between ``solve`` calls: the trail is unwound to decision level
        0 first, literals already false at level 0 are dropped (they are
        permanently false) and a clause containing a literal true at level 0
        is permanently satisfied and skipped.
        """
        self._cancel_until(0)
        clause = list(dict.fromkeys(int(l) for l in literals))
        if not clause:
            self._unsat_on_input = True
            return
        if any(-lit in clause for lit in clause):
            return  # tautology
        for lit in clause:
            self._ensure_var(abs(lit))
        reduced: List[int] = []
        for lit in clause:
            val = self._lit_value(lit)
            if val is True:
                return  # satisfied at level 0 forever
            if val is False:
                continue  # permanently false literal
            reduced.append(lit)
        if not reduced:
            self._unsat_on_input = True
            return
        if len(reduced) == 1:
            if not self._enqueue(reduced[0], None):
                self._unsat_on_input = True
            return
        idx = len(self.clauses)
        self.clauses.append(reduced)
        self._watch(reduced[0], idx)
        self._watch(reduced[1], idx)

    def attach_new_clauses(self, cnf: CNF) -> int:
        """Ingest clauses appended to ``cnf`` since the last snapshot.

        Callers that keep encoding into the CNF the solver was built from
        (the SAT attack adds oracle constraints per DIP) call this after each
        encoding burst; returns the number of clauses ingested.
        """
        fresh = cnf.clauses_from(self._cnf_clauses_seen)
        self._cnf_clauses_seen = cnf.n_clauses
        for clause in fresh:
            self.add_clause(clause)
        return len(fresh)

    # ------------------------------------------------------------------
    # Unit propagation (two watched literals)
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[int]:
        """Propagate pending assignments; returns a conflicting clause index."""
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            self.propagations += 1
            false_lit = -lit
            watching = self.watches.get(false_lit, [])
            kept: List[int] = []
            i = 0
            n = len(watching)
            while i < n:
                clause_idx = watching[i]
                i += 1
                clause = self.clauses[clause_idx]
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) is True:
                    kept.append(clause_idx)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watch(clause[1], clause_idx)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(clause_idx)
                if self._lit_value(first) is False:
                    kept.extend(watching[i:])
                    self.watches[false_lit] = kept
                    return clause_idx
                self._enqueue(first, clause_idx)
            self.watches[false_lit] = kept
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.n_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100

    def _analyze(self, conflict_idx: int) -> Tuple[List[int], int]:
        """First-UIP conflict analysis; returns (learned clause, backjump level).

        The asserting literal is placed first in the learned clause.
        """
        current_level = self._decision_level()
        learned_tail: List[int] = []
        seen = [False] * (self.n_vars + 1)
        counter = 0
        resolve_lit: Optional[int] = None
        clause: List[int] = self.clauses[conflict_idx]
        trail_idx = len(self.trail) - 1

        while True:
            for q in clause:
                if resolve_lit is not None and q == resolve_lit:
                    continue
                var = abs(q)
                if seen[var] or self.level[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self.level[var] >= current_level:
                    counter += 1
                else:
                    learned_tail.append(q)
            while not seen[abs(self.trail[trail_idx])]:
                trail_idx -= 1
            resolve_lit = self.trail[trail_idx]
            var = abs(resolve_lit)
            seen[var] = False
            counter -= 1
            trail_idx -= 1
            if counter == 0:
                break
            reason_idx = self.reason[var]
            assert reason_idx is not None, "resolving on a decision before UIP"
            clause = self.clauses[reason_idx]

        learned = [-resolve_lit] + learned_tail
        if len(learned) == 1:
            return learned, 0
        back_level = max(self.level[abs(l)] for l in learned_tail)
        return learned, back_level

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------
    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self.trail_lim[level]
        for lit in reversed(self.trail[limit:]):
            var = abs(lit)
            self.phase[var] = bool(self.assignment[var])
            self.assignment[var] = None
            self.reason[var] = None
        del self.trail[limit:]
        del self.trail_lim[level:]
        self.qhead = min(self.qhead, len(self.trail))

    def _add_learned(self, learned: List[int]) -> None:
        """Record a learned clause and enqueue its asserting literal."""
        if len(learned) == 1:
            self._enqueue(learned[0], None)
            return
        # Watch the asserting literal and a literal from the backjump level.
        idx = len(self.clauses)
        back_level = max(self.level[abs(l)] for l in learned[1:])
        for k in range(1, len(learned)):
            if self.level[abs(learned[k])] == back_level:
                learned[1], learned[k] = learned[k], learned[1]
                break
        self.clauses.append(list(learned))
        self._watch(learned[0], idx)
        self._watch(learned[1], idx)
        self._enqueue(learned[0], idx)

    # ------------------------------------------------------------------
    # Decision heuristic
    # ------------------------------------------------------------------
    def _pick_branch_var(self) -> Optional[int]:
        best_var = None
        best_act = -1.0
        for var in range(1, self.n_vars + 1):
            if self.assignment[var] is None and self.activity[var] > best_act:
                best_var = var
                best_act = self.activity[var]
        return best_var

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        max_conflicts: Optional[int] = None,
    ) -> SatResult:
        """Run the CDCL loop to completion, optionally under assumptions.

        ``assumptions`` are literals decided (in order) at the first decision
        levels and retracted before the call returns, so the solver can be
        re-queried under different assumptions while keeping every clause it
        has learned.  Raises :class:`ConflictBudgetExceeded` if this call
        exceeds ``max_conflicts`` conflicts (the budget is per call, not per
        solver lifetime).
        """
        with span(
            "sat_solve",
            n_vars=self.n_vars,
            n_clauses=len(self.clauses),
            incremental=self.solve_calls > 0,
        ) as handle:
            result = self._solve(list(assumptions), max_conflicts)
            handle.tag(
                satisfiable=bool(result.satisfiable), conflicts=int(result.conflicts)
            )
            return result

    def _solve(
        self, assume: List[int], max_conflicts: Optional[int]
    ) -> SatResult:
        self.solve_calls += 1
        for lit in assume:
            if lit == 0:
                raise ValueError("literal 0 is not allowed as an assumption")
            self._ensure_var(abs(lit))
        self._cancel_until(0)
        if self._unsat_on_input:
            return self._result(False)
        if self._pending_units:
            for lit in self._pending_units:
                if not self._enqueue(lit, None):
                    self._unsat_on_input = True
                    return self._result(False)
            self._pending_units = []

        start_conflicts = self.conflicts
        restart_idx = 1
        restart_budget = 64 * _luby(restart_idx)
        conflicts_since_restart = 0

        while True:
            conflict_idx = self._propagate()
            if conflict_idx is not None:
                self.conflicts += 1
                conflicts_since_restart += 1
                if (
                    max_conflicts is not None
                    and self.conflicts - start_conflicts > max_conflicts
                ):
                    self._cancel_until(0)
                    raise ConflictBudgetExceeded(
                        max_conflicts, self.conflicts - start_conflicts
                    )
                if self._decision_level() == 0:
                    # Conflict independent of any decision or assumption: the
                    # formula itself is unsatisfiable, now and forever.
                    self._unsat_on_input = True
                    return self._result(False)
                learned, back_level = self._analyze(conflict_idx)
                self._cancel_until(back_level)
                self._add_learned(learned)
                self.var_inc /= self.var_decay
                continue

            if conflicts_since_restart >= restart_budget:
                conflicts_since_restart = 0
                restart_idx += 1
                restart_budget = 64 * _luby(restart_idx)
                self._cancel_until(0)
                continue

            # Decide the next unassigned assumption first (in order); fall
            # back to the activity heuristic once all assumptions hold.
            next_lit: Optional[int] = None
            while self._decision_level() < len(assume):
                lit = assume[self._decision_level()]
                val = self._lit_value(lit)
                if val is True:
                    # Already implied: open an empty level so assumption i
                    # stays pinned to decision level i+1.
                    self.trail_lim.append(len(self.trail))
                elif val is False:
                    # The formula (plus earlier assumptions) forces the
                    # negation of this assumption: UNSAT under assumptions.
                    result = self._result(False)
                    self._cancel_until(0)
                    return result
                else:
                    next_lit = lit
                    break
            if next_lit is None:
                var = self._pick_branch_var()
                if var is None:
                    result = self._result(True)
                    self._cancel_until(0)
                    return result
                next_lit = var if self.phase[var] else -var
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(next_lit, None)

    def _result(self, satisfiable: bool) -> SatResult:
        assignment: Dict[int, bool] = {}
        if satisfiable:
            assignment = {
                v: bool(self.assignment[v])
                for v in range(1, self.n_vars + 1)
                if self.assignment[v] is not None
            }
        return SatResult(
            satisfiable, assignment, self.conflicts, self.decisions,
            self.propagations,
        )


def solve(
    cnf: CNF,
    assumptions: Sequence[int] = (),
    *,
    max_conflicts: Optional[int] = None,
    phase_seed: Optional[int] = None,
) -> SatResult:
    """Solve ``cnf`` (optionally under assumption literals) with a fresh solver."""
    return SatSolver(cnf, assumptions, phase_seed=phase_seed).solve(
        max_conflicts=max_conflicts
    )
