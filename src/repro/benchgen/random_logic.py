"""Deterministic random-logic generator.

The paper evaluates on ISCAS-85 and ITC-99 benchmark netlists which we cannot
redistribute here (offline environment).  This module generates synthetic
combinational circuits with the structural properties the attack actually
depends on:

* a realistic mix of gate types (AND/NAND/OR/NOR dominated, some XOR/XNOR,
  inverters and buffers),
* locality of connections (gates mostly read recently created nets) with
  reconvergent fan-out,
* wide primary-input interfaces (logic locking consumes PIs),
* occasional NOR-tree / AND-tree reduction structures, which the paper calls
  out as the design structures most easily confused with SFLL perturb logic.

Generation is fully deterministic given the seed, so datasets are reproducible
across runs and machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..netlist.circuit import Circuit
from ..netlist.gates import BENCH8, CellLibrary

__all__ = ["RandomLogicSpec", "generate_random_circuit", "add_reduction_tree"]


# Relative frequency of each bench-style gate family in generated designs.
_GATE_WEIGHTS = {
    "NAND": 0.24,
    "NOR": 0.16,
    "AND": 0.18,
    "OR": 0.14,
    "NOT": 0.12,
    "XOR": 0.07,
    "XNOR": 0.05,
    "BUF": 0.04,
}


@dataclass(frozen=True)
class RandomLogicSpec:
    """Parameters of a synthetic benchmark circuit."""

    name: str
    n_inputs: int
    n_outputs: int
    n_gates: int
    seed: int
    n_reduction_trees: int = 2
    reduction_tree_width: int = 6
    max_fanin: int = 4

    def __post_init__(self) -> None:
        if self.n_inputs < 2:
            raise ValueError("need at least 2 primary inputs")
        if self.n_outputs < 1:
            raise ValueError("need at least 1 primary output")
        if self.n_gates < self.n_outputs:
            raise ValueError("need at least as many gates as outputs")


def generate_random_circuit(
    spec: RandomLogicSpec, *, library: CellLibrary = BENCH8
) -> Circuit:
    """Generate a deterministic pseudo-random combinational circuit.

    The returned circuit is always in the :data:`~repro.netlist.gates.BENCH8`
    vocabulary (variadic gates); use :func:`repro.synth.technology_map` to
    re-express it in a standard-cell-like library.
    """
    if library is not BENCH8:
        raise ValueError(
            "generate_random_circuit emits BENCH8 netlists; use "
            "repro.synth.technology_map for other libraries"
        )
    rng = np.random.default_rng(spec.seed)
    circuit = Circuit(spec.name, BENCH8)

    inputs = [f"G{i}" for i in range(spec.n_inputs)]
    for net in inputs:
        circuit.add_input(net)

    gate_names = list(_GATE_WEIGHTS)
    gate_probs = np.array([_GATE_WEIGHTS[g] for g in gate_names])
    gate_probs = gate_probs / gate_probs.sum()

    available: List[str] = list(inputs)
    created: List[str] = []

    # Reserve some gates for reduction trees and output buffers.
    tree_budget = spec.n_reduction_trees * max(spec.reduction_tree_width - 1, 1)
    body_gates = max(spec.n_gates - tree_budget, spec.n_outputs)

    for idx in range(body_gates):
        cell = str(rng.choice(gate_names, p=gate_probs))
        if cell in ("NOT", "BUF"):
            fanin = 1
        else:
            fanin = int(rng.integers(2, spec.max_fanin + 1))
        net_name = f"n{idx}"
        chosen = _pick_inputs(rng, available, fanin, n_primary=spec.n_inputs)
        circuit.add_gate(net_name, cell, chosen)
        available.append(net_name)
        created.append(net_name)

    # Insert reduction trees (NOR-tree-like structures over primary inputs).
    for t in range(spec.n_reduction_trees):
        root = add_reduction_tree(
            circuit,
            rng=rng,
            width=spec.reduction_tree_width,
            prefix=f"rt{t}",
            cell="NOR" if t % 2 == 0 else "AND",
        )
        created.append(root)
        available.append(root)

    # Primary outputs: prefer sink gates (no fanout yet) so little logic is dead.
    fanout = circuit.fanout_map()
    sinks = [n for n in created if n not in fanout]
    rng.shuffle(sinks)
    outputs: List[str] = []
    for net in sinks:
        if len(outputs) >= spec.n_outputs:
            break
        outputs.append(net)
    remaining = [n for n in reversed(created) if n not in outputs]
    for net in remaining:
        if len(outputs) >= spec.n_outputs:
            break
        outputs.append(net)
    for net in outputs:
        circuit.add_output(net)
    return circuit


def _pick_inputs(
    rng: np.random.Generator,
    available: Sequence[str],
    fanin: int,
    *,
    n_primary: int,
) -> List[str]:
    """Pick ``fanin`` distinct source nets with a locality bias.

    Recent nets are preferred (geometric-ish bias towards the end of
    ``available``) but primary inputs stay reachable throughout, giving
    shallow, wide circuits similar to the ISCAS/ITC profiles.
    """
    n = len(available)
    chosen: List[str] = []
    attempts = 0
    while len(chosen) < fanin and attempts < 50 * fanin:
        attempts += 1
        if n <= n_primary or rng.random() < 0.35:
            idx = int(rng.integers(0, min(n_primary, n)))
        else:
            # Bias towards recently created nets (locality).
            offset = int(rng.geometric(p=0.15))
            idx = max(n - offset, 0)
        net = available[idx]
        if net not in chosen:
            chosen.append(net)
    while len(chosen) < fanin:
        for net in reversed(available):
            if net not in chosen:
                chosen.append(net)
                break
    return chosen


def add_reduction_tree(
    circuit: Circuit,
    *,
    rng: np.random.Generator,
    width: int,
    prefix: str,
    cell: str = "NOR",
) -> str:
    """Add a ``cell``-tree reducing ``width`` random primary inputs.

    Returns the name of the tree root.  These mimic the NOR-tree structures in
    the original benchmarks that the paper reports as the main source of GNN
    misclassifications (design nodes mistaken for perturb nodes).
    """
    inputs = list(circuit.inputs)
    width = min(width, len(inputs))
    picks = [inputs[int(i)] for i in rng.choice(len(inputs), size=width, replace=False)]
    layer = picks
    level = 0
    while len(layer) > 1:
        next_layer: List[str] = []
        for i in range(0, len(layer) - 1, 2):
            name = circuit.fresh_net_name(f"{prefix}_l{level}_{i // 2}")
            circuit.add_gate(name, cell, [layer[i], layer[i + 1]])
            next_layer.append(name)
        if len(layer) % 2 == 1:
            next_layer.append(layer[-1])
        layer = next_layer
        level += 1
    root = layer[0]
    if root in picks:
        # Degenerate width-1 tree: buffer the input so the root is a gate.
        name = circuit.fresh_net_name(f"{prefix}_buf")
        circuit.add_gate(name, "BUF", [root])
        root = name
    return root
