"""Benchmark profiles: synthetic stand-ins for ISCAS-85 and ITC-99.

The profiles keep the *relative* sizes and interface widths of the original
benchmarks but are scaled down (``size_scale`` gates per original gate) so a
pure-Python/numpy GNN trains in seconds rather than hours.  The original gate
and PI counts are recorded so reports can state the scale factor explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "BenchmarkProfile",
    "ISCAS85_PROFILES",
    "ITC99_PROFILES",
    "ALL_PROFILES",
    "DEFAULT_SIZE_SCALE",
]

#: Fraction of the original benchmark's gate count kept in the synthetic
#: stand-in.  0.06 keeps the ITC-99 circuits in the few-hundred-gate range.
DEFAULT_SIZE_SCALE = 0.06

#: Hard ceilings so the largest circuits (b17_C) stay tractable for a pure
#: numpy GNN and a pure-Python SAT solver.
MAX_SCALED_GATES = 1000
MAX_SCALED_INPUTS = 260


@dataclass(frozen=True)
class BenchmarkProfile:
    """Size/interface profile of one benchmark circuit."""

    name: str
    suite: str
    original_gates: int
    original_inputs: int
    original_outputs: int
    seed: int

    def scaled(self, size_scale: float = DEFAULT_SIZE_SCALE) -> Tuple[int, int, int]:
        """Return (n_inputs, n_outputs, n_gates) for the synthetic stand-in.

        The PI count is scaled more gently than the gate count so that large
        key sizes (the paper uses K up to 128) remain realisable, but circuits
        with originally-few PIs (e.g. c3540) keep that property — the paper
        relies on it to skip K = 64 for c3540.
        """
        n_gates = min(max(int(self.original_gates * size_scale), 40), MAX_SCALED_GATES)
        n_inputs = max(int(self.original_inputs * 0.7), 16)
        n_inputs = min(n_inputs, self.original_inputs, MAX_SCALED_INPUTS)
        n_outputs = max(min(int(self.original_outputs * 0.5), 40), 4)
        return n_inputs, n_outputs, n_gates


# Original sizes from the published benchmark suites (approximate gate counts
# after flattening; PIs/POs exact).
ISCAS85_PROFILES: Dict[str, BenchmarkProfile] = {
    "c2670": BenchmarkProfile("c2670", "ISCAS-85", 1193, 233, 140, seed=2670),
    "c3540": BenchmarkProfile("c3540", "ISCAS-85", 1669, 50, 22, seed=3540),
    "c5315": BenchmarkProfile("c5315", "ISCAS-85", 2307, 178, 123, seed=5315),
    "c7552": BenchmarkProfile("c7552", "ISCAS-85", 3512, 207, 108, seed=7552),
}

ITC99_PROFILES: Dict[str, BenchmarkProfile] = {
    "b14_C": BenchmarkProfile("b14_C", "ITC-99", 9767, 277, 299, seed=1014),
    "b15_C": BenchmarkProfile("b15_C", "ITC-99", 8367, 485, 519, seed=1015),
    "b17_C": BenchmarkProfile("b17_C", "ITC-99", 30777, 1452, 1512, seed=1017),
    "b20_C": BenchmarkProfile("b20_C", "ITC-99", 19682, 522, 512, seed=1020),
    "b21_C": BenchmarkProfile("b21_C", "ITC-99", 20027, 522, 512, seed=1021),
    "b22_C": BenchmarkProfile("b22_C", "ITC-99", 29162, 767, 757, seed=1022),
}

ALL_PROFILES: Dict[str, BenchmarkProfile] = {**ISCAS85_PROFILES, **ITC99_PROFILES}
