"""Benchmark profiles: synthetic stand-ins for ISCAS-85, ITC-99 and SYNTH-XL.

The profiles keep the *relative* sizes and interface widths of the original
benchmarks but are scaled down (``size_scale`` gates per original gate) so a
pure-Python/numpy GNN trains in seconds rather than hours.  The original gate
and PI counts are recorded so reports can state the scale factor explicitly.

Profiles register themselves through :func:`register_profile` — the same
module-level registration idiom as :data:`repro.locking.SCHEMES` — so a new
suite is one block of ``register_profile`` calls and every consumer
(``available_benchmarks``, ``suite_benchmarks``, ``repro run
--list-benchmarks``) discovers it automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "BenchmarkProfile",
    "ISCAS85_PROFILES",
    "ITC99_PROFILES",
    "SYNTHXL_PROFILES",
    "SUITE_PROFILES",
    "ALL_PROFILES",
    "DEFAULT_SIZE_SCALE",
    "register_profile",
]

#: Fraction of the original benchmark's gate count kept in the synthetic
#: stand-in.  0.06 keeps the ITC-99 circuits in the few-hundred-gate range.
DEFAULT_SIZE_SCALE = 0.06

#: Hard ceilings so the largest circuits (b17_C) stay tractable for a pure
#: numpy GNN and a pure-Python SAT solver.
MAX_SCALED_GATES = 1000
MAX_SCALED_INPUTS = 260


@dataclass(frozen=True)
class BenchmarkProfile:
    """Size/interface profile of one benchmark circuit."""

    name: str
    suite: str
    original_gates: int
    original_inputs: int
    original_outputs: int
    seed: int

    def scaled(self, size_scale: float = DEFAULT_SIZE_SCALE) -> Tuple[int, int, int]:
        """Return (n_inputs, n_outputs, n_gates) for the synthetic stand-in.

        The PI count is scaled more gently than the gate count so that large
        key sizes (the paper uses K up to 128) remain realisable, but circuits
        with originally-few PIs (e.g. c3540) keep that property — the paper
        relies on it to skip K = 64 for c3540.
        """
        n_gates = min(max(int(self.original_gates * size_scale), 40), MAX_SCALED_GATES)
        n_inputs = max(int(self.original_inputs * 0.7), 16)
        n_inputs = min(n_inputs, self.original_inputs, MAX_SCALED_INPUTS)
        n_outputs = max(min(int(self.original_outputs * 0.5), 40), 4)
        return n_inputs, n_outputs, n_gates


#: Profiles grouped by suite name; populated by :func:`register_profile`.
SUITE_PROFILES: Dict[str, Dict[str, BenchmarkProfile]] = {}

#: Every registered profile keyed by benchmark name.
ALL_PROFILES: Dict[str, BenchmarkProfile] = {}


def register_profile(profile: BenchmarkProfile) -> BenchmarkProfile:
    """Register a benchmark profile (module-bottom idiom, like schemes)."""
    if profile.name in ALL_PROFILES:
        raise ValueError(f"benchmark {profile.name!r} already registered")
    SUITE_PROFILES.setdefault(profile.suite, {})[profile.name] = profile
    ALL_PROFILES[profile.name] = profile
    return profile


# Original sizes from the published benchmark suites (approximate gate counts
# after flattening; PIs/POs exact).
for _profile in (
    BenchmarkProfile("c2670", "ISCAS-85", 1193, 233, 140, seed=2670),
    BenchmarkProfile("c3540", "ISCAS-85", 1669, 50, 22, seed=3540),
    BenchmarkProfile("c5315", "ISCAS-85", 2307, 178, 123, seed=5315),
    BenchmarkProfile("c7552", "ISCAS-85", 3512, 207, 108, seed=7552),
    BenchmarkProfile("b14_C", "ITC-99", 9767, 277, 299, seed=1014),
    BenchmarkProfile("b15_C", "ITC-99", 8367, 485, 519, seed=1015),
    BenchmarkProfile("b17_C", "ITC-99", 30777, 1452, 1512, seed=1017),
    BenchmarkProfile("b20_C", "ITC-99", 19682, 522, 512, seed=1020),
    BenchmarkProfile("b21_C", "ITC-99", 20027, 522, 512, seed=1021),
    BenchmarkProfile("b22_C", "ITC-99", 29162, 767, 757, seed=1022),
    # Scaled-up synthetic circuits: no published counterpart, sized so the
    # stand-ins land near the tractability ceilings and carry enough PIs for
    # the widest key sweeps.
    BenchmarkProfile("xl10k", "SYNTH-XL", 10000, 300, 150, seed=9110),
    BenchmarkProfile("xl16k", "SYNTH-XL", 16000, 380, 190, seed=9116),
    BenchmarkProfile("xl24k", "SYNTH-XL", 24000, 520, 240, seed=9124),
):
    register_profile(_profile)

ISCAS85_PROFILES: Dict[str, BenchmarkProfile] = SUITE_PROFILES["ISCAS-85"]
ITC99_PROFILES: Dict[str, BenchmarkProfile] = SUITE_PROFILES["ITC-99"]
SYNTHXL_PROFILES: Dict[str, BenchmarkProfile] = SUITE_PROFILES["SYNTH-XL"]
