"""Benchmark registry: build (and cache) synthetic ISCAS-85 / ITC-99 stand-ins."""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional

from ..netlist.circuit import Circuit
from ..netlist.gates import BENCH8
from .profiles import (
    ALL_PROFILES,
    DEFAULT_SIZE_SCALE,
    ISCAS85_PROFILES,
    ITC99_PROFILES,
    BenchmarkProfile,
)
from .random_logic import RandomLogicSpec, generate_random_circuit

__all__ = [
    "available_benchmarks",
    "benchmark_profile",
    "get_benchmark",
    "iscas85_benchmarks",
    "itc99_benchmarks",
]


def available_benchmarks(suite: Optional[str] = None) -> List[str]:
    """Names of available benchmarks, optionally filtered by suite."""
    if suite is None:
        return sorted(ALL_PROFILES)
    suite = suite.upper().replace("_", "-")
    return sorted(
        name for name, prof in ALL_PROFILES.items() if prof.suite.upper() == suite
    )


def benchmark_profile(name: str) -> BenchmarkProfile:
    """The size profile of a benchmark (original and scaled dimensions)."""
    try:
        return ALL_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(ALL_PROFILES)}"
        ) from None


@lru_cache(maxsize=64)
def _build(name: str, size_scale: float) -> Circuit:
    profile = benchmark_profile(name)
    n_inputs, n_outputs, n_gates = profile.scaled(size_scale)
    spec = RandomLogicSpec(
        name=name,
        n_inputs=n_inputs,
        n_outputs=n_outputs,
        n_gates=n_gates,
        seed=profile.seed,
        n_reduction_trees=3,
        reduction_tree_width=6,
    )
    return generate_random_circuit(spec)


def get_benchmark(
    name: str, *, size_scale: float = DEFAULT_SIZE_SCALE
) -> Circuit:
    """Return a fresh copy of the synthetic stand-in for ``name``.

    Circuits are generated deterministically (per name and scale) in the
    BENCH8 vocabulary; callers that need a standard-cell netlist apply
    :func:`repro.synth.technology_map`.
    """
    return _build(name, float(size_scale)).copy()


def iscas85_benchmarks(*, size_scale: float = DEFAULT_SIZE_SCALE) -> Dict[str, Circuit]:
    """All ISCAS-85 stand-ins keyed by name."""
    return {
        name: get_benchmark(name, size_scale=size_scale) for name in ISCAS85_PROFILES
    }


def itc99_benchmarks(*, size_scale: float = DEFAULT_SIZE_SCALE) -> Dict[str, Circuit]:
    """All ITC-99 stand-ins keyed by name."""
    return {
        name: get_benchmark(name, size_scale=size_scale) for name in ITC99_PROFILES
    }
