"""Synthetic benchmark circuits standing in for ISCAS-85, ITC-99 and SYNTH-XL."""

from .profiles import (
    ALL_PROFILES,
    DEFAULT_SIZE_SCALE,
    ISCAS85_PROFILES,
    ITC99_PROFILES,
    SUITE_PROFILES,
    SYNTHXL_PROFILES,
    BenchmarkProfile,
    register_profile,
)
from .random_logic import RandomLogicSpec, add_reduction_tree, generate_random_circuit
from .registry import (
    available_benchmarks,
    benchmark_profile,
    get_benchmark,
    iscas85_benchmarks,
    itc99_benchmarks,
)

__all__ = [
    "ALL_PROFILES",
    "DEFAULT_SIZE_SCALE",
    "ISCAS85_PROFILES",
    "ITC99_PROFILES",
    "SUITE_PROFILES",
    "SYNTHXL_PROFILES",
    "BenchmarkProfile",
    "register_profile",
    "RandomLogicSpec",
    "generate_random_circuit",
    "add_reduction_tree",
    "available_benchmarks",
    "benchmark_profile",
    "get_benchmark",
    "iscas85_benchmarks",
    "itc99_benchmarks",
]
