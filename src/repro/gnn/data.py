"""Graph data container shared by the GNN layers, sampler and trainer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = ["GraphData", "normalize_adjacency"]


def normalize_adjacency(adjacency: sp.spmatrix) -> sp.csr_matrix:
    """Row-normalise an adjacency matrix (mean aggregation operator).

    Isolated nodes get an all-zero row, so their neighbourhood mean is the
    zero vector — matching GraphSAGE's behaviour for empty neighbourhoods.
    """
    adjacency = sp.csr_matrix(adjacency, dtype=np.float64)
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    inv = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv[nonzero] = 1.0 / degrees[nonzero]
    return sp.diags(inv) @ adjacency


@dataclass
class GraphData:
    """An attributed graph with node labels and train/validation/test masks.

    ``adjacency`` is the undirected (symmetric) adjacency over all nodes of a
    dataset — typically the block-diagonal composition of many locked-circuit
    graphs, as described in Section IV-B of the paper.
    """

    adjacency: sp.csr_matrix
    features: np.ndarray
    labels: np.ndarray
    train_mask: np.ndarray
    val_mask: np.ndarray
    test_mask: np.ndarray
    node_names: Sequence[str] = field(default_factory=list)
    graph_ids: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        n = self.features.shape[0]
        self.adjacency = sp.csr_matrix(self.adjacency)
        if self.adjacency.shape != (n, n):
            raise ValueError(
                f"adjacency shape {self.adjacency.shape} does not match "
                f"{n} feature rows"
            )
        for name in ("labels", "train_mask", "val_mask", "test_mask"):
            arr = getattr(self, name)
            if arr.shape[0] != n:
                raise ValueError(f"{name} has {arr.shape[0]} entries, expected {n}")
        self.labels = np.asarray(self.labels, dtype=np.int64)
        self.features = np.asarray(self.features, dtype=np.float64)

    @property
    def n_nodes(self) -> int:
        return self.features.shape[0]

    @property
    def n_features(self) -> int:
        return self.features.shape[1]

    @property
    def n_classes(self) -> int:
        return int(self.labels.max()) + 1 if self.labels.size else 0

    def normalized_adjacency(self) -> sp.csr_matrix:
        return normalize_adjacency(self.adjacency)

    def subgraph(self, node_indices: np.ndarray) -> "GraphData":
        """Induced subgraph on ``node_indices`` (used by GraphSAINT sampling)."""
        node_indices = np.asarray(node_indices)
        sub_adj = self.adjacency[node_indices][:, node_indices]
        names = (
            [self.node_names[i] for i in node_indices] if self.node_names else []
        )
        return GraphData(
            adjacency=sub_adj,
            features=self.features[node_indices],
            labels=self.labels[node_indices],
            train_mask=self.train_mask[node_indices],
            val_mask=self.val_mask[node_indices],
            test_mask=self.test_mask[node_indices],
            node_names=names,
            graph_ids=(
                self.graph_ids[node_indices] if self.graph_ids is not None else None
            ),
        )
