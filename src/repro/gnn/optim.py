"""Adam optimiser (the configuration used in the paper, Table II)."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["Adam"]


class Adam:
    """Adam with bias correction; operates in-place on parameter arrays."""

    def __init__(
        self,
        parameters: Sequence[np.ndarray],
        *,
        learning_rate: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        self.parameters = list(parameters)
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._m: List[np.ndarray] = [np.zeros_like(p) for p in self.parameters]
        self._v: List[np.ndarray] = [np.zeros_like(p) for p in self.parameters]
        self._t = 0

    def step(self, gradients: Sequence[np.ndarray]) -> None:
        """Apply one update given gradients aligned with ``parameters``."""
        if len(gradients) != len(self.parameters):
            raise ValueError(
                f"expected {len(self.parameters)} gradients, got {len(gradients)}"
            )
        self._t += 1
        for i, (param, grad) in enumerate(zip(self.parameters, gradients)):
            if self.weight_decay:
                grad = grad + self.weight_decay * param
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * (grad * grad)
            m_hat = self._m[i] / (1 - self.beta1 ** self._t)
            v_hat = self._v[i] / (1 - self.beta2 ** self._t)
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
