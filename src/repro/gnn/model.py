"""The GNNUnlock node-classification model.

Architecture (paper Table II, hidden width configurable):

* input dense layer  ``[|f|, hidden]`` + ReLU,
* GraphSAGE layer 1  ``[2*hidden, hidden]`` (mean + concatenation) + ReLU,
* GraphSAGE layer 2  ``[2*hidden, hidden]`` + ReLU,
* output dense layer ``[hidden, n_classes]`` + softmax,
* dropout 0.1 in front of every trainable layer, Adam optimiser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from .layers import DenseLayer, Dropout, GraphSageLayer

__all__ = ["GnnConfig", "GraphSageClassifier", "softmax", "cross_entropy_loss"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-shift for numerical stability."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy_loss(
    probs: np.ndarray,
    labels: np.ndarray,
    *,
    sample_weight: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray]:
    """Mean weighted cross-entropy and its gradient w.r.t. the logits."""
    n = probs.shape[0]
    if n == 0:
        return 0.0, np.zeros_like(probs)
    eps = 1e-12
    picked = probs[np.arange(n), labels]
    losses = -np.log(picked + eps)
    if sample_weight is None:
        sample_weight = np.ones(n)
    weight_sum = sample_weight.sum() + eps
    loss = float((losses * sample_weight).sum() / weight_sum)
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    grad *= (sample_weight / weight_sum)[:, None]
    return loss, grad


@dataclass(frozen=True)
class GnnConfig:
    """Hyper-parameters of the GNNUnlock model and its training loop.

    The defaults follow the paper (Table II) except for ``hidden_dim`` and the
    epoch budget, which are scaled down so training completes in seconds on a
    CPU; both can be restored to the paper's values (512 / 2000).
    """

    n_features: int = 13
    n_classes: int = 2
    hidden_dim: int = 64
    dropout: float = 0.1
    learning_rate: float = 0.01
    weight_decay: float = 0.0
    epochs: int = 120
    patience: int = 30
    eval_every: int = 5
    class_weighting: bool = True
    sampler: str = "random_walk"
    walk_length: int = 2
    root_nodes: int = 3000
    seed: int = 0

    def describe(self) -> Dict[str, object]:
        """Table II-style description of the configuration."""
        return {
            "Input Layer": f"[{self.n_features}, {self.hidden_dim}]",
            "Hidden Layer 1": f"[{2 * self.hidden_dim}, {self.hidden_dim}]",
            "Hidden Layer 2": f"[{2 * self.hidden_dim}, {self.hidden_dim}]",
            "Output Layer": f"[{self.hidden_dim}, {self.n_classes}]",
            "Aggregation": "Mean with concatenation",
            "Activation": "ReLU",
            "Classification": "Softmax",
            "Optimizer": "Adam",
            "Learning Rate": self.learning_rate,
            "Dropout": self.dropout,
            "Sampler": "Random Walk" if self.sampler == "random_walk" else self.sampler,
            "Walk Length": self.walk_length,
            "Root Nodes": self.root_nodes,
            "Max # Epochs": self.epochs,
        }


class GraphSageClassifier:
    """Two-SAGE-layer node classifier with manual numpy backpropagation."""

    def __init__(self, config: GnnConfig):
        self.config = config
        rng = np.random.default_rng(config.seed)
        d = config.hidden_dim
        self.input_layer = DenseLayer(config.n_features, d, activation="relu", rng=rng)
        self.sage1 = GraphSageLayer(d, d, activation="relu", rng=rng)
        self.sage2 = GraphSageLayer(d, d, activation="relu", rng=rng)
        self.output_layer = DenseLayer(d, config.n_classes, activation=None, rng=rng)
        self.dropouts = [Dropout(config.dropout, rng) for _ in range(4)]
        self._layers = [self.input_layer, self.sage1, self.sage2, self.output_layer]

    # ------------------------------------------------------------------
    def forward(
        self,
        features: np.ndarray,
        adj_norm: sp.csr_matrix,
        *,
        training: bool = False,
    ) -> np.ndarray:
        """Return class probabilities for every node."""
        h = self.dropouts[0].forward(features, training)
        h = self.input_layer.forward(h, training)
        h = self.dropouts[1].forward(h, training)
        h = self.sage1.forward(h, adj_norm, training)
        h = self.dropouts[2].forward(h, training)
        h = self.sage2.forward(h, adj_norm, training)
        h = self.dropouts[3].forward(h, training)
        logits = self.output_layer.forward(h, training)
        return softmax(logits)

    def backward(self, grad_logits: np.ndarray) -> None:
        grad = self.output_layer.backward(grad_logits)
        grad = self.dropouts[3].backward(grad)
        grad = self.sage2.backward(grad)
        grad = self.dropouts[2].backward(grad)
        grad = self.sage1.backward(grad)
        grad = self.dropouts[1].backward(grad)
        grad = self.input_layer.backward(grad)
        self.dropouts[0].backward(grad)

    def predict(self, features: np.ndarray, adj_norm: sp.csr_matrix) -> np.ndarray:
        """Hard class predictions (no dropout)."""
        return self.forward(features, adj_norm, training=False).argmax(axis=1)

    # ------------------------------------------------------------------
    @property
    def parameters(self) -> List[np.ndarray]:
        params: List[np.ndarray] = []
        for layer in self._layers:
            params.extend(layer.parameters)
        return params

    @property
    def gradients(self) -> List[np.ndarray]:
        grads: List[np.ndarray] = []
        for layer in self._layers:
            grads.extend(layer.gradients)
        return grads

    def get_weights(self) -> List[np.ndarray]:
        return [p.copy() for p in self.parameters]

    def set_weights(self, weights: List[np.ndarray]) -> None:
        params = self.parameters
        if len(weights) != len(params):
            raise ValueError("weight list does not match parameter count")
        for param, weight in zip(params, weights):
            param[...] = weight
