"""From-scratch GraphSAGE / GraphSAINT implementation (numpy only)."""

from .data import GraphData, normalize_adjacency
from .layers import DenseLayer, Dropout, GraphSageLayer, glorot
from .model import GnnConfig, GraphSageClassifier, cross_entropy_loss, softmax
from .optim import Adam
from .sampler import RandomWalkSampler, SampledSubgraph, batched_random_walk
from .trainer import Trainer, TrainingHistory, train_node_classifier

__all__ = [
    "GraphData",
    "normalize_adjacency",
    "DenseLayer",
    "Dropout",
    "GraphSageLayer",
    "glorot",
    "GnnConfig",
    "GraphSageClassifier",
    "cross_entropy_loss",
    "softmax",
    "Adam",
    "RandomWalkSampler",
    "SampledSubgraph",
    "batched_random_walk",
    "Trainer",
    "TrainingHistory",
    "train_node_classifier",
]
