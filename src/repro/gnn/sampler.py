"""GraphSAINT-style random-walk mini-batch sampling.

GraphSAINT builds each training mini-batch by sampling a subgraph of the full
training graph and running a complete GNN on it, which keeps the cost per
step independent of the full graph size.  The paper uses the random-walk
sampler with 3000 root nodes and walk length 2.

We implement the random-walk sampler plus the loss-normalisation coefficients:
node ``v``'s loss weight is ``1 / (#subgraphs containing v / #subgraphs)``
estimated from a pre-sampling phase, so frequently sampled nodes do not
dominate the loss (Section 3.2 of the GraphSAINT paper, simplified to node
normalisation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from .data import GraphData

__all__ = ["RandomWalkSampler", "SampledSubgraph"]


@dataclass
class SampledSubgraph:
    """One GraphSAINT mini-batch: an induced subgraph plus loss weights."""

    data: GraphData
    node_indices: np.ndarray
    loss_weights: np.ndarray


class RandomWalkSampler:
    """Random-walk subgraph sampler over the training portion of a graph."""

    def __init__(
        self,
        graph: GraphData,
        *,
        n_roots: int = 3000,
        walk_length: int = 2,
        n_norm_samples: int = 20,
        rng: Optional[np.random.Generator] = None,
    ):
        if n_roots < 1:
            raise ValueError("n_roots must be positive")
        if walk_length < 1:
            raise ValueError("walk_length must be positive")
        self.graph = graph
        self.n_roots = n_roots
        self.walk_length = walk_length
        self.rng = rng if rng is not None else np.random.default_rng()
        self.adjacency = sp.csr_matrix(graph.adjacency)
        self.train_nodes = np.flatnonzero(graph.train_mask)
        if self.train_nodes.size == 0:
            raise ValueError("graph has no training nodes to sample from")
        self._inclusion_counts = np.zeros(graph.n_nodes)
        self._norm_samples = 0
        self._estimate_normalisation(n_norm_samples)

    # ------------------------------------------------------------------
    def _walk_nodes(self) -> np.ndarray:
        """Run random walks from sampled roots; return the visited node set."""
        n_roots = min(self.n_roots, self.train_nodes.size)
        roots = self.rng.choice(self.train_nodes, size=n_roots, replace=True)
        visited = set(int(r) for r in roots)
        indptr, indices = self.adjacency.indptr, self.adjacency.indices
        current = roots.copy()
        for _ in range(self.walk_length):
            next_nodes = []
            for node in current:
                start, end = indptr[node], indptr[node + 1]
                if end > start:
                    nxt = int(indices[self.rng.integers(start, end)])
                else:
                    nxt = int(node)
                next_nodes.append(nxt)
                visited.add(nxt)
            current = np.array(next_nodes)
        return np.array(sorted(visited))

    def _estimate_normalisation(self, n_samples: int) -> None:
        for _ in range(n_samples):
            nodes = self._walk_nodes()
            self._inclusion_counts[nodes] += 1
            self._norm_samples += 1

    # ------------------------------------------------------------------
    def sample(self) -> SampledSubgraph:
        """Draw one mini-batch subgraph."""
        nodes = self._walk_nodes()
        self._inclusion_counts[nodes] += 1
        self._norm_samples += 1
        data = self.graph.subgraph(nodes)
        probs = self._inclusion_counts[nodes] / max(self._norm_samples, 1)
        probs = np.clip(probs, 1e-3, None)
        weights = 1.0 / probs
        weights = weights / weights.mean()
        return SampledSubgraph(data=data, node_indices=nodes, loss_weights=weights)
