"""GraphSAINT-style random-walk mini-batch sampling.

GraphSAINT builds each training mini-batch by sampling a subgraph of the full
training graph and running a complete GNN on it, which keeps the cost per
step independent of the full graph size.  The paper uses the random-walk
sampler with 3000 root nodes and walk length 2.

We implement the random-walk sampler plus the loss-normalisation coefficients:
node ``v``'s loss weight is ``1 / (#subgraphs containing v / #subgraphs)``
estimated from a pre-sampling phase, so frequently sampled nodes do not
dominate the loss (Section 3.2 of the GraphSAINT paper, simplified to node
normalisation).

Walks step through the CSR adjacency in batch: one vectorised
``rng.integers`` call per level replaces the historical per-node Python loop
while consuming the *identical* PCG64 stream (numpy draws array-bounded
integers element by element from the same bit generator), so results are
bit-for-bit what the loop produced.

Parallelism: the pre-sampling normalisation walks are independent, so when a
:class:`~repro.parallel.WorkerPool` is supplied they run as identity-seeded
jobs on the pool.  Per-job seeds derive from the walk index
(:func:`repro.parallel.derive_job_seed`), never from execution order, so the
estimate is bit-identical for every backend and worker count — but it is a
*different* (deliberately parallelisable) stream than the legacy sequential
one, which remains the default whenever no pool is given.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..obs import span
from ..parallel import WorkerPool, derive_job_seed
from .data import GraphData

__all__ = ["RandomWalkSampler", "SampledSubgraph", "batched_random_walk"]


def batched_random_walk(
    indptr: np.ndarray,
    indices: np.ndarray,
    roots: np.ndarray,
    walk_length: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Visited node set of simultaneous random walks over a CSR adjacency.

    All walks advance one level per ``rng.integers`` call; walkers on nodes
    with no outgoing edges stay put (and consume no randomness, matching the
    historical per-node loop's stream exactly).  Returns the sorted unique
    union of every visited node, as ``int64``.
    """
    current = np.asarray(roots, dtype=np.int64)
    visited = [current]
    for _ in range(walk_length):
        starts = indptr[current]
        ends = indptr[current + 1]
        next_nodes = current.copy()
        movable = ends > starts
        if movable.any():
            draws = rng.integers(starts[movable], ends[movable])
            next_nodes[movable] = indices[draws]
        current = next_nodes
        visited.append(current)
    return np.unique(np.concatenate(visited))


def _normalisation_chunk(args: Tuple) -> Tuple[np.ndarray, np.ndarray]:
    """Pool job: inclusion counts of normalisation walks ``start .. stop``.

    Each walk seeds its own generator from its index, so the counts are
    independent of how walks are chunked and of which worker runs them.
    Returns ``(nodes, counts)`` sparsely to keep inter-process traffic small.
    """
    indptr, indices, train_nodes, n_roots, walk_length, base_seed, start, stop = args
    visited: List[np.ndarray] = []
    for walk_idx in range(start, stop):
        rng = np.random.default_rng(derive_job_seed(base_seed, "norm-walk", walk_idx))
        roots = rng.choice(train_nodes, size=n_roots, replace=True)
        visited.append(batched_random_walk(indptr, indices, roots, walk_length, rng))
    if not visited:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.unique(np.concatenate(visited), return_counts=True)


@dataclass
class SampledSubgraph:
    """One GraphSAINT mini-batch: an induced subgraph plus loss weights."""

    data: GraphData
    node_indices: np.ndarray
    loss_weights: np.ndarray


class RandomWalkSampler:
    """Random-walk subgraph sampler over the training portion of a graph.

    ``pool=None`` (the default) keeps the legacy fully sequential RNG stream;
    passing a :class:`~repro.parallel.WorkerPool` switches the normalisation
    pre-sampling phase to identity-seeded pool jobs (see the module
    docstring for the determinism trade-off).
    """

    def __init__(
        self,
        graph: GraphData,
        *,
        n_roots: int = 3000,
        walk_length: int = 2,
        n_norm_samples: int = 20,
        rng: Optional[np.random.Generator] = None,
        pool: Optional[WorkerPool] = None,
    ):
        if n_roots < 1:
            raise ValueError("n_roots must be positive")
        if walk_length < 1:
            raise ValueError("walk_length must be positive")
        self.graph = graph
        self.n_roots = n_roots
        self.walk_length = walk_length
        self.rng = rng if rng is not None else np.random.default_rng()
        self.pool = pool
        self.adjacency = sp.csr_matrix(graph.adjacency)
        self.train_nodes = np.flatnonzero(graph.train_mask)
        if self.train_nodes.size == 0:
            raise ValueError("graph has no training nodes to sample from")
        self._inclusion_counts = np.zeros(graph.n_nodes)
        self._norm_samples = 0
        if pool is None:
            self._estimate_normalisation(n_norm_samples)
        else:
            self._estimate_normalisation_pooled(n_norm_samples, pool)

    # ------------------------------------------------------------------
    def _walk_nodes(self) -> np.ndarray:
        """Run random walks from sampled roots; return the visited node set."""
        n_roots = min(self.n_roots, self.train_nodes.size)
        roots = self.rng.choice(self.train_nodes, size=n_roots, replace=True)
        return batched_random_walk(
            self.adjacency.indptr,
            self.adjacency.indices,
            roots,
            self.walk_length,
            self.rng,
        )

    def _estimate_normalisation(self, n_samples: int) -> None:
        with span("sampling", phase="normalisation", n_samples=n_samples):
            for _ in range(n_samples):
                nodes = self._walk_nodes()
                self._inclusion_counts[nodes] += 1
                self._norm_samples += 1

    def _estimate_normalisation_pooled(self, n_samples: int, pool: WorkerPool) -> None:
        """Estimate inclusion probabilities with independent pool jobs.

        One draw from ``self.rng`` anchors the whole phase; each walk then
        derives its own seed from the walk index, so the resulting counts do
        not depend on the chunking, the backend, or the worker count.
        """
        if n_samples <= 0:
            return
        with span(
            "sampling", phase="normalisation", n_samples=n_samples, pooled=True
        ):
            base_seed = int(self.rng.integers(0, 2**63))
            n_roots = min(self.n_roots, self.train_nodes.size)
            n_chunks = min(n_samples, max(1, pool.max_workers))
            bounds = np.linspace(0, n_samples, n_chunks + 1).astype(int)
            jobs = [
                (
                    self.adjacency.indptr,
                    self.adjacency.indices,
                    self.train_nodes,
                    n_roots,
                    self.walk_length,
                    base_seed,
                    int(start),
                    int(stop),
                )
                for start, stop in zip(bounds[:-1], bounds[1:])
                if stop > start
            ]
            for nodes, counts in pool.map(_normalisation_chunk, jobs):
                self._inclusion_counts[nodes] += counts
            self._norm_samples += n_samples

    # ------------------------------------------------------------------
    def sample(self) -> SampledSubgraph:
        """Draw one mini-batch subgraph.

        Mini-batches always come from the sampler's own sequential generator
        (never the pool), so the training stream is identical whether or not
        normalisation was pooled — and identical under batch prefetching,
        which preserves generation order.
        """
        with span("sampling", phase="batch") as handle:
            nodes = self._walk_nodes()
            self._inclusion_counts[nodes] += 1
            self._norm_samples += 1
            data = self.graph.subgraph(nodes)
            probs = self._inclusion_counts[nodes] / max(self._norm_samples, 1)
            probs = np.clip(probs, 1e-3, None)
            weights = 1.0 / probs
            weights = weights / weights.mean()
            handle.tag(n_nodes=int(nodes.size))
            return SampledSubgraph(data=data, node_indices=nodes, loss_weights=weights)
