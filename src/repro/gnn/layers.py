"""Neural-network layers with manual forward/backward passes (numpy only).

The paper's model (Table II) is a GraphSAGE network with mean aggregation and
concatenation: an input dense layer lifting the raw features to the hidden
width, two SAGE layers whose weight matrices are ``[2*hidden, hidden]``
(concatenation of self and neighbour states), and a dense softmax classifier.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

__all__ = ["DenseLayer", "GraphSageLayer", "Dropout", "glorot"]


def glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


class DenseLayer:
    """Fully connected layer ``Y = act(X W + b)``."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        *,
        activation: Optional[str] = "relu",
        rng: Optional[np.random.Generator] = None,
    ):
        rng = rng if rng is not None else np.random.default_rng()
        self.weight = glorot(rng, in_dim, out_dim)
        self.bias = np.zeros(out_dim)
        self.activation = activation
        self._cache: Dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        z = x @ self.weight + self.bias
        out = np.maximum(z, 0.0) if self.activation == "relu" else z
        self._cache = {"x": x, "z": z}
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x, z = self._cache["x"], self._cache["z"]
        if self.activation == "relu":
            grad_out = grad_out * (z > 0)
        self.grad_weight = x.T @ grad_out
        self.grad_bias = grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    @property
    def parameters(self) -> List[np.ndarray]:
        return [self.weight, self.bias]

    @property
    def gradients(self) -> List[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class GraphSageLayer:
    """GraphSAGE layer with mean aggregation and concatenation.

    ``h_i' = act( [ h_i || mean_{j in N(i)} h_j ] W + b )`` where the mean is
    computed with the row-normalised adjacency operator passed to ``forward``.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        *,
        activation: Optional[str] = "relu",
        rng: Optional[np.random.Generator] = None,
    ):
        rng = rng if rng is not None else np.random.default_rng()
        self.weight = glorot(rng, 2 * in_dim, out_dim)
        self.bias = np.zeros(out_dim)
        self.activation = activation
        self.in_dim = in_dim
        self._cache: Dict[str, object] = {}

    def forward(
        self, x: np.ndarray, adj_norm: sp.csr_matrix, training: bool = False
    ) -> np.ndarray:
        neighbour_mean = adj_norm @ x
        h = np.concatenate([x, neighbour_mean], axis=1)
        z = h @ self.weight + self.bias
        out = np.maximum(z, 0.0) if self.activation == "relu" else z
        self._cache = {"h": h, "z": z, "adj": adj_norm}
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        h, z, adj = self._cache["h"], self._cache["z"], self._cache["adj"]
        if self.activation == "relu":
            grad_out = grad_out * (z > 0)
        self.grad_weight = h.T @ grad_out
        self.grad_bias = grad_out.sum(axis=0)
        grad_h = grad_out @ self.weight.T
        grad_self = grad_h[:, : self.in_dim]
        grad_neigh = grad_h[:, self.in_dim:]
        return grad_self + adj.T @ grad_neigh

    @property
    def parameters(self) -> List[np.ndarray]:
        return [self.weight, self.bias]

    @property
    def gradients(self) -> List[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class Dropout:
    """Inverted dropout."""

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None):
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng if rng is not None else np.random.default_rng()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask
