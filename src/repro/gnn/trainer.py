"""Training loop for the GNNUnlock node classifier.

Training follows the paper's protocol: GraphSAINT random-walk mini-batches
(or full-batch gradient descent for small graphs), Adam, dropout, and
model selection on the validation split — "the model with the best
performance on the validation set is used to evaluate the test set accuracy".

Pipelining: subgraph construction (CSR slicing + row normalisation) and the
numpy training step are independent stages, so with ``prefetch > 0`` a
producer thread samples mini-batches ahead into a bounded queue and
``_train_step`` consumes them.  Batches are generated and consumed strictly
in order from the sampler's own generator, so prefetching is bit-identical
to inline sampling; :class:`TrainingHistory` records how long the consumer
actually blocked waiting for batches (``sample_wait_s``), which is the
number to watch when tuning the prefetch depth.

The sampler's normalisation phase additionally parallelises over a
:class:`~repro.parallel.WorkerPool` when one is passed (see
:mod:`repro.gnn.sampler` for the determinism contract).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from ..obs import span
from ..parallel import WorkerPool
from .data import GraphData
from .model import GnnConfig, GraphSageClassifier, cross_entropy_loss
from .optim import Adam
from .sampler import RandomWalkSampler, SampledSubgraph

__all__ = ["TrainingHistory", "Trainer", "train_node_classifier"]


@dataclass
class TrainingHistory:
    """Per-epoch metrics recorded during training."""

    loss: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)
    best_val_accuracy: float = 0.0
    best_epoch: int = -1
    epochs_run: int = 0
    train_time_s: float = 0.0
    #: Total seconds the training step spent blocked on mini-batch
    #: construction (inline sampling time, or queue wait when prefetching).
    sample_wait_s: float = 0.0


class _BatchPrefetcher:
    """Producer thread filling a bounded queue with sampled mini-batches.

    The producer calls ``sampler.sample()`` — and therefore advances the
    sampler's RNG — in exactly the order the consumer receives batches, so
    training results match inline sampling bit for bit.  Producer exceptions
    are re-raised on the consuming side.
    """

    _STOP = object()

    def __init__(self, sampler: RandomWalkSampler, depth: int):
        self._sampler = sampler
        self._queue: "queue.Queue" = queue.Queue(maxsize=max(1, depth))
        self._stopping = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._produce, name="repro-batch-prefetch", daemon=True
        )
        self._thread.start()

    def _produce(self) -> None:
        try:
            while not self._stopping.is_set():
                batch = self._sampler.sample()
                while not self._stopping.is_set():
                    try:
                        self._queue.put(batch, timeout=0.1)
                        break
                    except queue.Full:
                        continue
        except BaseException as exc:  # noqa: BLE001 - re-raised by get()
            self._error = exc
            self._queue.put(self._STOP)

    def get(self) -> SampledSubgraph:
        item = self._queue.get()
        if item is self._STOP:
            assert self._error is not None
            raise self._error
        return item

    def close(self) -> None:
        self._stopping.set()
        # Unblock a producer waiting on a full queue, then reap the thread.
        # The join is unbounded on purpose: the producer can be at most one
        # sample away from observing the stop flag, and returning while it
        # still runs would leave two threads sharing one numpy Generator.
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        self._thread.join()


class Trainer:
    """Trains a :class:`GraphSageClassifier` on a :class:`GraphData` dataset.

    ``pool`` forwards to the sampler's normalisation phase; ``prefetch`` sets
    the mini-batch queue depth (``None`` enables a depth of 2 whenever a pool
    is supplied, 0 disables prefetching).
    """

    def __init__(
        self,
        model: GraphSageClassifier,
        graph: GraphData,
        *,
        config: Optional[GnnConfig] = None,
        rng: Optional[np.random.Generator] = None,
        pool: Optional[WorkerPool] = None,
        prefetch: Optional[int] = None,
    ):
        self.model = model
        self.graph = graph
        self.config = config if config is not None else model.config
        self.rng = rng if rng is not None else np.random.default_rng(self.config.seed)
        self.pool = pool
        self.prefetch = (2 if pool is not None else 0) if prefetch is None else max(0, prefetch)
        self.optimizer = Adam(
            model.parameters,
            learning_rate=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self.history = TrainingHistory()
        self._full_adj_norm = graph.normalized_adjacency()
        self._class_weights = self._compute_class_weights()
        self._sampler: Optional[RandomWalkSampler] = None
        self._prefetcher: Optional[_BatchPrefetcher] = None
        if self.config.sampler == "random_walk" and graph.train_mask.sum() > 0:
            self._sampler = RandomWalkSampler(
                graph,
                n_roots=self.config.root_nodes,
                walk_length=self.config.walk_length,
                rng=self.rng,
                pool=pool,
            )

    # ------------------------------------------------------------------
    def _compute_class_weights(self) -> np.ndarray:
        n_classes = self.config.n_classes
        if not self.config.class_weighting:
            return np.ones(n_classes)
        train_labels = self.graph.labels[self.graph.train_mask.astype(bool)]
        counts = np.bincount(train_labels, minlength=n_classes).astype(float)
        counts[counts == 0] = 1.0
        weights = counts.sum() / (n_classes * counts)
        return weights

    # ------------------------------------------------------------------
    def _next_batch(self) -> SampledSubgraph:
        waited = time.perf_counter()
        if self._prefetcher is not None:
            batch = self._prefetcher.get()
        else:
            batch = self._sampler.sample()
        self.history.sample_wait_s += time.perf_counter() - waited
        return batch

    def _train_step(self) -> float:
        if self._sampler is not None:
            batch = self._next_batch()
            data = batch.data
            adj_norm = data.normalized_adjacency()
            features, labels = data.features, data.labels
            mask = data.train_mask.astype(bool)
            node_weights = batch.loss_weights
        else:
            data = self.graph
            adj_norm = self._full_adj_norm
            features, labels = data.features, data.labels
            mask = data.train_mask.astype(bool)
            node_weights = np.ones(data.n_nodes)

        probs = self.model.forward(features, adj_norm, training=True)
        sample_weight = np.zeros(len(labels))
        sample_weight[mask] = node_weights[mask] * self._class_weights[labels[mask]]
        loss, grad = cross_entropy_loss(probs, labels, sample_weight=sample_weight)
        self.model.backward(grad)
        self.optimizer.step(self.model.gradients)
        return loss

    def evaluate(self, mask: np.ndarray) -> float:
        """Accuracy of the current model on the nodes selected by ``mask``."""
        mask = mask.astype(bool)
        if not mask.any():
            return 0.0
        predictions = self.model.predict(self.graph.features, self._full_adj_norm)
        return float((predictions[mask] == self.graph.labels[mask]).mean())

    # ------------------------------------------------------------------
    def fit(self) -> TrainingHistory:
        """Run training with validation-based model selection."""
        config = self.config
        best_weights = self.model.get_weights()
        best_val = -1.0
        epochs_without_improvement = 0
        start = time.perf_counter()
        if self._sampler is not None and self.prefetch > 0:
            self._prefetcher = _BatchPrefetcher(self._sampler, self.prefetch)

        try:
            with span("train", epochs=config.epochs) as train_handle:
                for epoch in range(config.epochs):
                    wait_before = self.history.sample_wait_s
                    with span("train_epoch", epoch=epoch + 1) as epoch_handle:
                        loss = self._train_step()
                        # Absorb the existing sample_wait_s accounting: each
                        # epoch span carries its own share of the wait.
                        epoch_handle.tag(
                            loss=float(loss),
                            sample_wait_s=round(
                                self.history.sample_wait_s - wait_before, 6
                            ),
                        )
                    self.history.loss.append(loss)
                    self.history.epochs_run = epoch + 1

                    if (
                        (epoch + 1) % config.eval_every == 0
                        or epoch == config.epochs - 1
                    ):
                        val_acc = self.evaluate(self.graph.val_mask)
                        self.history.val_accuracy.append(val_acc)
                        if val_acc > best_val:
                            best_val = val_acc
                            best_weights = self.model.get_weights()
                            self.history.best_val_accuracy = val_acc
                            self.history.best_epoch = epoch + 1
                            epochs_without_improvement = 0
                        else:
                            epochs_without_improvement += config.eval_every
                        if epochs_without_improvement >= config.patience:
                            break
                train_handle.tag(
                    epochs_run=self.history.epochs_run,
                    sample_wait_s=round(self.history.sample_wait_s, 6),
                )
        finally:
            if self._prefetcher is not None:
                self._prefetcher.close()
                self._prefetcher = None

        self.model.set_weights(best_weights)
        self.history.train_time_s = time.perf_counter() - start
        return self.history


def train_node_classifier(
    graph: GraphData,
    config: Optional[GnnConfig] = None,
    *,
    rng: Optional[np.random.Generator] = None,
    pool: Optional[WorkerPool] = None,
    prefetch: Optional[int] = None,
) -> tuple[GraphSageClassifier, TrainingHistory]:
    """Build, train and return a node classifier for ``graph``."""
    if config is None:
        config = GnnConfig(n_features=graph.n_features, n_classes=graph.n_classes)
    elif config.n_features != graph.n_features or config.n_classes < graph.n_classes:
        config = GnnConfig(
            **{
                **config.__dict__,
                "n_features": graph.n_features,
                "n_classes": max(config.n_classes, graph.n_classes),
            }
        )
    model = GraphSageClassifier(config)
    trainer = Trainer(model, graph, config=config, rng=rng, pool=pool, prefetch=prefetch)
    history = trainer.fit()
    return model, history
