"""Training loop for the GNNUnlock node classifier.

Training follows the paper's protocol: GraphSAINT random-walk mini-batches
(or full-batch gradient descent for small graphs), Adam, dropout, and
model selection on the validation split — "the model with the best
performance on the validation set is used to evaluate the test set accuracy".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from .data import GraphData, normalize_adjacency
from .model import GnnConfig, GraphSageClassifier, cross_entropy_loss
from .optim import Adam
from .sampler import RandomWalkSampler

__all__ = ["TrainingHistory", "Trainer", "train_node_classifier"]


@dataclass
class TrainingHistory:
    """Per-epoch metrics recorded during training."""

    loss: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)
    best_val_accuracy: float = 0.0
    best_epoch: int = -1
    epochs_run: int = 0
    train_time_s: float = 0.0


class Trainer:
    """Trains a :class:`GraphSageClassifier` on a :class:`GraphData` dataset."""

    def __init__(
        self,
        model: GraphSageClassifier,
        graph: GraphData,
        *,
        config: Optional[GnnConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.model = model
        self.graph = graph
        self.config = config if config is not None else model.config
        self.rng = rng if rng is not None else np.random.default_rng(self.config.seed)
        self.optimizer = Adam(
            model.parameters,
            learning_rate=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self.history = TrainingHistory()
        self._full_adj_norm = graph.normalized_adjacency()
        self._class_weights = self._compute_class_weights()
        self._sampler: Optional[RandomWalkSampler] = None
        if self.config.sampler == "random_walk" and graph.train_mask.sum() > 0:
            self._sampler = RandomWalkSampler(
                graph,
                n_roots=self.config.root_nodes,
                walk_length=self.config.walk_length,
                rng=self.rng,
            )

    # ------------------------------------------------------------------
    def _compute_class_weights(self) -> np.ndarray:
        n_classes = self.config.n_classes
        if not self.config.class_weighting:
            return np.ones(n_classes)
        train_labels = self.graph.labels[self.graph.train_mask.astype(bool)]
        counts = np.bincount(train_labels, minlength=n_classes).astype(float)
        counts[counts == 0] = 1.0
        weights = counts.sum() / (n_classes * counts)
        return weights

    # ------------------------------------------------------------------
    def _train_step(self) -> float:
        if self._sampler is not None:
            batch = self._sampler.sample()
            data = batch.data
            adj_norm = data.normalized_adjacency()
            features, labels = data.features, data.labels
            mask = data.train_mask.astype(bool)
            node_weights = batch.loss_weights
        else:
            data = self.graph
            adj_norm = self._full_adj_norm
            features, labels = data.features, data.labels
            mask = data.train_mask.astype(bool)
            node_weights = np.ones(data.n_nodes)

        probs = self.model.forward(features, adj_norm, training=True)
        sample_weight = np.zeros(len(labels))
        sample_weight[mask] = node_weights[mask] * self._class_weights[labels[mask]]
        loss, grad = cross_entropy_loss(probs, labels, sample_weight=sample_weight)
        self.model.backward(grad)
        self.optimizer.step(self.model.gradients)
        return loss

    def evaluate(self, mask: np.ndarray) -> float:
        """Accuracy of the current model on the nodes selected by ``mask``."""
        mask = mask.astype(bool)
        if not mask.any():
            return 0.0
        predictions = self.model.predict(self.graph.features, self._full_adj_norm)
        return float((predictions[mask] == self.graph.labels[mask]).mean())

    # ------------------------------------------------------------------
    def fit(self) -> TrainingHistory:
        """Run training with validation-based model selection."""
        config = self.config
        best_weights = self.model.get_weights()
        best_val = -1.0
        epochs_without_improvement = 0
        start = time.perf_counter()

        for epoch in range(config.epochs):
            loss = self._train_step()
            self.history.loss.append(loss)
            self.history.epochs_run = epoch + 1

            if (epoch + 1) % config.eval_every == 0 or epoch == config.epochs - 1:
                val_acc = self.evaluate(self.graph.val_mask)
                self.history.val_accuracy.append(val_acc)
                if val_acc > best_val:
                    best_val = val_acc
                    best_weights = self.model.get_weights()
                    self.history.best_val_accuracy = val_acc
                    self.history.best_epoch = epoch + 1
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += config.eval_every
                if epochs_without_improvement >= config.patience:
                    break

        self.model.set_weights(best_weights)
        self.history.train_time_s = time.perf_counter() - start
        return self.history


def train_node_classifier(
    graph: GraphData,
    config: Optional[GnnConfig] = None,
    *,
    rng: Optional[np.random.Generator] = None,
) -> tuple[GraphSageClassifier, TrainingHistory]:
    """Build, train and return a node classifier for ``graph``."""
    if config is None:
        config = GnnConfig(n_features=graph.n_features, n_classes=graph.n_classes)
    elif config.n_features != graph.n_features or config.n_classes < graph.n_classes:
        config = GnnConfig(
            **{
                **config.__dict__,
                "n_features": graph.n_features,
                "n_classes": max(config.n_classes, graph.n_classes),
            }
        )
    model = GraphSageClassifier(config)
    trainer = Trainer(model, graph, config=config, rng=rng)
    history = trainer.fit()
    return model, history
