"""``python -m repro`` entry point (see :mod:`repro.runner.cli`)."""

import sys

from .runner.cli import main

if __name__ == "__main__":
    sys.exit(main())
