"""The oracle-guided SAT attack [Subramanyan et al., HOST 2015].

Included as the context baseline motivating PSLL: it breaks traditional
XOR-based locking in a handful of iterations, but Anti-SAT / SFLL force (close
to) one iteration per protected pattern, so a small iteration budget runs out
— which is exactly why the oracle-less GNNUnlock attack matters.

The attack needs an oracle; we use the original (unlocked) circuit as the
functional oracle, which the oracle-guided threat model permits.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..locking.base import LockingResult
from ..parallel import WorkerPool
from ..netlist.circuit import Circuit
from ..netlist.simulate import simulate
from ..sat.cnf import CNF
from ..sat.solver import ConflictBudgetExceeded, SatSolver
from ..sat.tseitin import CircuitEncoder
from ..sat.equivalence import check_equivalence
from .base import BaselineResult

__all__ = ["sat_attack"]


def sat_attack(
    result: LockingResult,
    *,
    max_iterations: int = 64,
    max_conflicts_per_call: int = 400_000,
    verify: bool = True,
    pool: Optional[WorkerPool] = None,
) -> BaselineResult:
    """Run the oracle-guided SAT attack on a locked circuit."""
    locked = result.locked
    oracle = result.original
    key_inputs = list(locked.key_inputs)
    primary_inputs = list(locked.inputs)
    outputs = [po for po in locked.outputs if po in oracle.outputs]
    if not key_inputs:
        return BaselineResult(
            attack="SAT",
            scheme=result.scheme,
            success=False,
            reason="circuit has no key inputs",
        )

    encoder = CircuitEncoder()
    cnf = encoder.cnf
    shared_pi = {net: cnf.var(f"dip::{net}") for net in primary_inputs}
    key_a = {net: cnf.var(f"ka::{net}") for net in key_inputs}
    key_b = {net: cnf.var(f"kb::{net}") for net in key_inputs}
    vars_a = encoder.encode(locked, prefix="A::", share_nets={**shared_pi, **key_a})
    vars_b = encoder.encode(locked, prefix="B::", share_nets={**shared_pi, **key_b})

    # Difference miter: the two keyed copies disagree on some output.  The
    # miter clause carries an activation literal so one incremental solver
    # serves both query shapes: DIP search solves under ``[act]``; the final
    # key extraction solves under ``[-act]``, which satisfies (disables) the
    # miter clause without rebuilding the formula.
    xor_vars = []
    for po in outputs:
        x = cnf.new_var()
        va, vb = vars_a[po], vars_b[po]
        cnf.add_clause([-x, va, vb])
        cnf.add_clause([-x, -va, -vb])
        cnf.add_clause([x, -va, vb])
        cnf.add_clause([x, va, -vb])
        xor_vars.append(x)
    act = cnf.new_var()
    cnf.add_clause(xor_vars + [-act])

    solver = SatSolver(cnf)
    iterations = 0
    dips: List[Dict[str, bool]] = []
    for iterations in range(1, max_iterations + 1):
        try:
            model = solver.solve(
                assumptions=[act], max_conflicts=max_conflicts_per_call
            )
        except ConflictBudgetExceeded:
            return BaselineResult(
                attack="SAT",
                scheme=result.scheme,
                success=False,
                reason="SAT conflict budget exceeded while searching for a DIP",
                statistics={"iterations": iterations, "dips": len(dips)},
            )
        if not model.satisfiable:
            break
        dip = {net: model.value(var) for net, var in shared_pi.items()}
        dips.append(dip)
        oracle_out = simulate(oracle, dip, outputs=outputs)
        oracle_values = {po: bool(oracle_out[po][0]) for po in outputs}
        # Constrain both keyed copies to agree with the oracle on this DIP.
        for key_vars, prefix in ((key_a, "ca"), (key_b, "cb")):
            copy_vars = encoder.encode(
                locked,
                prefix=f"{prefix}{iterations}::",
                share_nets={
                    **{net: _constant_var(cnf, value) for net, value in dip.items()},
                    **key_vars,
                },
            )
            for po in outputs:
                var = copy_vars[po]
                cnf.add_clause([var] if oracle_values[po] else [-var])
        solver.attach_new_clauses(cnf)
    else:
        return BaselineResult(
            attack="SAT",
            scheme=result.scheme,
            success=False,
            reason=f"iteration budget of {max_iterations} DIPs exhausted",
            statistics={"iterations": max_iterations, "dips": len(dips)},
        )

    # UNSAT under [act]: any key satisfying the accumulated constraints is
    # functionally correct.  Retract the miter via [-act] and solve for key
    # copy A on the same solver, keeping everything it has learned.
    final = solver.solve(assumptions=[-act])
    if not final.satisfiable:
        return BaselineResult(
            attack="SAT",
            scheme=result.scheme,
            success=False,
            reason="constraint system became unsatisfiable (no consistent key)",
            statistics={"iterations": iterations, "dips": len(dips)},
        )
    recovered_key = {net: final.value(var) for net, var in key_a.items()}

    success = True
    reason = ""
    if verify:
        try:
            success = check_equivalence(
                locked, oracle, key_assignment=recovered_key, pool=pool
            ).equivalent
            reason = "" if success else "recovered key does not unlock the design"
        except Exception as exc:  # noqa: BLE001
            success = False
            reason = f"key verification failed: {exc}"
    return BaselineResult(
        attack="SAT",
        scheme=result.scheme,
        success=success,
        reason=reason,
        recovered_key=recovered_key,
        statistics={"iterations": iterations, "dips": len(dips)},
    )


def _constant_var(cnf: CNF, value: bool) -> int:
    var = cnf.new_var()
    cnf.add_clause([var] if value else [-var])
    return var
