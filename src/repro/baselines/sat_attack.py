"""The oracle-guided SAT attack [Subramanyan et al., HOST 2015].

Included as the context baseline motivating PSLL: it breaks traditional
XOR-based locking in a handful of iterations, but Anti-SAT / SFLL force (close
to) one iteration per protected pattern, so a small iteration budget runs out
— which is exactly why the oracle-less GNNUnlock attack matters.

The attack needs an oracle; we use the original (unlocked) circuit as the
functional oracle, which the oracle-guided threat model permits.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..locking.base import LockingResult
from ..parallel import WorkerPool
from ..netlist.circuit import Circuit
from ..netlist.simulate import simulate
from ..sat.cnf import CNF
from ..sat.solver import solve
from ..sat.tseitin import CircuitEncoder
from ..sat.equivalence import check_equivalence
from .base import BaselineResult

__all__ = ["sat_attack"]


def sat_attack(
    result: LockingResult,
    *,
    max_iterations: int = 64,
    max_conflicts_per_call: int = 400_000,
    verify: bool = True,
    pool: Optional[WorkerPool] = None,
) -> BaselineResult:
    """Run the oracle-guided SAT attack on a locked circuit."""
    locked = result.locked
    oracle = result.original
    key_inputs = list(locked.key_inputs)
    primary_inputs = list(locked.inputs)
    outputs = [po for po in locked.outputs if po in oracle.outputs]
    if not key_inputs:
        return BaselineResult(
            attack="SAT",
            scheme=result.scheme,
            success=False,
            reason="circuit has no key inputs",
        )

    encoder = CircuitEncoder()
    cnf = encoder.cnf
    shared_pi = {net: cnf.var(f"dip::{net}") for net in primary_inputs}
    key_a = {net: cnf.var(f"ka::{net}") for net in key_inputs}
    key_b = {net: cnf.var(f"kb::{net}") for net in key_inputs}
    vars_a = encoder.encode(locked, prefix="A::", share_nets={**shared_pi, **key_a})
    vars_b = encoder.encode(locked, prefix="B::", share_nets={**shared_pi, **key_b})

    # Difference miter: the two keyed copies disagree on some output.
    xor_vars = []
    for po in outputs:
        x = cnf.new_var()
        va, vb = vars_a[po], vars_b[po]
        cnf.add_clause([-x, va, vb])
        cnf.add_clause([-x, -va, -vb])
        cnf.add_clause([x, -va, vb])
        cnf.add_clause([x, va, -vb])
        xor_vars.append(x)
    cnf.add_clause(xor_vars)

    iterations = 0
    dips: List[Dict[str, bool]] = []
    for iterations in range(1, max_iterations + 1):
        try:
            model = solve(cnf, max_conflicts=max_conflicts_per_call)
        except RuntimeError:
            return BaselineResult(
                attack="SAT",
                scheme=result.scheme,
                success=False,
                reason="SAT conflict budget exceeded while searching for a DIP",
                statistics={"iterations": iterations, "dips": len(dips)},
            )
        if not model.satisfiable:
            break
        dip = {net: model.value(var) for net, var in shared_pi.items()}
        dips.append(dip)
        oracle_out = simulate(oracle, dip, outputs=outputs)
        oracle_values = {po: bool(oracle_out[po][0]) for po in outputs}
        # Constrain both keyed copies to agree with the oracle on this DIP.
        for key_vars, prefix in ((key_a, "ca"), (key_b, "cb")):
            copy_vars = encoder.encode(
                locked,
                prefix=f"{prefix}{iterations}::",
                share_nets={
                    **{net: _constant_var(cnf, value) for net, value in dip.items()},
                    **key_vars,
                },
            )
            for po in outputs:
                var = copy_vars[po]
                cnf.add_clause([var] if oracle_values[po] else [-var])
    else:
        return BaselineResult(
            attack="SAT",
            scheme=result.scheme,
            success=False,
            reason=f"iteration budget of {max_iterations} DIPs exhausted",
            statistics={"iterations": max_iterations, "dips": len(dips)},
        )

    # UNSAT: any key satisfying the accumulated constraints is functionally
    # correct.  Solve the constraint set alone for key copy A.
    final = solve(_strip_miter(cnf, xor_vars))
    if not final.satisfiable:
        return BaselineResult(
            attack="SAT",
            scheme=result.scheme,
            success=False,
            reason="constraint system became unsatisfiable (no consistent key)",
            statistics={"iterations": iterations, "dips": len(dips)},
        )
    recovered_key = {net: final.value(var) for net, var in key_a.items()}

    success = True
    reason = ""
    if verify:
        try:
            success = check_equivalence(
                locked, oracle, key_assignment=recovered_key, pool=pool
            ).equivalent
            reason = "" if success else "recovered key does not unlock the design"
        except Exception as exc:  # noqa: BLE001
            success = False
            reason = f"key verification failed: {exc}"
    return BaselineResult(
        attack="SAT",
        scheme=result.scheme,
        success=success,
        reason=reason,
        recovered_key=recovered_key,
        statistics={"iterations": iterations, "dips": len(dips)},
    )


def _constant_var(cnf: CNF, value: bool) -> int:
    var = cnf.new_var()
    cnf.add_clause([var] if value else [-var])
    return var


def _strip_miter(cnf: CNF, xor_vars: List[int]) -> CNF:
    """Copy of the formula without the output-difference clause.

    The difference clause is the single clause consisting exactly of the
    XOR-flag variables; every other clause (circuit encodings and oracle
    constraints) is kept.
    """
    target = tuple(xor_vars)
    stripped = CNF()
    for _ in range(cnf.n_vars):
        stripped.new_var()
    for clause in cnf.clauses:
        if tuple(clause) == target:
            continue
        stripped.add_clause(clause)
    return stripped
