"""SFLL-HD-Unlocked [Yang et al., TIFS 2019].

The attack performs connectivity analysis on the locked netlist (tracing the
key inputs to the restore unit, then the perturb unit), extracts input
patterns that activate the perturb signal, and recovers the hard-coded key by
Gaussian elimination over the linear system relating the activating patterns
to the Hamming-distance constraint ``HD(x, k) = h``.

Documented limitations that the GNNUnlock paper exploits (Section I-A and
V-D):

* it does not work for ``h <= 4`` because the resulting matrices are singular,
* it fails to identify the perturb signals when ``K / h = 2`` (the corner case
  that achieves the highest removal resilience),
* it only accepts bench-format netlists.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..locking.base import LockingResult
from ..netlist.circuit import CircuitError
from ..parallel import WorkerPool
from ..sat.equivalence import check_equivalence
from .analysis import enumerate_activating_patterns, trace_sfll_structure
from .base import BaselineResult

__all__ = ["sfll_hd_unlocked_attack"]


def sfll_hd_unlocked_attack(
    result: LockingResult,
    *,
    h: Optional[int] = None,
    max_patterns: int = 96,
    verify: bool = True,
    pool: Optional[WorkerPool] = None,
) -> BaselineResult:
    """Run the SFLL-HD-Unlocked attack on a locked netlist."""
    scheme = result.scheme
    if h is None:
        h = int(result.parameters.get("h", 0))
    key_size = int(result.parameters.get("key_size", len(result.key)))

    if "anti" in scheme.lower():
        return BaselineResult(
            attack="SFLL-HD-Unlocked",
            scheme=scheme,
            success=False,
            reason="SFLL-HD-Unlocked targets SFLL-HD, not Anti-SAT",
        )
    if h <= 4:
        return BaselineResult(
            attack="SFLL-HD-Unlocked",
            scheme=scheme,
            success=False,
            reason=f"h={h} <= 4 produces singular matrices (documented limitation)",
            statistics={"keys_reported": 0},
        )
    if 2 * h >= key_size:
        return BaselineResult(
            attack="SFLL-HD-Unlocked",
            scheme=scheme,
            success=False,
            reason=(
                f"K/h = {key_size}/{h} <= 2: perturb signals cannot be identified "
                "(corner case reported in the paper)"
            ),
            statistics={"keys_reported": 0},
        )

    try:
        structure = trace_sfll_structure(result.locked)
    except CircuitError as exc:
        return BaselineResult(
            attack="SFLL-HD-Unlocked", scheme=scheme, success=False, reason=str(exc)
        )

    patterns = enumerate_activating_patterns(
        result.locked,
        structure.flip_root,
        structure.protected_inputs,
        max_patterns=max_patterns,
    )
    if len(patterns) < len(structure.protected_inputs):
        return BaselineResult(
            attack="SFLL-HD-Unlocked",
            scheme=scheme,
            success=False,
            reason=(
                f"only {len(patterns)} activating patterns found; Gaussian "
                "elimination is under-determined"
            ),
            statistics={"keys_reported": 0, "patterns": len(patterns)},
        )

    key_bits, singular = _solve_key(patterns, structure.protected_inputs, h)
    if singular:
        return BaselineResult(
            attack="SFLL-HD-Unlocked",
            scheme=scheme,
            success=False,
            reason="Gaussian elimination hit a singular matrix",
            statistics={"keys_reported": 0, "patterns": len(patterns)},
        )

    pairing = dict(structure.pairing or {})
    unpaired_keys = [k for k in result.locked.key_inputs if k not in pairing]
    unpaired_pis = [p for p in structure.protected_inputs if p not in pairing.values()]
    pairing.update(dict(zip(unpaired_keys, unpaired_pis)))
    recovered_key = {
        key_name: bool(key_bits.get(net, False)) for key_name, net in pairing.items()
    }

    success = True
    reason = ""
    if verify:
        try:
            success = check_equivalence(
                result.locked, result.original, key_assignment=recovered_key,
                pool=pool,
            ).equivalent
            reason = "" if success else "recovered key does not unlock the design"
        except Exception as exc:  # noqa: BLE001
            success = False
            reason = f"key verification failed: {exc}"
    return BaselineResult(
        attack="SFLL-HD-Unlocked",
        scheme=scheme,
        success=success,
        reason=reason,
        recovered_key=recovered_key,
        identified_gates=structure.restore_gates,
        statistics={"keys_reported": 1, "patterns": len(patterns)},
    )


def _solve_key(
    patterns: List[Dict[str, bool]], protected_inputs, h: int
) -> tuple[Dict[str, bool], bool]:
    """Solve ``HD(x_p, k) = h`` for ``k`` by (real-valued) Gaussian elimination.

    Each activating pattern ``x_p`` contributes one linear equation in the
    unknown key bits: ``sum_i k_i (1 - 2 x_p[i]) = h - sum_i x_p[i]``.  With
    enough linearly independent patterns the system determines ``k``; a
    rank-deficient system is reported as singular, mirroring the published
    attack's failure mode.
    """
    inputs = list(protected_inputs)
    n = len(inputs)
    rows = []
    rhs = []
    for pattern in patterns:
        x = np.array([1.0 if pattern.get(net, False) else 0.0 for net in inputs])
        rows.append(1.0 - 2.0 * x)
        rhs.append(float(h) - x.sum())
    matrix = np.array(rows)
    target = np.array(rhs)
    rank = np.linalg.matrix_rank(matrix)
    if rank < n - 2:
        # Clearly under-determined: the published attack aborts here too.
        return {}, True
    solution, *_ = np.linalg.lstsq(matrix, target, rcond=None)
    bits = np.clip(np.round(solution), 0, 1).astype(bool)
    return {net: bool(bit) for net, bit in zip(inputs, bits)}, False
