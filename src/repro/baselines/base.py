"""Common result type for the baseline (prior-art) attacks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..netlist.circuit import Circuit

__all__ = ["BaselineResult"]


@dataclass
class BaselineResult:
    """Outcome of one baseline attack on one locked circuit.

    ``success`` means the attack's own success criterion was met (recovered
    key verified, or recovered netlist equivalent to the original); failures
    record a ``reason`` so Table I / Table VI style capability matrices can
    distinguish "not applicable" from "ran and failed".
    """

    attack: str
    scheme: str
    success: bool
    reason: str = ""
    recovered_key: Optional[Dict[str, bool]] = None
    recovered_circuit: Optional[Circuit] = None
    identified_gates: Tuple[str, ...] = ()
    statistics: Dict[str, object] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.success
