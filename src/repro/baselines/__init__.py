"""Prior-art attacks the paper compares against (Table I, Section V-D)."""

from .base import BaselineResult
from .analysis import SfllStructure, enumerate_activating_patterns, trace_sfll_structure
from .sps import locate_antisat_output, sps_attack
from .fall import fall_attack
from .sfll_hd_unlocked import sfll_hd_unlocked_attack
from .sat_attack import sat_attack

__all__ = [
    "BaselineResult",
    "SfllStructure",
    "trace_sfll_structure",
    "enumerate_activating_patterns",
    "sps_attack",
    "locate_antisat_output",
    "fall_attack",
    "sfll_hd_unlocked_attack",
    "sat_attack",
]
