"""Shared structural analysis used by the FALL and SFLL-HD-Unlocked baselines.

Both prior attacks start the same way: trace the key inputs to locate the
restore unit, derive the protected input set, and walk back from the protected
output to the perturb (functionality-stripped) cone.  Both published tools
only accept bench-format netlists, a restriction Table I calls out; the
functions below enforce the same restriction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..netlist.circuit import Circuit, CircuitError
from ..netlist.gates import BENCH8
from ..netlist.traversal import (
    fanin_cone,
    key_inputs_in_fanin,
    primary_inputs_in_fanin,
    )
from ..sat.solver import ConflictBudgetExceeded, SatSolver
from ..sat.tseitin import CircuitEncoder

__all__ = ["SfllStructure", "trace_sfll_structure", "enumerate_activating_patterns"]

_XOR_CELLS = ("XOR", "XNOR", "XOR2", "XNOR2")


@dataclass
class SfllStructure:
    """Recovered structural decomposition of an SFLL/TTLock-locked netlist."""

    protected_inputs: Tuple[str, ...]
    restore_gates: Tuple[str, ...]
    restoring_xor: str
    stripping_xor: str
    flip_root: str
    protected_output: str
    #: Key input -> protected primary input, read off the comparator gates.
    pairing: Dict[str, str] = None  # type: ignore[assignment]


def trace_sfll_structure(circuit: Circuit) -> SfllStructure:
    """Locate the restore unit, perturb cone and splice XORs of an SFLL netlist.

    Raises :class:`~repro.netlist.circuit.CircuitError` when the netlist is not
    in bench format or the expected structure cannot be found (which is how the
    published tools fail on unexpected inputs).
    """
    if circuit.library is not BENCH8:
        raise CircuitError(
            "FALL / SFLL-HD-Unlocked only accept bench-format netlists "
            f"(got a {circuit.library.name} netlist)"
        )
    if not circuit.key_inputs:
        raise CircuitError("netlist has no key inputs")

    # Comparator layer: gates reading key inputs directly; the PIs they read
    # are the protected inputs.
    comparator_gates = [
        gate.name
        for gate in circuit
        if any(circuit.is_key_input(net) for net in gate.inputs)
    ]
    if not comparator_gates:
        raise CircuitError("no gates read the key inputs directly")
    protected_inputs: Set[str] = set()
    pairing: Dict[str, str] = {}
    for name in comparator_gates:
        inputs = circuit.gate(name).inputs
        pis = [net for net in inputs if circuit.is_input(net)]
        kis = [net for net in inputs if circuit.is_key_input(net)]
        protected_inputs |= set(pis)
        if len(pis) == 1 and len(kis) == 1:
            pairing[kis[0]] = pis[0]
    if not protected_inputs:
        raise CircuitError("could not derive the protected input set")

    restore_gates = {
        gate.name for gate in circuit if key_inputs_in_fanin(circuit, gate.name)
    }

    # The restoring XOR: an XOR whose inputs split into a key-fed restore side
    # (support inside the protected inputs plus KIs) and a key-free stripped
    # side that is itself an XOR merging the design signal with a perturb
    # signal supported only by protected inputs.
    restoring_xor: Optional[str] = None
    stripped_side: Optional[str] = None
    flip_root: Optional[str] = None
    for gate in circuit:
        if gate.cell.name not in _XOR_CELLS or len(gate.inputs) != 2:
            continue
        sides = [bool(key_inputs_in_fanin(circuit, net)) for net in gate.inputs]
        if sides.count(True) != 1:
            continue
        key_fed = gate.inputs[sides.index(True)]
        key_free = gate.inputs[sides.index(False)]
        if not circuit.has_gate(key_free):
            continue
        if circuit.has_gate(key_fed):
            restore_pis = primary_inputs_in_fanin(circuit, key_fed)
            if restore_pis and not restore_pis <= protected_inputs:
                continue  # a design gate downstream of the restore logic
        strip_gate = circuit.gate(key_free)
        if strip_gate.cell.name not in _XOR_CELLS or len(strip_gate.inputs) != 2:
            continue
        candidate_flip: Optional[str] = None
        for net in strip_gate.inputs:
            if not circuit.has_gate(net):
                continue
            pis = primary_inputs_in_fanin(circuit, net)
            if pis and pis <= protected_inputs:
                candidate_flip = net
        if candidate_flip is None:
            continue
        restoring_xor = gate.name
        stripped_side = key_free
        flip_root = candidate_flip
        break
    if restoring_xor is None or stripped_side is None:
        raise CircuitError("could not locate the restoring XOR")
    if flip_root is None:
        raise CircuitError("could not locate the perturb (flip) signal")

    return SfllStructure(
        protected_inputs=tuple(sorted(protected_inputs)),
        restore_gates=tuple(sorted(restore_gates)),
        restoring_xor=restoring_xor,
        stripping_xor=stripped_side,
        flip_root=flip_root,
        protected_output=restoring_xor,
        pairing=pairing,
    )


def enumerate_activating_patterns(
    circuit: Circuit,
    flip_root: str,
    protected_inputs: Tuple[str, ...],
    *,
    max_patterns: int = 64,
    max_conflicts: int = 200_000,
) -> List[Dict[str, bool]]:
    """Enumerate protected-input patterns that raise the flip signal.

    Each SAT call constrains the perturb cone only (the rest of the design is
    irrelevant to the flip signal), and previously found patterns are blocked,
    so the enumeration walks through distinct protected patterns.
    """
    cone = fanin_cone(circuit, flip_root, include_start=True)
    sub = Circuit(f"{circuit.name}_flip_cone", circuit.library)
    support = set()
    for gate_name in cone:
        support |= set(circuit.gate(gate_name).inputs)
    for net in circuit.inputs:
        if net in support or net in protected_inputs:
            sub.add_input(net)
    for net in circuit.key_inputs:
        if net in support:
            sub.add_key_input(net)
    for gate_name in circuit.topological_order():
        if gate_name in cone:
            gate = circuit.gate(gate_name)
            sub.add_gate(gate_name, gate.cell, gate.inputs)
    sub.add_output(flip_root)

    encoder = CircuitEncoder()
    var_of = encoder.encode(sub)
    cnf = encoder.cnf
    cnf.add_clause([var_of[flip_root]])

    # One incremental solver enumerates all patterns: blocking clauses are
    # pushed into the live solver, which keeps its watches and learned
    # clauses across queries instead of rebuilding the formula per pattern.
    solver = SatSolver(cnf)
    patterns: List[Dict[str, bool]] = []
    for attempt in range(max_patterns):
        solver.set_phase_seed(attempt)
        try:
            result = solver.solve(max_conflicts=max_conflicts)
        except ConflictBudgetExceeded:
            break
        if not result.satisfiable:
            break
        pattern = {
            net: result.value(var_of[net])
            for net in protected_inputs
            if net in var_of
        }
        patterns.append(pattern)
        # Block this protected-input assignment.
        blocking = []
        for net in protected_inputs:
            if net not in var_of:
                continue
            var = var_of[net]
            blocking.append(-var if pattern[net] else var)
        if not blocking:
            break
        cnf.add_clause(blocking)
        solver.add_clause(blocking)
    return patterns
