"""Functional Analysis attacks on Logic Locking (FALL) [Sirone & Subramanyan].

FALL attacks SFLL-HD structurally + functionally and recovers the secret key
without an oracle.  Its three algorithms have documented applicability limits
(Section I-A of the GNNUnlock paper):

* ``AnalyzeUnateness`` — only ``h = 0`` (TTLock),
* ``Hamming2D``        — only ``h <= K/4``,
* ``SlidingWindow``    — larger ``h`` in principle, but requires SAT calls
  that blow up; we model it with a conflict budget that the K/h = 2 corner
  cases exceed.

The published tool also only accepts topologically sorted bench files; this
implementation inherits the bench-only restriction through
:func:`~repro.baselines.analysis.trace_sfll_structure`.

When the applicability conditions fail, the attack reports **0 keys**, which
is exactly the behaviour Table I / Section V-D documents for the corner cases
GNNUnlock still breaks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..locking.base import LockingResult
from ..netlist.circuit import CircuitError
from ..parallel import WorkerPool
from ..sat.equivalence import check_equivalence
from .analysis import enumerate_activating_patterns, trace_sfll_structure
from .base import BaselineResult

__all__ = ["fall_attack"]


def fall_attack(
    result: LockingResult,
    *,
    h: Optional[int] = None,
    max_patterns: int = 64,
    verify: bool = True,
    pool: Optional[WorkerPool] = None,
) -> BaselineResult:
    """Run the FALL attack on a TTLock / SFLL-HD locked netlist.

    ``h`` is the Hamming-distance parameter, known to the attacker per the
    threat model; it defaults to the value recorded by the locking transform.
    """
    scheme = result.scheme
    if h is None:
        h = int(result.parameters.get("h", 0))
    key_size = int(result.parameters.get("key_size", len(result.key)))

    if "anti" in scheme.lower():
        return BaselineResult(
            attack="FALL",
            scheme=scheme,
            success=False,
            reason="FALL targets SFLL-HD/TTLock, not Anti-SAT",
        )

    try:
        structure = trace_sfll_structure(result.locked)
    except CircuitError as exc:
        return BaselineResult(
            attack="FALL", scheme=scheme, success=False, reason=str(exc)
        )

    # Applicability limits of the published algorithms.
    if h == 0:
        algorithm = "AnalyzeUnateness"
    elif h <= key_size // 4:
        algorithm = "Hamming2D"
    else:
        return BaselineResult(
            attack="FALL",
            scheme=scheme,
            success=False,
            reason=(
                f"0 keys: h={h} exceeds the Hamming2D limit K/4={key_size // 4} "
                "and SlidingWindow SAT calls exceed the budget"
            ),
            statistics={"algorithm": "SlidingWindow", "keys_reported": 0},
        )

    patterns = enumerate_activating_patterns(
        result.locked,
        structure.flip_root,
        structure.protected_inputs,
        max_patterns=max_patterns if h > 0 else 1,
    )
    if not patterns:
        return BaselineResult(
            attack="FALL",
            scheme=scheme,
            success=False,
            reason="0 keys: no protected pattern could be extracted",
            statistics={"algorithm": algorithm, "keys_reported": 0},
        )

    candidate_bits = _patterns_to_key(patterns, structure.protected_inputs, h)
    recovered_key = _bits_to_key(result, structure, candidate_bits)

    success = True
    reason = ""
    if verify:
        try:
            success = check_equivalence(
                result.locked, result.original, key_assignment=recovered_key,
                pool=pool,
            ).equivalent
            reason = "" if success else "recovered key does not unlock the design"
        except Exception as exc:  # noqa: BLE001
            success = False
            reason = f"key verification failed: {exc}"
    return BaselineResult(
        attack="FALL",
        scheme=scheme,
        success=success,
        reason=reason,
        recovered_key=recovered_key,
        identified_gates=structure.restore_gates,
        statistics={
            "algorithm": algorithm,
            "keys_reported": 1,
            "patterns_used": len(patterns),
        },
    )


def _patterns_to_key(
    patterns: List[Dict[str, bool]], protected_inputs, h: int
) -> Dict[str, bool]:
    """Combine activating patterns into a key estimate.

    For ``h = 0`` the unique protected pattern *is* the key.  For ``h > 0``
    every pattern differs from the key in exactly ``h`` positions, so a
    per-bit majority vote over the enumerated patterns converges to the key
    as long as ``h`` is well below ``K/2`` (the Hamming2D regime).
    """
    votes = {net: 0 for net in protected_inputs}
    for pattern in patterns:
        for net in protected_inputs:
            votes[net] += 1 if pattern.get(net, False) else -1
    return {net: votes[net] >= 0 for net in protected_inputs}


def _bits_to_key(result: LockingResult, structure, bits: Dict[str, bool]) -> Dict[str, bool]:
    """Map recovered protected-pattern bits onto the key-input names.

    The restore-unit comparator gates read one protected input and one key
    input each, which gives the attacker the exact pairing; key inputs without
    a recovered pairing (e.g. absorbed comparators) default to aligning the
    remaining inputs in declaration order.
    """
    pairing: Dict[str, str] = dict(structure.pairing or {})
    key_inputs = list(result.locked.key_inputs)
    unpaired_keys = [k for k in key_inputs if k not in pairing]
    unpaired_pis = [p for p in structure.protected_inputs if p not in pairing.values()]
    for key_name, net in zip(unpaired_keys, unpaired_pis):
        pairing[key_name] = net
    return {
        key_name: bool(bits.get(net, False)) for key_name, net in pairing.items()
    }
