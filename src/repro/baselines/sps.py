"""Signal Probability Skew (SPS) attack [Yasin et al., ASP-DAC 2016].

The Anti-SAT output ``Y = g(X⊕Kl1) ∧ ḡ(X⊕Kl2)`` is built from two nets with
strongly *opposite* probability skews (the AND tree is skewed towards 0, its
complement towards 1).  The SPS attack scans every 2-input AND-like gate,
computes the absolute difference of its input skews (ADS), picks the gate with
the maximum ADS as the Anti-SAT output, removes its fan-in cone (restricted to
key-fed logic) and bypasses the integration XOR.

The attack is scheme-specific: on TTLock / SFLL-HD there is no such oppositely
skewed AND gate, the located gate is some random design gate, and the removal
does not recover the original design — which is exactly the limitation Table I
reports.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from ..locking.base import LockingResult
from ..parallel import WorkerPool
from ..netlist.circuit import Circuit
from ..netlist.signal_probability import (
    estimate_probabilities_independent,
    signal_probability_skew,
)
from ..netlist.traversal import fanin_cone, has_key_input_in_fanin
from ..sat.equivalence import check_equivalence
from .base import BaselineResult

__all__ = ["sps_attack", "locate_antisat_output"]

_AND_LIKE = ("AND", "AND2", "NAND", "NAND2")


def locate_antisat_output(circuit: Circuit) -> Tuple[Optional[str], float]:
    """Return (gate, ADS) of the most oppositely-skewed AND-like gate."""
    probabilities = estimate_probabilities_independent(circuit)
    best_gate: Optional[str] = None
    best_ads = -1.0
    for gate in circuit:
        if gate.cell.name not in _AND_LIKE or len(gate.inputs) != 2:
            continue
        if not has_key_input_in_fanin(circuit, gate.name):
            continue
        skews = [signal_probability_skew(probabilities[n]) for n in gate.inputs]
        ads = abs(skews[0] - skews[1])
        if ads > best_ads:
            best_ads = ads
            best_gate = gate.name
    return best_gate, best_ads


def sps_attack(
    result: LockingResult,
    *,
    ads_threshold: float = 0.9,
    verify: bool = True,
    pool: Optional[WorkerPool] = None,
) -> BaselineResult:
    """Run the SPS attack on a locked circuit.

    ``ads_threshold`` is the minimum absolute-difference-of-skews for a gate
    to be accepted as the Anti-SAT output (the two branches of a genuine
    Anti-SAT block have skews close to -0.5 and +0.5).
    """
    locked = result.locked
    candidate, ads = locate_antisat_output(locked)
    if candidate is None or ads < ads_threshold:
        return BaselineResult(
            attack="SPS",
            scheme=result.scheme,
            success=False,
            reason=(
                "no oppositely-skewed AND gate found "
                f"(best ADS {ads:.2f} < {ads_threshold})"
            ),
            statistics={"best_ads": ads},
        )

    # Remove the candidate's key-fed fan-in cone and bypass the integration
    # XOR(s) it feeds, then drop the key inputs.
    to_remove: Set[str] = {
        g
        for g in fanin_cone(locked, candidate, include_start=True)
        if has_key_input_in_fanin(locked, g)
    }
    labels = {g: ("AN" if g in to_remove else "DN") for g in locked.gate_names()}
    for sink in locked.fanout_of(candidate):
        cell = locked.gate(sink).cell.name
        if cell in ("XOR", "XNOR", "XOR2", "XNOR2"):
            labels[sink] = "AN"
            to_remove.add(sink)

    from ..core.removal import remove_protection_logic  # local import: avoids cycle

    try:
        recovered = remove_protection_logic(locked, labels)
    except Exception as exc:  # noqa: BLE001 - attack failure is a result
        return BaselineResult(
            attack="SPS",
            scheme=result.scheme,
            success=False,
            reason=f"removal failed: {exc}",
            identified_gates=tuple(sorted(to_remove)),
            statistics={"best_ads": ads},
        )

    success = True
    reason = ""
    if verify:
        try:
            success = check_equivalence(
                recovered, result.original, method="auto", pool=pool
            ).equivalent
            reason = "" if success else "recovered design not equivalent"
        except Exception as exc:  # noqa: BLE001
            success = False
            reason = f"equivalence check failed: {exc}"
    return BaselineResult(
        attack="SPS",
        scheme=result.scheme,
        success=success,
        reason=reason,
        recovered_circuit=recovered,
        identified_gates=tuple(sorted(to_remove)),
        statistics={"best_ads": ads, "candidate": candidate},
    )
