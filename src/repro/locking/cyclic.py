"""Cyclic-style logic locking [after Shamsi et al., GLSVLSI 2017].

Cyclic obfuscation hides the design function behind key-controlled multiplexer
edges: each key bit selects between a gate's genuine driver and a decoy path
from elsewhere in the netlist.  The correct key steers every MUX back to the
genuine driver; a wrong key reroutes at least one gate through its decoy and
corrupts the function.

The published attack surface comes from the *structural* cycles those extra
edges can close.  This reproduction keeps the netlist acyclic — the bench
simulator and the graph pipeline both require a DAG — by only admitting decoy
drivers from **outside the target gate's fan-out cone** (the "valid cycles"
feasibility constraint of the original paper, applied conservatively), and it
guarantees wrong keys actually corrupt by requiring each decoy's simulation
signature to differ from the genuine driver's.

Ground truth: every MUX gate added here (select inverter, both AND arms and
the OR merge) is labelled ``CN`` (cyclic node).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..netlist.circuit import Circuit
from .base import DESIGN, LockingError, LockingResult, LockingScheme
from .keys import key_assignment, key_input_names, random_key_bits
from .registry import SchemeInfo, SchemeParam, register_scheme

__all__ = ["CYCLE", "CyclicLocking"]

#: Label for cyclic-locking MUX nodes.
CYCLE = "CN"

#: Patterns used for the decoy-vs-driver signature check.
_SIGNATURE_PATTERNS = 32


class CyclicLocking(LockingScheme):
    """Key-MUX decoy paths on ``key_size`` randomly chosen gates."""

    name = "Cyclic"

    def __init__(self, key_size: int):
        if key_size < 1:
            raise LockingError("key size must be positive")
        self.key_size = key_size

    def lock(
        self,
        circuit: Circuit,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> LockingResult:
        rng = self._rng(rng)
        if len(circuit) < self.key_size:
            raise LockingError(
                f"circuit {circuit.name} has only {len(circuit)} gates; cannot "
                f"insert {self.key_size} key MUXes"
            )
        original = circuit.copy()
        locked = circuit.copy(f"{circuit.name}_cyclic_k{self.key_size}")

        key_names = key_input_names(self.key_size)
        key_bits = random_key_bits(self.key_size, rng)
        key = key_assignment(key_names, key_bits)
        for name in key_names:
            locked.add_key_input(name)

        signatures = self._signatures(original, rng)
        targets = list(
            rng.choice(list(original.gate_names()), size=self.key_size, replace=False)
        )
        created: List[str] = []
        for key_name, key_bit, target in zip(key_names, key_bits, targets):
            target = str(target)
            decoy = self._choose_decoy(locked, original, target, signatures, rng)
            self._splice_mux(locked, target, decoy, key_name, bool(key_bit), created)

        labels: Dict[str, str] = {g: DESIGN for g in locked.gate_names()}
        for g in created:
            labels[g] = CYCLE
        return LockingResult(
            scheme=self.name,
            original=original,
            locked=locked,
            key=key,
            labels=labels,
            target_net=str(targets[0]) if targets else "",
            protected_inputs=(),
            parameters={"key_size": self.key_size},
        )

    # ------------------------------------------------------------------
    def _signatures(
        self, original: Circuit, rng: np.random.Generator
    ) -> Dict[str, bytes]:
        """Per-net output signature over a fixed random pattern block."""
        from .. import netlist

        patterns = netlist.random_patterns(
            len(original.inputs), _SIGNATURE_PATTERNS, rng
        )
        assign = {
            pi: patterns[:, i] for i, pi in enumerate(original.inputs)
        }
        nets = list(original.inputs) + list(original.gate_names())
        values = netlist.simulate(original, assign, outputs=nets)
        return {
            net: np.packbits(values[net].astype(np.uint8)).tobytes()
            for net in nets
        }

    def _choose_decoy(
        self,
        locked: Circuit,
        original: Circuit,
        target: str,
        signatures: Dict[str, bytes],
        rng: np.random.Generator,
    ) -> str:
        """Pick a decoy driver for ``target``.

        The decoy must sit outside the target's current fan-out cone (keeps
        the netlist a DAG) and must disagree with the genuine driver on the
        signature patterns (so every wrong key genuinely corrupts).
        """
        from ..netlist.traversal import fanout_cone

        forbidden = fanout_cone(locked, target, include_start=True)
        forbidden.add(target)
        target_sig = signatures[target]
        candidates = [
            net
            for net in list(original.inputs) + list(original.gate_names())
            if net not in forbidden and signatures.get(net) != target_sig
        ]
        if not candidates:
            raise LockingError(
                f"no decoy candidate for {target}: every other net is in its "
                "fan-out cone or simulation-equivalent"
            )
        return candidates[int(rng.integers(0, len(candidates)))]

    def _splice_mux(
        self,
        circuit: Circuit,
        target: str,
        decoy: str,
        key_name: str,
        key_bit: bool,
        created: List[str],
    ) -> str:
        """Replace ``target`` with ``MUX(sel=wrong-key, decoy, genuine)``.

        Mirrors :func:`~repro.locking.base.insert_xor_on_net`: the genuine
        driver is renamed to a shadow net and a MUX built from AND/OR/NOT
        (BENCH8 has no MUX cell) takes over the ``target`` name, so every sink
        and PO observes the MUX output.  The select polarity is chosen from
        the secret key bit so the correct key always picks the genuine path.
        """

        def namer(tag: str) -> str:
            return circuit.fresh_net_name(f"cyc_{tag}")

        shadow = circuit.fresh_net_name(f"{target}_orig")
        was_output = circuit.is_output(target)
        circuit.rename_net(target, shadow)

        inv = namer("inv")
        circuit.add_gate(inv, "NOT", [key_name])
        created.append(inv)
        # sel = 1 reroutes through the decoy; the correct key drives sel = 0.
        sel, nsel = (inv, key_name) if key_bit else (key_name, inv)
        keep = namer("keep")
        circuit.add_gate(keep, "AND", [shadow, nsel])
        created.append(keep)
        swap = namer("swap")
        circuit.add_gate(swap, "AND", [decoy, sel])
        created.append(swap)
        circuit.add_gate(target, "OR", [keep, swap])
        created.append(target)

        for sink in circuit.fanout_of(shadow):
            if sink in (target, keep):
                continue
            circuit.replace_gate_input(sink, shadow, target)
        if was_output:
            circuit.remove_output(shadow)
            circuit.add_output(target)
        return shadow


register_scheme(
    SchemeInfo(
        name="cyclic",
        display_name="Cyclic",
        factory=CyclicLocking,
        params=(
            SchemeParam(
                "key_size",
                minimum=1,
                description="number of key-controlled decoy MUXes",
            ),
        ),
        class_map={DESIGN: 0, CYCLE: 1},
        description=(
            "Cyclic-style key MUXes selecting between genuine and decoy "
            "drivers on internal gates"
        ),
        default_technology="BENCH8",
        required_inputs=lambda key_size: 0,
    )
)
