"""Anti-SAT logic locking [Xie & Srivastava, CHES 2016].

The Anti-SAT block consists of two complementary functions ``g`` and ``ḡ``
over the same ``n`` design inputs X, each keyed by XORing the inputs with one
half of the key::

    Y = g(X ⊕ Kl1) ∧ ḡ(X ⊕ Kl2)        with g = AND (the canonical choice)

With the correct key (``Kl1 = Kl2``) the two branches see identical inputs and
``Y`` is constantly 0; ``Y`` is XORed into an internal design net, so a wrong
key corrupts the design only for the single input pattern that makes the AND
tree fire — which is what defeats the SAT attack.

Ground truth: every gate added here (key-XOR layer, both trees, the final AND
and the integration XOR) is labelled ``AN`` (Anti-SAT node).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..netlist.circuit import Circuit
from .arith import build_and_tree
from .base import (
    ANTISAT,
    DESIGN,
    LockingError,
    LockingResult,
    LockingScheme,
    insert_xor_on_net,
)
from .keys import key_assignment, key_input_names, random_key_bits
from .registry import SchemeInfo, SchemeParam, register_scheme

__all__ = ["AntiSatLocking"]


class AntiSatLocking(LockingScheme):
    """Anti-SAT locking with ``g = AND`` (the paper's configuration).

    Parameters
    ----------
    key_size:
        Total key width ``K``; the block uses ``n = K/2`` design inputs.
    target_net:
        Internal net to corrupt.  Randomly chosen when omitted.
    """

    name = "Anti-SAT"

    def __init__(self, key_size: int, *, target_net: Optional[str] = None):
        if key_size < 4 or key_size % 2 != 0:
            raise LockingError("Anti-SAT key size must be an even number >= 4")
        self.key_size = key_size
        self.target_net = target_net

    def lock(
        self,
        circuit: Circuit,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> LockingResult:
        rng = self._rng(rng)
        n = self.key_size // 2
        if len(circuit.inputs) < n:
            raise LockingError(
                f"Anti-SAT with K={self.key_size} needs {n} PIs, circuit "
                f"{circuit.name} has {len(circuit.inputs)}"
            )
        if len(circuit) == 0:
            raise LockingError("cannot lock an empty circuit")

        original = circuit.copy()
        locked = circuit.copy(f"{circuit.name}_antisat_k{self.key_size}")
        created: List[str] = []

        def namer(tag: str) -> str:
            return locked.fresh_net_name(f"asat_{tag}")

        # Key inputs: first half Kl1, second half Kl2.
        key_names = key_input_names(self.key_size)
        for name in key_names:
            locked.add_key_input(name)
        # Correct key: Kl1 = Kl2 = c for a random c, so g ∧ ḡ is identically 0.
        half_key = random_key_bits(n, rng)
        key_bits = np.concatenate([half_key, half_key])
        key = key_assignment(key_names, key_bits)

        # Select the n design inputs X driving the block.
        pi_pool = list(circuit.inputs)
        x_idx = rng.choice(len(pi_pool), size=n, replace=False)
        x_nets = [pi_pool[int(i)] for i in sorted(x_idx)]

        # Key-XOR layers feeding g and ḡ.
        g1_inputs: List[str] = []
        g2_inputs: List[str] = []
        for i, x in enumerate(x_nets):
            x1 = namer(f"x1_{i}")
            locked.add_gate(x1, "XOR", [x, key_names[i]])
            created.append(x1)
            g1_inputs.append(x1)
            x2 = namer(f"x2_{i}")
            locked.add_gate(x2, "XOR", [x, key_names[n + i]])
            created.append(x2)
            g2_inputs.append(x2)

        # g = AND tree, ḡ = complementary (NAND = inverted AND tree root).
        g1_root = build_and_tree(locked, g1_inputs, namer, created, tag="g1")
        g2_root = build_and_tree(locked, g2_inputs, namer, created, tag="g2")
        g2_bar = namer("g2bar")
        locked.add_gate(g2_bar, "NOT", [g2_root])
        created.append(g2_bar)
        y_net = namer("y")
        locked.add_gate(y_net, "AND", [g1_root, g2_bar])
        created.append(y_net)

        # Integrate: corrupt an internal design net with Y.
        target = self._choose_target(locked, original, rng)
        insert_xor_on_net(locked, target, y_net)
        created.append(target)

        labels: Dict[str, str] = {g: DESIGN for g in locked.gate_names()}
        for g in created:
            labels[g] = ANTISAT

        return LockingResult(
            scheme=self.name,
            original=original,
            locked=locked,
            key=key,
            labels=labels,
            target_net=target,
            protected_inputs=tuple(x_nets),
            parameters={"key_size": self.key_size, "n": n, "g": "AND"},
        )

    def _choose_target(
        self,
        locked: Circuit,
        original: Circuit,
        rng: np.random.Generator,
    ) -> str:
        """Pick the design net to XOR with the Anti-SAT output."""
        if self.target_net is not None:
            if not original.has_gate(self.target_net):
                raise LockingError(
                    f"target net {self.target_net} is not a design gate"
                )
            return self.target_net
        # Only nets that reach a primary output are worth corrupting; prefer
        # internal nets with fan-out, fall back to PO drivers.
        from ..netlist.traversal import fanin_cone

        live: set = set()
        for po in original.outputs:
            live |= fanin_cone(original, po)
        fanout = original.fanout_map()
        candidates = [g for g in original.gate_names() if g in live and g in fanout]
        if not candidates:
            candidates = [g for g in original.gate_names() if g in live]
        if not candidates:
            candidates = list(original.gate_names())
        return candidates[int(rng.integers(0, len(candidates)))]


def _check_antisat(params: Dict[str, object]) -> None:
    if params["key_size"] % 2 != 0:  # type: ignore[operator]
        raise ValueError("Anti-SAT key size must be an even number >= 4")


register_scheme(
    SchemeInfo(
        name="antisat",
        display_name="Anti-SAT",
        factory=AntiSatLocking,
        params=(
            SchemeParam(
                "key_size",
                minimum=4,
                description="total key width K (even); the block uses K/2 design inputs",
            ),
        ),
        class_map={DESIGN: 0, ANTISAT: 1},
        description=(
            "Complementary AND-tree pair over key-XORed inputs, XORed into an "
            "internal design net"
        ),
        default_technology="BENCH8",
        required_inputs=lambda key_size: key_size // 2,
        strip_instance_h=True,
        check=_check_antisat,
    )
)
