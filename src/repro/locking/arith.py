"""Gate-level arithmetic builders used by the SFLL-HD protection logic.

SFLL-HDh's perturb and restore units are Hamming-distance checkers: a layer of
mismatch detectors, a popcount (adder tree), and an equality comparator against
the constant ``h``.  These builders emit 1/2-input BENCH8 gates; synthesis
re-expresses them in standard-cell libraries afterwards.

All builders take a ``namer`` callback that returns fresh, collision-free net
names and record every created gate name in ``created`` so callers can label
the protection logic.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from ..netlist.circuit import Circuit

__all__ = [
    "build_and_tree",
    "build_or_tree",
    "build_popcount",
    "build_equals_constant",
    "build_inverter",
]

Namer = Callable[[str], str]


def build_inverter(
    circuit: Circuit, net: str, namer: Namer, created: List[str]
) -> str:
    """Add a NOT gate on ``net``; returns the inverted net name."""
    out = namer("inv")
    circuit.add_gate(out, "NOT", [net])
    created.append(out)
    return out


def _build_tree(
    circuit: Circuit,
    nets: Sequence[str],
    cell: str,
    namer: Namer,
    created: List[str],
    tag: str,
) -> str:
    """Balanced binary tree of 2-input ``cell`` gates over ``nets``."""
    if not nets:
        raise ValueError("cannot reduce an empty net list")
    layer = list(nets)
    if len(layer) == 1:
        out = namer(f"{tag}_buf")
        circuit.add_gate(out, "BUF", [layer[0]])
        created.append(out)
        return out
    level = 0
    while len(layer) > 1:
        next_layer: List[str] = []
        for i in range(0, len(layer) - 1, 2):
            out = namer(f"{tag}_{level}_{i // 2}")
            circuit.add_gate(out, cell, [layer[i], layer[i + 1]])
            created.append(out)
            next_layer.append(out)
        if len(layer) % 2 == 1:
            next_layer.append(layer[-1])
        layer = next_layer
        level += 1
    return layer[0]


def build_and_tree(
    circuit: Circuit, nets: Sequence[str], namer: Namer, created: List[str],
    *, tag: str = "and"
) -> str:
    """AND-reduce ``nets`` with a balanced tree of AND2 gates."""
    return _build_tree(circuit, nets, "AND", namer, created, tag)


def build_or_tree(
    circuit: Circuit, nets: Sequence[str], namer: Namer, created: List[str],
    *, tag: str = "or"
) -> str:
    """OR-reduce ``nets`` with a balanced tree of OR2 gates."""
    return _build_tree(circuit, nets, "OR", namer, created, tag)


def _half_adder(
    circuit: Circuit, a: str, b: str, namer: Namer, created: List[str], tag: str
) -> Tuple[str, str]:
    s = namer(f"{tag}_s")
    c = namer(f"{tag}_c")
    circuit.add_gate(s, "XOR", [a, b])
    circuit.add_gate(c, "AND", [a, b])
    created.extend([s, c])
    return s, c


def _full_adder(
    circuit: Circuit, a: str, b: str, cin: str, namer: Namer, created: List[str], tag: str
) -> Tuple[str, str]:
    s1 = namer(f"{tag}_s1")
    circuit.add_gate(s1, "XOR", [a, b])
    s = namer(f"{tag}_s")
    circuit.add_gate(s, "XOR", [s1, cin])
    c1 = namer(f"{tag}_c1")
    circuit.add_gate(c1, "AND", [a, b])
    c2 = namer(f"{tag}_c2")
    circuit.add_gate(c2, "AND", [s1, cin])
    cout = namer(f"{tag}_co")
    circuit.add_gate(cout, "OR", [c1, c2])
    created.extend([s1, s, c1, c2, cout])
    return s, cout


def _ripple_add(
    circuit: Circuit,
    a_bits: Sequence[str],
    b_bits: Sequence[str],
    namer: Namer,
    created: List[str],
    tag: str,
) -> List[str]:
    """Ripple-carry addition of two little-endian bit vectors."""
    width = max(len(a_bits), len(b_bits))
    result: List[str] = []
    carry: str | None = None
    for i in range(width):
        a = a_bits[i] if i < len(a_bits) else None
        b = b_bits[i] if i < len(b_bits) else None
        if a is not None and b is not None:
            if carry is None:
                s, carry = _half_adder(circuit, a, b, namer, created, f"{tag}_ha{i}")
            else:
                s, carry = _full_adder(circuit, a, b, carry, namer, created, f"{tag}_fa{i}")
        else:
            operand = a if a is not None else b
            if carry is None:
                result.append(operand)  # nothing to add
                continue
            s, carry = _half_adder(circuit, operand, carry, namer, created, f"{tag}_hc{i}")
        result.append(s)
    if carry is not None:
        result.append(carry)
    return result


def build_popcount(
    circuit: Circuit,
    nets: Sequence[str],
    namer: Namer,
    created: List[str],
    *,
    tag: str = "pc",
) -> List[str]:
    """Popcount of ``nets`` as a little-endian sum bit vector.

    Built as a balanced adder (Wallace-style reduction of partial sums), the
    same structure RTL synthesis produces for ``$countones``.
    """
    if not nets:
        raise ValueError("popcount of an empty net list")
    # Start with one 1-bit number per net, then repeatedly add pairs.
    numbers: List[List[str]] = [[net] for net in nets]
    round_idx = 0
    while len(numbers) > 1:
        next_numbers: List[List[str]] = []
        for i in range(0, len(numbers) - 1, 2):
            summed = _ripple_add(
                circuit, numbers[i], numbers[i + 1], namer, created,
                f"{tag}_r{round_idx}_{i // 2}",
            )
            next_numbers.append(summed)
        if len(numbers) % 2 == 1:
            next_numbers.append(numbers[-1])
        numbers = next_numbers
        round_idx += 1
    return numbers[0]


def build_equals_constant(
    circuit: Circuit,
    bits: Sequence[str],
    constant: int,
    namer: Namer,
    created: List[str],
    *,
    tag: str = "eq",
) -> str:
    """Return a net that is 1 iff the little-endian ``bits`` equal ``constant``.

    Each bit is passed through (constant bit = 1) or inverted (constant bit =
    0) and the results are AND-reduced, which is how an equality-against-
    constant comparator synthesises.
    """
    if constant < 0 or constant >= (1 << len(bits)):
        raise ValueError(
            f"constant {constant} does not fit in {len(bits)} bits"
        )
    literals: List[str] = []
    for i, bit in enumerate(bits):
        want_one = (constant >> i) & 1
        if want_one:
            literals.append(bit)
        else:
            literals.append(build_inverter(circuit, bit, namer, created))
    return build_and_tree(circuit, literals, namer, created, tag=tag)
