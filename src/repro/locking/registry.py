"""Pluggable locking-scheme registry.

Every locking scheme is one self-describing registered module: it declares
its canonical grid name and aliases, a typed parameter schema
(:class:`SchemeParam`), its ground-truth node-label class map, the
primary-input requirement per key size and the default synthesis technology.
The registry replaces the hardcoded ``make_scheme`` if/elif chain and the
``class_map_for_scheme`` table (both survive as thin shims over this module),
so adding a scheme means writing one module that calls
:func:`register_scheme` — generation, labelling, campaign validation, the
``repro schemes`` listing and the capability matrix all pick it up from here.

Canonical names are the compact grid strings (``"antisat"``, ``"sfll"``,
``"xor"``...) that appear inside dataset fingerprints; they must never change
for an existing scheme or every cache and dedupe key shifts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from .base import LockingScheme

__all__ = [
    "SchemeInfo",
    "SchemeParam",
    "SchemeRegistry",
    "available_schemes",
    "find_scheme",
    "get_scheme",
    "register_scheme",
    "unregister_scheme",
    "SCHEMES",
]

#: Sentinel marking a parameter with no default (the caller must supply it).
_REQUIRED = object()


def _normalize(name: str) -> str:
    """Fold a scheme name to its lookup key (``"Anti-SAT"`` -> ``"antisat"``)."""
    return name.lower().replace("-", "").replace("_", "")


@dataclass(frozen=True)
class SchemeParam:
    """One typed parameter of a locking scheme (``key_size``, ``h``, ...)."""

    name: str
    type: type = int
    default: object = _REQUIRED
    minimum: Optional[int] = None
    maximum: Optional[int] = None
    description: str = ""

    @property
    def required(self) -> bool:
        return self.default is _REQUIRED

    def validate(self, value: object, owner: str) -> object:
        if self.type is int and (
            isinstance(value, bool) or not isinstance(value, int)
        ):
            raise ValueError(
                f"{owner} parameter {self.name!r} must be an integer, "
                f"got {value!r}"
            )
        if not isinstance(value, self.type):
            raise ValueError(
                f"{owner} parameter {self.name!r} must be "
                f"{self.type.__name__}, got {value!r}"
            )
        if self.minimum is not None and value < self.minimum:
            raise ValueError(
                f"{owner} parameter {self.name!r} must be >= {self.minimum}, "
                f"got {value!r}"
            )
        if self.maximum is not None and value > self.maximum:
            raise ValueError(
                f"{owner} parameter {self.name!r} must be <= {self.maximum}, "
                f"got {value!r}"
            )
        return value

    def describe(self) -> Dict[str, object]:
        """JSON-friendly schema entry (``repro schemes --json``)."""
        payload: Dict[str, object] = {
            "name": self.name,
            "type": self.type.__name__,
            "required": self.required,
        }
        if not self.required:
            payload["default"] = self.default
        if self.minimum is not None:
            payload["minimum"] = self.minimum
        if self.maximum is not None:
            payload["maximum"] = self.maximum
        if self.description:
            payload["description"] = self.description
        return payload


@dataclass(frozen=True)
class SchemeInfo:
    """Self-description of one registered locking scheme."""

    #: Canonical grid name (``"antisat"``); part of dataset fingerprints.
    name: str
    #: Human-readable name; matches ``LockingResult.scheme`` of the factory's
    #: results so class maps resolve from either form.
    display_name: str
    #: Builds a ready :class:`LockingScheme` from validated parameters.
    factory: Callable[..., LockingScheme]
    #: Typed parameter schema, validated by :meth:`validate_params`.
    params: Tuple[SchemeParam, ...]
    #: Ground-truth label -> integer class for GNN training.
    class_map: Mapping[str, int]
    aliases: Tuple[str, ...] = ()
    description: str = ""
    #: Technology a grid entry maps onto when it names none.
    default_technology: str = "BENCH8"
    #: Primary inputs a circuit needs to be lockable at a key size.
    required_inputs: Callable[[int], int] = lambda key_size: key_size
    #: Whether the scheme takes the ``h`` grid parameter (``"sfll:2"``).
    uses_h: bool = False
    #: Drop the instance-level ``h`` in generated datasets (legacy: Anti-SAT
    #: instances record ``h=None`` even when a sweep-level h was supplied).
    strip_instance_h: bool = False
    #: Parameter values the standing capability matrix uses (e.g. a default
    #: ``h`` for SFLL, which has no universal default otherwise).
    matrix_params: Mapping[str, object] = field(default_factory=dict)
    #: Cross-parameter validation hook; raises ``ValueError`` on bad combos.
    check: Optional[Callable[[Dict[str, object]], None]] = None

    def lookup_keys(self) -> List[str]:
        keys = [self.name, self.display_name, *self.aliases]
        return sorted({_normalize(key) for key in keys})

    def validate_params(self, params: Mapping[str, object]) -> Dict[str, object]:
        """Type/range-check ``params`` against the schema; fill defaults.

        Raises :class:`ValueError` on an unknown parameter, a missing
        required one, a type mismatch or an out-of-range value — the same
        error surface for ``repro run``/``repro submit`` spec validation and
        direct :meth:`create` calls.
        """
        remaining = dict(params)
        values: Dict[str, object] = {}
        for spec in self.params:
            if spec.name in remaining:
                value = remaining.pop(spec.name)
            elif spec.required:
                raise ValueError(
                    f"{self.display_name} requires parameter {spec.name!r}"
                )
            else:
                value = spec.default
            values[spec.name] = spec.validate(value, self.display_name)
        if remaining:
            known = ", ".join(spec.name for spec in self.params)
            raise ValueError(
                f"unknown {self.display_name} parameter(s): "
                f"{', '.join(sorted(remaining))} (schema: {known})"
            )
        if self.check is not None:
            self.check(values)
        return values

    def create(self, **params: object) -> LockingScheme:
        """Instantiate the scheme from validated parameters."""
        return self.factory(**self.validate_params(params))

    def describe(self) -> Dict[str, object]:
        """JSON-friendly self-description (``repro schemes --json``)."""
        return {
            "name": self.name,
            "display_name": self.display_name,
            "aliases": list(self.aliases),
            "description": self.description,
            "params": [spec.describe() for spec in self.params],
            "classes": dict(self.class_map),
            "default_technology": self.default_technology,
            "uses_h": self.uses_h,
        }


class SchemeRegistry:
    """Name-indexed collection of :class:`SchemeInfo` entries."""

    def __init__(self) -> None:
        self._schemes: Dict[str, SchemeInfo] = {}
        self._index: Dict[str, SchemeInfo] = {}

    # ------------------------------------------------------------------
    def register(self, info: SchemeInfo) -> SchemeInfo:
        if info.name != _normalize(info.name):
            raise ValueError(
                f"canonical scheme name {info.name!r} must be normalized "
                "(lowercase, no separators)"
            )
        if info.name in self._schemes:
            raise ValueError(f"locking scheme {info.name!r} already registered")
        for key in info.lookup_keys():
            owner = self._index.get(key)
            if owner is not None:
                raise ValueError(
                    f"scheme name/alias {key!r} already taken by "
                    f"{owner.name!r}"
                )
        self._schemes[info.name] = info
        for key in info.lookup_keys():
            self._index[key] = info
        return info

    def unregister(self, name: str) -> None:
        """Remove a scheme (test seam; production schemes stay registered)."""
        info = self._schemes.pop(name, None)
        if info is None:
            raise ValueError(f"locking scheme {name!r} is not registered")
        for key in info.lookup_keys():
            self._index.pop(key, None)

    # ------------------------------------------------------------------
    def find(self, name: str) -> Optional[SchemeInfo]:
        """Resolve a name/alias/display name; ``None`` when unknown."""
        return self._index.get(_normalize(str(name)))

    def get(self, name: str) -> SchemeInfo:
        info = self.find(name)
        if info is None:
            raise ValueError(
                f"unknown locking scheme {name!r}; registered: "
                f"{', '.join(self.names())}"
            )
        return info

    def names(self) -> List[str]:
        """Canonical names of every registered scheme, sorted."""
        return sorted(self._schemes)

    def create(self, name: str, **params: object) -> LockingScheme:
        """``SchemeRegistry.create("antisat", key_size=8)`` — the one
        construction path harnesses and examples should use."""
        return self.get(name).create(**params)

    def __iter__(self) -> Iterator[SchemeInfo]:
        return iter(self._schemes[name] for name in self.names())

    def __len__(self) -> int:
        return len(self._schemes)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.find(name) is not None


#: The process-wide registry.  Scheme modules register themselves on import;
#: importing :mod:`repro.locking` populates it with every built-in scheme.
SCHEMES = SchemeRegistry()


def register_scheme(info: SchemeInfo) -> SchemeInfo:
    """Register ``info`` in the global registry (module-bottom idiom)."""
    return SCHEMES.register(info)


def unregister_scheme(name: str) -> None:
    SCHEMES.unregister(name)


def get_scheme(name: str) -> SchemeInfo:
    """Resolve a scheme name/alias/display name or raise ``ValueError``."""
    return SCHEMES.get(name)


def find_scheme(name: str) -> Optional[SchemeInfo]:
    """Like :func:`get_scheme` but returns ``None`` for unknown names."""
    return SCHEMES.find(name)


def available_schemes() -> List[str]:
    """Canonical names of every registered scheme, sorted."""
    return SCHEMES.names()
