"""SFLL-HDh and TTLock logic locking [Yasin et al., CCS 2017 / GLSVLSI 2017].

Both schemes strip functionality from the design and restore it with a
key-controlled unit:

* the **perturb unit** hard-codes the secret key: it detects input patterns
  whose Hamming distance from the secret key equals ``h`` and flips the
  protected output for exactly those patterns (this is the
  "functionality-stripped circuit"),
* the **restore unit** compares the same inputs against the external key
  inputs and flips the output back; with the correct key the two flips cancel
  for every input pattern.

TTLock is the ``h = 0`` special case: the perturb unit is a key-dependent
AND-tree of (possibly inverted) inputs and the restore unit is a plain
comparator.  For ``h > 0`` both units are Hamming-distance checkers built from
a popcount adder tree and an equality comparator, which is what the paper's
``G`` block in Fig. 2d denotes.

Ground truth: perturb-unit gates (and the output-stripping XOR) are labelled
``PN``; restore-unit gates (and the restoring XOR) are labelled ``RN``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..netlist.circuit import Circuit
from .arith import (
    build_and_tree,
    build_equals_constant,
    build_inverter,
    build_popcount,
)
from .base import (
    DESIGN,
    PERTURB,
    RESTORE,
    LockingError,
    LockingResult,
    LockingScheme,
    insert_xor_on_net,
)
from .keys import key_assignment, key_input_names, random_key_bits
from .registry import SchemeInfo, SchemeParam, register_scheme

__all__ = ["SfllHdLocking", "TTLockLocking"]


class SfllHdLocking(LockingScheme):
    """SFLL-HDh locking.

    Parameters
    ----------
    key_size:
        Key width ``K`` (also the number of protected primary inputs).
    h:
        Hamming distance parameter.  ``h = 0`` degenerates to TTLock.
    target_output:
        Primary output to protect.  Randomly chosen when omitted.
    """

    name = "SFLL-HD"

    def __init__(self, key_size: int, h: int, *, target_output: Optional[str] = None):
        if key_size < 2:
            raise LockingError("SFLL-HD key size must be >= 2")
        if not 0 <= h <= key_size:
            raise LockingError(f"h must be in [0, {key_size}], got {h}")
        self.key_size = key_size
        self.h = h
        self.target_output = target_output

    # ------------------------------------------------------------------
    def lock(
        self,
        circuit: Circuit,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> LockingResult:
        rng = self._rng(rng)
        if len(circuit.inputs) < self.key_size:
            raise LockingError(
                f"{self.name} with K={self.key_size} needs {self.key_size} PIs, "
                f"circuit {circuit.name} has {len(circuit.inputs)}"
            )
        if len(circuit) == 0:
            raise LockingError("cannot lock an empty circuit")

        original = circuit.copy()
        locked = circuit.copy(
            f"{circuit.name}_{self.name.lower().replace('-', '')}"
            f"_k{self.key_size}_h{self.h}"
        )

        key_names = key_input_names(self.key_size)
        for name in key_names:
            locked.add_key_input(name)
        key_bits = random_key_bits(self.key_size, rng)
        key = key_assignment(key_names, key_bits)

        pi_pool = list(circuit.inputs)
        x_idx = rng.choice(len(pi_pool), size=self.key_size, replace=False)
        x_nets = [pi_pool[int(i)] for i in sorted(x_idx)]
        target = self._choose_target(original, rng)

        perturb_created: List[str] = []
        restore_created: List[str] = []

        def perturb_namer(tag: str) -> str:
            return locked.fresh_net_name(f"ptb_{tag}")

        def restore_namer(tag: str) -> str:
            return locked.fresh_net_name(f"rst_{tag}")

        flip = self._build_perturb_unit(
            locked, x_nets, key_bits, perturb_namer, perturb_created
        )
        restore = self._build_restore_unit(
            locked, x_nets, key_names, restore_namer, restore_created
        )

        # Strip the protected output, then restore it.  After the second
        # splice the stripping XOR has been renamed to a shadow net; the gate
        # named ``target`` is the restoring XOR.
        insert_xor_on_net(locked, target, flip)
        strip_gate = insert_xor_on_net(locked, target, restore)
        perturb_created.append(strip_gate)
        restore_created.append(target)

        labels: Dict[str, str] = {g: DESIGN for g in locked.gate_names()}
        for g in perturb_created:
            labels[g] = PERTURB
        for g in restore_created:
            labels[g] = RESTORE

        return LockingResult(
            scheme=self.name if self.h > 0 else "TTLock",
            original=original,
            locked=locked,
            key=key,
            labels=labels,
            target_net=target,
            protected_inputs=tuple(x_nets),
            parameters={"key_size": self.key_size, "h": self.h},
        )

    # ------------------------------------------------------------------
    def _choose_target(self, original: Circuit, rng: np.random.Generator) -> str:
        """Pick the primary output whose function is stripped."""
        if self.target_output is not None:
            if not original.is_output(self.target_output) or not original.has_gate(
                self.target_output
            ):
                raise LockingError(
                    f"target output {self.target_output} is not a gate-driven PO"
                )
            return self.target_output
        candidates = [po for po in original.outputs if original.has_gate(po)]
        if not candidates:
            raise LockingError("no gate-driven primary output to protect")
        return candidates[int(rng.integers(0, len(candidates)))]

    def _build_perturb_unit(
        self,
        locked: Circuit,
        x_nets: Sequence[str],
        key_bits: np.ndarray,
        namer,
        created: List[str],
    ) -> str:
        """Flip signal: 1 iff HD(X_sel, hard-coded key) == h."""
        if self.h == 0:
            # TTLock: AND-tree of per-bit matches; the structure (which inputs
            # are inverted) depends on the secret key, exactly as the paper
            # describes.
            match_bits = []
            for x, k in zip(x_nets, key_bits):
                if k:
                    match_bits.append(x)
                else:
                    match_bits.append(build_inverter(locked, x, namer, created))
            return build_and_tree(locked, match_bits, namer, created, tag="match")
        mismatch_bits = []
        for x, k in zip(x_nets, key_bits):
            if k:
                mismatch_bits.append(build_inverter(locked, x, namer, created))
            else:
                mismatch_bits.append(x)
        count = build_popcount(locked, mismatch_bits, namer, created, tag="cnt")
        return build_equals_constant(locked, count, self.h, namer, created, tag="hd")

    def _build_restore_unit(
        self,
        locked: Circuit,
        x_nets: Sequence[str],
        key_names: Sequence[str],
        namer,
        created: List[str],
    ) -> str:
        """Restore signal: 1 iff HD(X_sel, key inputs) == h."""
        if self.h == 0:
            # Basic comparator: AND-tree of XNORs.
            match_bits = []
            for i, (x, k) in enumerate(zip(x_nets, key_names)):
                net = namer(f"cmp_{i}")
                locked.add_gate(net, "XNOR", [x, k])
                created.append(net)
                match_bits.append(net)
            return build_and_tree(locked, match_bits, namer, created, tag="cmp")
        mismatch_bits = []
        for i, (x, k) in enumerate(zip(x_nets, key_names)):
            net = namer(f"mm_{i}")
            locked.add_gate(net, "XOR", [x, k])
            created.append(net)
            mismatch_bits.append(net)
        count = build_popcount(locked, mismatch_bits, namer, created, tag="cnt")
        return build_equals_constant(locked, count, self.h, namer, created, tag="hd")


class TTLockLocking(SfllHdLocking):
    """TTLock: protect the single input pattern equal to the secret key."""

    name = "TTLock"

    def __init__(self, key_size: int, *, target_output: Optional[str] = None):
        super().__init__(key_size, 0, target_output=target_output)


_SFLL_CLASS_MAP = {DESIGN: 0, RESTORE: 1, PERTURB: 2}


def _make_sfll(key_size: int, h: int) -> SfllHdLocking:
    # h = 0 degenerates to TTLock, preserving the legacy make_scheme mapping.
    return TTLockLocking(key_size) if h == 0 else SfllHdLocking(key_size, h)


def _check_sfll(params: Dict[str, object]) -> None:
    if params["h"] > params["key_size"]:  # type: ignore[operator]
        raise ValueError(
            f"h must be in [0, {params['key_size']}], got {params['h']}"
        )


register_scheme(
    SchemeInfo(
        name="ttlock",
        display_name="TTLock",
        factory=TTLockLocking,
        params=(
            SchemeParam(
                "key_size",
                minimum=2,
                description="key width K (= number of protected primary inputs)",
            ),
        ),
        class_map=_SFLL_CLASS_MAP,
        description="SFLL-HD with h = 0: protects the single pattern equal to the key",
        default_technology="GEN65",
    )
)

register_scheme(
    SchemeInfo(
        name="sfll",
        display_name="SFLL-HD",
        factory=_make_sfll,
        params=(
            SchemeParam(
                "key_size",
                minimum=2,
                description="key width K (= number of protected primary inputs)",
            ),
            SchemeParam(
                "h",
                minimum=0,
                description="Hamming distance of protected patterns from the key",
            ),
        ),
        class_map=_SFLL_CLASS_MAP,
        aliases=("sfllhd",),
        description=(
            "Stripped-functionality locking: Hamming-distance perturb unit "
            "cancelled by a key-driven restore unit"
        ),
        default_technology="GEN65",
        uses_h=True,
        matrix_params={"h": 2},
        check=_check_sfll,
    )
)
