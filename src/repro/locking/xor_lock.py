"""Traditional XOR/XNOR key-gate locking (EPIC-style random logic locking).

This pre-SAT-attack scheme is *not* provably secure — the oracle-guided SAT
attack recovers its key in a handful of iterations.  It is included as the
contrast case for the SAT-attack baseline: Anti-SAT / SFLL-HD need an
exponential number of SAT iterations, random XOR locking does not, which is
the motivation for PSLL in the paper's introduction.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..netlist.circuit import Circuit
from .base import DESIGN, LockingError, LockingResult, LockingScheme, insert_xor_on_net
from .keys import key_assignment, key_input_names, random_key_bits
from .registry import SchemeInfo, SchemeParam, register_scheme

__all__ = ["RandomXorLocking"]

#: Label for traditional key-gates (they are neither perturb nor restore).
KEYGATE = "KG"


class RandomXorLocking(LockingScheme):
    """Insert ``key_size`` XOR/XNOR key gates on random internal nets."""

    name = "RandomXOR"

    def __init__(self, key_size: int):
        if key_size < 1:
            raise LockingError("key size must be positive")
        self.key_size = key_size

    def lock(
        self,
        circuit: Circuit,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> LockingResult:
        rng = self._rng(rng)
        if len(circuit) < self.key_size:
            raise LockingError(
                f"circuit {circuit.name} has only {len(circuit)} gates; cannot "
                f"insert {self.key_size} key gates"
            )
        original = circuit.copy()
        locked = circuit.copy(f"{circuit.name}_xorlock_k{self.key_size}")

        key_names = key_input_names(self.key_size)
        key_bits = random_key_bits(self.key_size, rng)
        key = key_assignment(key_names, key_bits)
        for name in key_names:
            locked.add_key_input(name)

        targets = list(
            rng.choice(list(original.gate_names()), size=self.key_size, replace=False)
        )
        created: List[str] = []
        for key_name, key_bit, target in zip(key_names, key_bits, targets):
            insert_xor_on_net(locked, str(target), key_name)
            created.append(str(target))
            if key_bit:
                # Key bit 1 means the inserted gate must be an XNOR so the
                # correct key restores the original polarity.
                gate = locked.gate(str(target))
                locked.set_gate(str(target), "XNOR", gate.inputs)

        labels: Dict[str, str] = {g: DESIGN for g in locked.gate_names()}
        for g in created:
            labels[g] = KEYGATE
        return LockingResult(
            scheme=self.name,
            original=original,
            locked=locked,
            key=key,
            labels=labels,
            target_net=created[0] if created else "",
            protected_inputs=(),
            parameters={"key_size": self.key_size},
        )


register_scheme(
    SchemeInfo(
        name="xor",
        display_name="RandomXOR",
        factory=RandomXorLocking,
        params=(
            SchemeParam(
                "key_size",
                minimum=1,
                description="number of XOR/XNOR key gates",
            ),
        ),
        class_map={DESIGN: 0, KEYGATE: 1},
        aliases=("xorlock",),
        description="EPIC-style random XOR/XNOR key gates on internal nets",
        default_technology="BENCH8",
        required_inputs=lambda key_size: 0,
    )
)
