"""SARLock comparator-based locking [Yasin et al., HOST 2016].

SARLock corrupts the design for exactly **one input pattern per wrong key**:
a comparator asserts when the selected design inputs X equal the applied key
K, and a mask built from the hard-coded secret key ``K*`` suppresses the flip
when the correct key is applied::

    flip = (X == K) ∧ ¬(K == K*)

The flip signal is XORed into an internal design net.  With the correct key
the mask is always 0 and the design is untouched; a wrong key ``K ≠ K*``
corrupts the net for the single pattern ``X = K`` — which is what forces the
oracle-guided SAT attack into one iteration per wrong key, mirroring
Anti-SAT's exponential behaviour with a much cheaper block.

Ground truth: every gate added here (comparator, mask, flip AND and the
integration XOR) is labelled ``SN`` (SARLock node).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..netlist.circuit import Circuit
from .arith import build_and_tree, build_inverter
from .base import (
    DESIGN,
    LockingError,
    LockingResult,
    LockingScheme,
    insert_xor_on_net,
)
from .keys import key_assignment, key_input_names, random_key_bits
from .registry import SchemeInfo, SchemeParam, register_scheme

__all__ = ["SARLOCK", "SarLockLocking"]

#: Label for SARLock block nodes.
SARLOCK = "SN"


class SarLockLocking(LockingScheme):
    """SARLock: comparator + wrong-key mask XORed into an internal net.

    Parameters
    ----------
    key_size:
        Key width ``K`` (also the number of compared primary inputs).
    target_net:
        Internal net to corrupt.  Randomly chosen when omitted.
    """

    name = "SARLock"

    def __init__(self, key_size: int, *, target_net: Optional[str] = None):
        if key_size < 2:
            raise LockingError("SARLock key size must be >= 2")
        self.key_size = key_size
        self.target_net = target_net

    def lock(
        self,
        circuit: Circuit,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> LockingResult:
        rng = self._rng(rng)
        if len(circuit.inputs) < self.key_size:
            raise LockingError(
                f"SARLock with K={self.key_size} needs {self.key_size} PIs, "
                f"circuit {circuit.name} has {len(circuit.inputs)}"
            )
        if len(circuit) == 0:
            raise LockingError("cannot lock an empty circuit")

        original = circuit.copy()
        locked = circuit.copy(f"{circuit.name}_sarlock_k{self.key_size}")
        created: List[str] = []

        def namer(tag: str) -> str:
            return locked.fresh_net_name(f"sar_{tag}")

        key_names = key_input_names(self.key_size)
        for name in key_names:
            locked.add_key_input(name)
        key_bits = random_key_bits(self.key_size, rng)
        key = key_assignment(key_names, key_bits)

        # Selected design inputs X driving the comparator.
        pi_pool = list(circuit.inputs)
        x_idx = rng.choice(len(pi_pool), size=self.key_size, replace=False)
        x_nets = [pi_pool[int(i)] for i in sorted(x_idx)]

        # Comparator: eq_x = 1 iff X equals the applied key inputs.
        eq_bits: List[str] = []
        for i, (x, k) in enumerate(zip(x_nets, key_names)):
            net = namer(f"cmp_{i}")
            locked.add_gate(net, "XNOR", [x, k])
            created.append(net)
            eq_bits.append(net)
        eq_x = build_and_tree(locked, eq_bits, namer, created, tag="eqx")

        # Mask: eq_k = 1 iff the applied key equals the hard-coded secret.
        mask_bits: List[str] = []
        for k, bit in zip(key_names, key_bits):
            if bit:
                mask_bits.append(k)
            else:
                mask_bits.append(build_inverter(locked, k, namer, created))
        eq_k = build_and_tree(locked, mask_bits, namer, created, tag="eqk")
        mask = namer("mask")
        locked.add_gate(mask, "NOT", [eq_k])
        created.append(mask)

        flip = namer("flip")
        locked.add_gate(flip, "AND", [eq_x, mask])
        created.append(flip)

        target = self._choose_target(original, rng)
        insert_xor_on_net(locked, target, flip)
        created.append(target)

        labels: Dict[str, str] = {g: DESIGN for g in locked.gate_names()}
        for g in created:
            labels[g] = SARLOCK

        return LockingResult(
            scheme=self.name,
            original=original,
            locked=locked,
            key=key,
            labels=labels,
            target_net=target,
            protected_inputs=tuple(x_nets),
            parameters={"key_size": self.key_size},
        )

    def _choose_target(self, original: Circuit, rng: np.random.Generator) -> str:
        """Pick the design net to XOR with the flip signal."""
        if self.target_net is not None:
            if not original.has_gate(self.target_net):
                raise LockingError(
                    f"target net {self.target_net} is not a design gate"
                )
            return self.target_net
        # Same policy as Anti-SAT: corrupt a net that reaches a primary
        # output, preferring internal nets with fan-out.
        from ..netlist.traversal import fanin_cone

        live: set = set()
        for po in original.outputs:
            live |= fanin_cone(original, po)
        fanout = original.fanout_map()
        candidates = [g for g in original.gate_names() if g in live and g in fanout]
        if not candidates:
            candidates = [g for g in original.gate_names() if g in live]
        if not candidates:
            candidates = list(original.gate_names())
        return candidates[int(rng.integers(0, len(candidates)))]


register_scheme(
    SchemeInfo(
        name="sarlock",
        display_name="SARLock",
        factory=SarLockLocking,
        params=(
            SchemeParam(
                "key_size",
                minimum=2,
                description="key width K (= number of compared primary inputs)",
            ),
        ),
        class_map={DESIGN: 0, SARLOCK: 1},
        description=(
            "Comparator lock: flips one internal net for the single input "
            "pattern equal to each wrong key"
        ),
        default_technology="BENCH8",
    )
)
