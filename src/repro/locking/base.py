"""Common infrastructure for logic-locking schemes.

Every scheme consumes an unlocked :class:`~repro.netlist.circuit.Circuit` and
produces a :class:`LockingResult`: the locked circuit, the secret key, and the
ground-truth label of every gate (design vs. protection).  Ground-truth labels
are what the GNN trains against and what the attack metrics are computed from.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..netlist.circuit import Circuit

__all__ = [
    "DESIGN",
    "ANTISAT",
    "PERTURB",
    "RESTORE",
    "NODE_LABELS",
    "LockingResult",
    "LockingScheme",
    "LockingError",
    "insert_xor_on_net",
]

# Node label constants, matching the paper's abbreviations:
#   DN = design node, AN = Anti-SAT node, PN = perturb node, RN = restore node.
DESIGN = "DN"
ANTISAT = "AN"
PERTURB = "PN"
RESTORE = "RN"

NODE_LABELS: Tuple[str, ...] = (DESIGN, ANTISAT, PERTURB, RESTORE)


class LockingError(ValueError):
    """Raised when a scheme cannot be applied (e.g. not enough PIs)."""


@dataclass
class LockingResult:
    """Outcome of locking one circuit."""

    scheme: str
    original: Circuit
    locked: Circuit
    key: Dict[str, bool]
    labels: Dict[str, str]
    target_net: str
    protected_inputs: Tuple[str, ...] = ()
    parameters: Dict[str, object] = field(default_factory=dict)

    @property
    def key_size(self) -> int:
        return len(self.key)

    @property
    def key_inputs(self) -> Tuple[str, ...]:
        return tuple(self.key)

    def key_vector(self) -> np.ndarray:
        """Key bits ordered by key-input name order of the locked circuit."""
        return np.array([self.key[k] for k in self.locked.key_inputs], dtype=bool)

    def protection_gates(self) -> Tuple[str, ...]:
        """Names of all gates that do not belong to the original design."""
        return tuple(g for g, lab in self.labels.items() if lab != DESIGN)

    def gates_with_label(self, label: str) -> Tuple[str, ...]:
        return tuple(g for g, lab in self.labels.items() if lab == label)

    def relabelled(self, name_map: Dict[str, str], locked: Circuit) -> "LockingResult":
        """Propagate labels through a netlist transformation.

        ``name_map`` maps each gate of the transformed circuit to the gate of
        the pre-transformation circuit it was derived from (as produced by
        :func:`repro.synth.technology_map`).
        """
        new_labels: Dict[str, str] = {}
        for gate_name in locked.gate_names():
            source = name_map.get(gate_name, gate_name)
            new_labels[gate_name] = self.labels.get(source, DESIGN)
        return LockingResult(
            scheme=self.scheme,
            original=self.original,
            locked=locked,
            key=dict(self.key),
            labels=new_labels,
            target_net=self.target_net,
            protected_inputs=self.protected_inputs,
            parameters=dict(self.parameters),
        )


def insert_xor_on_net(circuit: Circuit, target: str, other_input: str) -> str:
    """Splice an XOR gate onto the design net ``target``.

    After the call, the original driver of ``target`` drives a fresh "shadow"
    net, and a new XOR gate named ``target`` computes ``shadow ^ other_input``;
    every sink (and the PO, if ``target`` is one) observes the XOR output.
    This is how both Anti-SAT (Y into an internal net) and SFLL (perturb /
    restore signals into the protected output) integrate with the design.

    Returns the shadow net name.  The inserted XOR gate is named ``target``.
    """
    if not circuit.has_gate(target):
        raise LockingError(f"cannot splice XOR onto {target}: not a design gate")
    shadow = circuit.fresh_net_name(f"{target}_orig")
    was_output = circuit.is_output(target)
    circuit.rename_net(target, shadow)
    circuit.add_gate(target, "XOR", [shadow, other_input])
    # rename_net rewired every sink to the shadow net; point them back at the
    # XOR output so the corruption actually propagates.
    for sink in circuit.fanout_of(shadow):
        if sink == target:
            continue
        circuit.replace_gate_input(sink, shadow, target)
    if was_output:
        circuit.remove_output(shadow)
        circuit.add_output(target)
    return shadow


class LockingScheme(abc.ABC):
    """Base class for locking schemes."""

    #: Human-readable scheme name (e.g. ``"Anti-SAT"``).
    name: str = "abstract"

    @abc.abstractmethod
    def lock(
        self,
        circuit: Circuit,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> LockingResult:
        """Lock ``circuit`` and return the locked netlist with ground truth."""

    def _rng(self, rng: Optional[np.random.Generator]) -> np.random.Generator:
        return rng if rng is not None else np.random.default_rng()
