"""Key generation and key-input naming helpers."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["random_key_bits", "key_input_names", "key_assignment", "hamming_distance"]

KEY_INPUT_PREFIX = "keyinput"


def random_key_bits(n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """``n`` uniformly random key bits as a boolean numpy vector."""
    rng = rng if rng is not None else np.random.default_rng()
    return rng.integers(0, 2, size=n).astype(bool)


def key_input_names(n: int, *, start: int = 0, prefix: str = KEY_INPUT_PREFIX) -> List[str]:
    """Standard key-input net names ``keyinput<start>`` ... ``keyinput<start+n-1>``."""
    return [f"{prefix}{i}" for i in range(start, start + n)]


def key_assignment(names: Sequence[str], bits: Sequence[bool]) -> Dict[str, bool]:
    """Zip key-input names with key bits into an assignment dict."""
    if len(names) != len(bits):
        raise ValueError(f"{len(names)} key inputs but {len(bits)} key bits")
    return {name: bool(bit) for name, bit in zip(names, bits)}


def hamming_distance(a: Sequence[bool], b: Sequence[bool]) -> int:
    """Hamming distance between two equal-length bit vectors."""
    a_arr = np.asarray(a, dtype=bool)
    b_arr = np.asarray(b, dtype=bool)
    if a_arr.shape != b_arr.shape:
        raise ValueError("bit vectors must have equal length")
    return int(np.count_nonzero(a_arr ^ b_arr))
