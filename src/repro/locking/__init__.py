"""Provably secure logic locking schemes: Anti-SAT, TTLock, SFLL-HD."""

from .base import (
    ANTISAT,
    DESIGN,
    NODE_LABELS,
    PERTURB,
    RESTORE,
    LockingError,
    LockingResult,
    LockingScheme,
    insert_xor_on_net,
)
from .keys import hamming_distance, key_assignment, key_input_names, random_key_bits
from .antisat import AntiSatLocking
from .sfll_hd import SfllHdLocking, TTLockLocking
from .xor_lock import KEYGATE, RandomXorLocking

__all__ = [
    "ANTISAT",
    "DESIGN",
    "PERTURB",
    "RESTORE",
    "NODE_LABELS",
    "LockingError",
    "LockingResult",
    "LockingScheme",
    "insert_xor_on_net",
    "hamming_distance",
    "key_assignment",
    "key_input_names",
    "random_key_bits",
    "AntiSatLocking",
    "SfllHdLocking",
    "TTLockLocking",
    "RandomXorLocking",
    "KEYGATE",
]
