"""Logic-locking schemes behind a pluggable registry.

Importing this package registers every built-in scheme (Anti-SAT, TTLock,
SFLL-HD, RandomXOR, SARLock, Cyclic) in :data:`SCHEMES`; construct one with
``SchemeRegistry.create``/:func:`~repro.locking.registry.get_scheme` rather
than instantiating the classes directly.
"""

from .base import (
    ANTISAT,
    DESIGN,
    NODE_LABELS,
    PERTURB,
    RESTORE,
    LockingError,
    LockingResult,
    LockingScheme,
    insert_xor_on_net,
)
from .keys import hamming_distance, key_assignment, key_input_names, random_key_bits
from .registry import (
    SCHEMES,
    SchemeInfo,
    SchemeParam,
    SchemeRegistry,
    available_schemes,
    find_scheme,
    get_scheme,
    register_scheme,
)
from .antisat import AntiSatLocking
from .sfll_hd import SfllHdLocking, TTLockLocking
from .xor_lock import KEYGATE, RandomXorLocking
from .sarlock import SARLOCK, SarLockLocking
from .cyclic import CYCLE, CyclicLocking

__all__ = [
    "ANTISAT",
    "DESIGN",
    "PERTURB",
    "RESTORE",
    "KEYGATE",
    "SARLOCK",
    "CYCLE",
    "NODE_LABELS",
    "LockingError",
    "LockingResult",
    "LockingScheme",
    "insert_xor_on_net",
    "hamming_distance",
    "key_assignment",
    "key_input_names",
    "random_key_bits",
    "SCHEMES",
    "SchemeInfo",
    "SchemeParam",
    "SchemeRegistry",
    "available_schemes",
    "find_scheme",
    "get_scheme",
    "register_scheme",
    "AntiSatLocking",
    "SfllHdLocking",
    "TTLockLocking",
    "RandomXorLocking",
    "SarLockLocking",
    "CyclicLocking",
]
