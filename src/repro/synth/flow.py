"""End-to-end synthesis flow (the Synopsys Design Compiler substitute).

``synthesize`` chains decomposition, optional clean-up passes and technology
mapping; ``synthesize_locked`` additionally carries the locking ground truth
through the flow so the mapped netlist keeps per-gate protection labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..locking.base import LockingResult
from ..netlist.circuit import Circuit
from ..netlist.gates import BENCH8, CellLibrary, get_library
from .decompose import decompose_to_primitives
from .optimize import compose_name_maps, remove_buffers
from .techmap import technology_map

__all__ = ["SynthesisOptions", "synthesize", "synthesize_locked"]


@dataclass(frozen=True)
class SynthesisOptions:
    """Knobs of the synthesis flow.

    ``technology`` selects the target library by name ("GEN65" mimics the
    65nm flow of the paper, "GEN45" the Nangate 45nm flow, "BENCH8" skips
    mapping entirely — the Anti-SAT datasets stay in bench format).
    """

    technology: str = "GEN65"
    effort: str = "medium"
    remove_buffers: bool = False

    def library(self) -> CellLibrary:
        return get_library(self.technology)


def synthesize(
    circuit: Circuit,
    options: SynthesisOptions = SynthesisOptions(),
    *,
    merge_groups: Optional[Dict[str, str]] = None,
) -> Tuple[Circuit, Dict[str, str]]:
    """Synthesise ``circuit`` onto the target technology.

    Returns the mapped circuit and a gate-name map from mapped gates back to
    the gates of the input circuit (identity for untouched gates).
    """
    library = options.library()
    if library is BENCH8:
        work = circuit.copy()
        return work, {name: name for name in work.gate_names()}

    decomposed, map1 = decompose_to_primitives(circuit)
    name_map = map1
    work = decomposed
    if options.remove_buffers:
        work, map2 = remove_buffers(work)
        name_map = compose_name_maps(name_map, map2)

    groups = None
    if merge_groups is not None:
        groups = {
            gate: merge_groups.get(source, merge_groups.get(gate, "design"))
            for gate, source in name_map.items()
        }
    mapped, map3 = technology_map(
        work, library, merge_groups=groups, effort=options.effort
    )
    return mapped, compose_name_maps(name_map, map3)


def synthesize_locked(
    result: LockingResult,
    options: SynthesisOptions = SynthesisOptions(),
) -> LockingResult:
    """Synthesise a locked netlist, carrying the ground-truth labels along.

    The original (unlocked) design is synthesised with the same options so
    that recovered-vs-original equivalence checks compare netlists in the same
    technology, mirroring the paper's Formality-based evaluation.
    """
    library = options.library()
    if library is BENCH8:
        return result

    mapped_locked, locked_map = synthesize(
        result.locked, options, merge_groups=result.labels
    )
    relabelled = result.relabelled(locked_map, mapped_locked)

    mapped_original, _ = synthesize(result.original, options)
    relabelled.original = mapped_original
    return relabelled
