"""Technology mapping onto standard-cell-like libraries.

The mapper consumes a BENCH8 netlist (typically after
:func:`~repro.synth.decompose.decompose_to_primitives`) and re-expresses it in
:data:`~repro.netlist.gates.GEN65` or :data:`~repro.netlist.gates.GEN45`:

1. fanout-1 gate pairs are merged into wider / complex cells (AND3/AND4,
   NAND3, AOI21/AOI22, OAI21/OAI22, ...) where the target library offers them,
2. remaining primitives are renamed to their fixed-arity library cells,
3. simple gates are occasionally re-expressed through De Morgan-equivalent
   forms, keyed deterministically off the gate name, so the same logical
   function does not always synthesise to the same cell — this reproduces the
   "different synthesis settings" variation the paper stresses.

The mapper never merges gates from different ``merge_groups`` (the flow passes
the design/perturb/restore/Anti-SAT partition), mirroring how the paper's
protection logic remains a connected sub-graph after synthesis.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from ..netlist.circuit import Circuit, CircuitError
from ..netlist.gates import BENCH8, GEN45, GEN65, CellLibrary

__all__ = ["technology_map", "MAPPABLE_LIBRARIES"]

MAPPABLE_LIBRARIES = ("GEN65", "GEN45")

# Direct renames from 2-input/1-input BENCH8 primitives to library cells.
_DIRECT_MAP = {
    "NOT": "INV",
    "BUF": "BUF",
    "AND": "AND2",
    "NAND": "NAND2",
    "OR": "OR2",
    "NOR": "NOR2",
    "XOR": "XOR2",
    "XNOR": "XNOR2",
}


def _stable_hash(name: str) -> int:
    return int.from_bytes(hashlib.sha1(name.encode()).digest()[:4], "big")


def _arity_aware_cell(cell: str, n_inputs: int, library: CellLibrary) -> Optional[str]:
    """Library cell implementing a BENCH8 primitive of the given arity."""
    if cell in ("NOT", "BUF"):
        mapped = _DIRECT_MAP[cell]
        return mapped if mapped in library else None
    if cell in ("AND", "NAND", "OR", "NOR", "XOR", "XNOR"):
        candidate = f"{cell}{n_inputs}"
        if candidate in library:
            return candidate
        return None
    return None


def technology_map(
    circuit: Circuit,
    library: CellLibrary,
    *,
    merge_groups: Optional[Dict[str, str]] = None,
    effort: str = "medium",
) -> Tuple[Circuit, Dict[str, str]]:
    """Map a BENCH8 netlist onto ``library`` (GEN65 or GEN45).

    Parameters
    ----------
    merge_groups:
        Optional partition of the gates (gate name -> group id).  Gates from
        different groups are never merged into one library cell.
    effort:
        ``"low"`` (rename only), ``"medium"`` (default; merge + rename) or
        ``"high"`` (merge + rename + De Morgan re-expression).

    Returns
    -------
    (mapped_circuit, name_map)
        ``name_map`` sends every gate of the mapped circuit to the gate of the
        input circuit it was derived from.
    """
    if library.name not in MAPPABLE_LIBRARIES:
        raise CircuitError(f"cannot technology-map onto library {library.name}")
    if circuit.library is not BENCH8:
        raise CircuitError("technology_map expects a BENCH8 netlist")
    if effort not in ("low", "medium", "high"):
        raise ValueError(f"unknown effort {effort!r}")

    groups = merge_groups or {}
    work = circuit.copy()
    name_map: Dict[str, str] = {name: name for name in work.gate_names()}

    if effort in ("medium", "high"):
        _merge_pass(work, library, groups, name_map)

    mapped = Circuit(circuit.name, library)
    for net in work.inputs:
        mapped.add_input(net)
    for net in work.key_inputs:
        mapped.add_key_input(net)

    final_map: Dict[str, str] = {}
    for name in work.topological_order():
        gate = work.gate(name)
        cell = gate.cell.name
        if cell in library and (
            library[cell].arity is None or library[cell].arity == len(gate.inputs)
        ):
            mapped.add_gate(name, cell, gate.inputs)
            final_map[name] = name_map.get(name, name)
            continue
        target_cell = _arity_aware_cell(cell, len(gate.inputs), library)
        if target_cell is None:
            raise CircuitError(
                f"gate {name}: cell {cell} with {len(gate.inputs)} inputs cannot "
                f"be mapped onto {library.name}; decompose the netlist first"
            )
        if effort == "high" and _wants_demorgan(name, target_cell, library):
            created = _demorgan_expand(mapped, name, target_cell, gate.inputs)
            for new_name in created:
                final_map[new_name] = name_map.get(name, name)
            continue
        mapped.add_gate(name, target_cell, gate.inputs)
        final_map[name] = name_map.get(name, name)

    for net in work.outputs:
        mapped.add_output(net)
    return mapped, final_map


# ---------------------------------------------------------------------------
# Merge pass (operates in-place on a BENCH8 copy, pre-mapping)
# ---------------------------------------------------------------------------

def _merge_pass(
    work: Circuit,
    library: CellLibrary,
    groups: Dict[str, str],
    name_map: Dict[str, str],
) -> None:
    """Greedy single-pass pattern merging into complex/wide cells.

    Merges write BENCH8-illegal placeholder cells?  No — they rewrite the
    outer gate into a multi-input primitive or record a pending complex cell;
    to keep the intermediate netlist well-formed, complex cells are encoded by
    temporarily storing the final library cell name in ``_pending`` and fixed
    arity inputs, then patched during the mapping loop.  To avoid that extra
    machinery we instead perform merges directly as cell rewrites on the
    mapped netlist; see ``_try_merge`` for the supported patterns.
    """
    fanout = work.fanout_map()

    def single_fanout(net: str) -> bool:
        return len(fanout.get(net, ())) == 1 and not work.is_output(net)

    def same_group(a: str, b: str) -> bool:
        return groups.get(a, groups.get(name_map.get(a, a))) == groups.get(
            b, groups.get(name_map.get(b, b))
        )

    for name in list(work.topological_order()):
        gate = work.gates.get(name)
        if gate is None:
            continue
        cell = gate.cell.name
        ins = list(gate.inputs)

        # AND2(AND2(a,b), c) -> AND3 ; likewise AND4, OR3, OR4 (GEN65 only).
        if cell in ("AND", "OR") and len(ins) == 2:
            wide3 = f"{'AND' if cell == 'AND' else 'OR'}3"
            wide4 = f"{'AND' if cell == 'AND' else 'OR'}4"
            for idx, src in enumerate(ins):
                inner = work.gates.get(src)
                if (
                    inner is not None
                    and inner.cell.name == cell
                    and len(inner.inputs) == 2
                    and single_fanout(src)
                    and same_group(name, src)
                    and wide3 in library
                ):
                    other = ins[1 - idx]
                    new_inputs = list(inner.inputs) + [other]
                    work.set_gate(name, cell, new_inputs)
                    work.remove_gate(src)
                    name_map.pop(src, None)
                    fanout = work.fanout_map()
                    break
            gate = work.gate(name)
            ins = list(gate.inputs)
            if len(ins) == 3 and wide4 in library:
                for idx, src in enumerate(ins):
                    inner = work.gates.get(src)
                    if (
                        inner is not None
                        and inner.cell.name == cell
                        and len(inner.inputs) == 2
                        and single_fanout(src)
                        and same_group(name, src)
                    ):
                        others = [x for j, x in enumerate(ins) if j != idx]
                        work.set_gate(name, cell, list(inner.inputs) + others)
                        work.remove_gate(src)
                        name_map.pop(src, None)
                        fanout = work.fanout_map()
                        break
            continue

        # NOT(AND(a,b[,c])) -> NAND ; NOT(OR(...)) -> NOR (absorb the inverter).
        if cell == "NOT":
            src = ins[0]
            inner = work.gates.get(src)
            if (
                inner is not None
                and inner.cell.name in ("AND", "OR")
                and 2 <= len(inner.inputs) <= 3
                and single_fanout(src)
                and same_group(name, src)
            ):
                inverted = "NAND" if inner.cell.name == "AND" else "NOR"
                wide_ok = len(inner.inputs) == 2 or (
                    f"{inverted}{len(inner.inputs)}" in library
                )
                if wide_ok:
                    work.set_gate(name, inverted, inner.inputs)
                    work.remove_gate(src)
                    name_map.pop(src, None)
                    fanout = work.fanout_map()
            continue

        # NOR(AND(a,b), c) -> AOI21 ; NOR(AND(a,b), AND(c,d)) -> AOI22
        # NAND(OR(a,b), c) -> OAI21 ; NAND(OR(a,b), OR(c,d)) -> OAI22
        if cell in ("NOR", "NAND") and len(ins) == 2:
            inner_cell = "AND" if cell == "NOR" else "OR"
            complex2 = "AOI22" if cell == "NOR" else "OAI22"
            complex1 = "AOI21" if cell == "NOR" else "OAI21"
            inner_gates = []
            for src in ins:
                inner = work.gates.get(src)
                if (
                    inner is not None
                    and inner.cell.name == inner_cell
                    and len(inner.inputs) == 2
                    and single_fanout(src)
                    and same_group(name, src)
                ):
                    inner_gates.append(inner)
                else:
                    inner_gates.append(None)
            if inner_gates[0] is not None and inner_gates[1] is not None and complex2 in library:
                new_inputs = list(inner_gates[0].inputs) + list(inner_gates[1].inputs)
                work.set_gate(name, _ComplexPlaceholder(complex2), new_inputs)
                for src in ins:
                    work.remove_gate(src)
                    name_map.pop(src, None)
                fanout = work.fanout_map()
            elif inner_gates[0] is not None and complex1 in library:
                new_inputs = list(inner_gates[0].inputs) + [ins[1]]
                work.set_gate(name, _ComplexPlaceholder(complex1), new_inputs)
                work.remove_gate(ins[0])
                name_map.pop(ins[0], None)
                fanout = work.fanout_map()
            elif inner_gates[1] is not None and complex1 in library:
                new_inputs = list(inner_gates[1].inputs) + [ins[0]]
                work.set_gate(name, _ComplexPlaceholder(complex1), new_inputs)
                work.remove_gate(ins[1])
                name_map.pop(ins[1], None)
                fanout = work.fanout_map()
            continue


class _ComplexPlaceholder:
    """Stand-in cell used between the merge pass and the mapping loop.

    The merge pass runs on a BENCH8 netlist which has no AOI/OAI cells, so
    merged gates temporarily carry this placeholder; the mapping loop
    recognises it via ``cell.name`` and emits the real library cell.
    """

    def __init__(self, name: str):
        self.name = name
        self.arity = None
        self.is_variadic = True

    def evaluate(self, *inputs):  # pragma: no cover - never simulated
        raise CircuitError(f"placeholder cell {self.name} cannot be evaluated")


# ---------------------------------------------------------------------------
# De Morgan re-expression
# ---------------------------------------------------------------------------

def _wants_demorgan(name: str, cell: str, library: CellLibrary) -> bool:
    if cell not in ("AND2", "OR2"):
        return False
    return _stable_hash(name) % 4 == 0


def _demorgan_expand(
    mapped: Circuit, name: str, cell: str, inputs
) -> List[str]:
    """Emit ``AND2(a,b)`` as ``INV(NAND2(a,b))`` (resp. OR via NOR)."""
    inverted = "NAND2" if cell == "AND2" else "NOR2"
    inner = mapped.fresh_net_name(f"{name}_dm")
    mapped.add_gate(inner, inverted, inputs)
    mapped.add_gate(name, "INV", [inner])
    return [inner, name]
