"""Light-weight logic optimisation passes.

Real synthesis (Synopsys Design Compiler in the paper) restructures the
netlist before mapping it onto library cells.  These passes provide the same
kind of restructuring — enough that the protection logic is not a verbatim
copy of what the locking transform emitted — while preserving function and
reporting a name map for label propagation.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..netlist.circuit import Circuit
from ..netlist.traversal import fanin_cone

__all__ = ["remove_buffers", "remove_double_inverters", "remove_dead_gates", "compose_name_maps"]


def compose_name_maps(first: Dict[str, str], second: Dict[str, str]) -> Dict[str, str]:
    """Compose two gate-name maps: ``second`` applied after ``first``.

    Both maps send *new* gate names to the names of the gates they were
    derived from; the composition sends the final names all the way back to
    the original netlist's names.
    """
    composed: Dict[str, str] = {}
    for new_name, mid_name in second.items():
        composed[new_name] = first.get(mid_name, mid_name)
    return composed


def remove_buffers(circuit: Circuit) -> Tuple[Circuit, Dict[str, str]]:
    """Bypass BUF gates whose output is not a primary output."""
    out = circuit.copy()
    name_map = {name: name for name in out.gate_names()}
    changed = True
    while changed:
        changed = False
        for name in list(out.gate_names()):
            gate = out.gates.get(name)
            if gate is None or gate.cell.name != "BUF":
                continue
            if out.is_output(name):
                continue
            source = gate.inputs[0]
            for sink in out.fanout_of(name):
                out.replace_gate_input(sink, name, source)
            out.remove_gate(name)
            name_map.pop(name, None)
            changed = True
    return out, name_map


def remove_double_inverters(circuit: Circuit) -> Tuple[Circuit, Dict[str, str]]:
    """Rewrite ``NOT(NOT(x))`` sinks to read ``x`` directly.

    The inner/outer inverters themselves are left for dead-gate removal so
    that primary outputs driven by them keep a driver.
    """
    out = circuit.copy()
    name_map = {name: name for name in out.gate_names()}
    inverter_of: Dict[str, str] = {}
    for name in out.topological_order():
        gate = out.gate(name)
        if gate.cell.name not in ("NOT", "INV"):
            continue
        source = gate.inputs[0]
        if source in inverter_of and not out.is_output(name):
            original = inverter_of[source]
            for sink in out.fanout_of(name):
                out.replace_gate_input(sink, name, original)
        else:
            inverter_of[name] = source
    return out, name_map


def remove_dead_gates(
    circuit: Circuit, *, keep: Optional[Set[str]] = None
) -> Tuple[Circuit, Dict[str, str]]:
    """Remove gates that reach no primary output.

    ``keep`` names gates that must survive regardless (used by tests and by
    flows that want to preserve the full node count of the original design).
    """
    keep = keep or set()
    live: Set[str] = set()
    for po in circuit.outputs:
        live |= fanin_cone(circuit, po)
    out = circuit.copy()
    name_map = {}
    for name in list(out.gate_names()):
        if name in live or name in keep:
            name_map[name] = name
        else:
            out.remove_gate(name)
    return out, name_map
