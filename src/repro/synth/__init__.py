"""Synthesis substrate: decomposition, optimisation, technology mapping."""

from .decompose import decompose_to_primitives
from .optimize import (
    compose_name_maps,
    remove_buffers,
    remove_dead_gates,
    remove_double_inverters,
)
from .techmap import MAPPABLE_LIBRARIES, technology_map
from .flow import SynthesisOptions, synthesize, synthesize_locked

__all__ = [
    "decompose_to_primitives",
    "compose_name_maps",
    "remove_buffers",
    "remove_dead_gates",
    "remove_double_inverters",
    "MAPPABLE_LIBRARIES",
    "technology_map",
    "SynthesisOptions",
    "synthesize",
    "synthesize_locked",
]
