"""Decomposition of variadic bench-style gates into 2-input primitives.

This is the first stage of the synthesis flow: after it, every gate is an
INV/BUF or a 2-input AND/OR/XOR/NAND/NOR/XNOR, which the technology mapper
then re-expresses in the target standard-cell library.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..netlist.circuit import Circuit
from ..netlist.gates import BENCH8

__all__ = ["decompose_to_primitives"]

_TREE_FAMILIES = {
    "AND": ("AND", False),
    "NAND": ("AND", True),
    "OR": ("OR", False),
    "NOR": ("OR", True),
    "XOR": ("XOR", False),
    "XNOR": ("XOR", True),
}


def decompose_to_primitives(circuit: Circuit) -> Tuple[Circuit, Dict[str, str]]:
    """Rewrite ``circuit`` so that no gate has more than two inputs.

    Returns the new circuit (still in the BENCH8 vocabulary) and a name map
    from every new gate name to the original gate it was derived from, so
    ground-truth protection labels can be propagated.
    """
    out = Circuit(circuit.name, BENCH8)
    name_map: Dict[str, str] = {}
    for net in circuit.inputs:
        out.add_input(net)
    for net in circuit.key_inputs:
        out.add_key_input(net)

    for name in circuit.topological_order():
        gate = circuit.gate(name)
        cell = gate.cell.name
        inputs = list(gate.inputs)
        if cell in ("NOT", "BUF") or len(inputs) <= 2:
            out.add_gate(name, cell, inputs)
            name_map[name] = name
            continue
        family, invert = _TREE_FAMILIES[cell]
        # Balanced tree of 2-input gates; the root keeps the original name so
        # downstream sinks stay wired without renaming.
        layer = inputs
        counter = 0
        while len(layer) > 2:
            next_layer: List[str] = []
            for i in range(0, len(layer) - 1, 2):
                fresh = out.fresh_net_name(f"{name}_dc{counter}")
                counter += 1
                out.add_gate(fresh, family, [layer[i], layer[i + 1]])
                name_map[fresh] = name
                next_layer.append(fresh)
            if len(layer) % 2 == 1:
                next_layer.append(layer[-1])
            layer = next_layer
        root_cell = family if not invert else {"AND": "NAND", "OR": "NOR", "XOR": "XNOR"}[family]
        out.add_gate(name, root_cell, layer)
        name_map[name] = name

    for net in circuit.outputs:
        out.add_output(net)
    return out, name_map
