"""Span tracer: JSONL trace events gated behind ``REPRO_OBS=1``.

Usage::

    with obs.span("train_epoch", epoch=3) as handle:
        ...
        handle.tag(loss=0.12)

When ``REPRO_OBS`` is unset the context manager is a no-op (no clock reads,
no allocations beyond the generator frame), which is what keeps telemetry-off
runs byte-identical to historic ones at effectively zero cost.  When enabled,
each span completion appends one event to the process's current
:class:`Tracer` and observes the ``repro_span_seconds`` histogram in the
current metrics registry, so traces and rollups always agree.

Events carry wall-clock timestamps (``time.time()``), not ``perf_counter``
values: wall clocks are comparable *across processes*, which is what lets a
campaign's Chrome trace line up worker-process spans on one timeline.

Like the metrics registry, tracers form a process-global stack
(:func:`scoped_tracer`) so one task's events can be drained into its sidecar
without catching a concurrent unit's spans; ambient tags (campaign/job/task
ids) are attached via :func:`tag_context`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from .metrics import get_registry

__all__ = [
    "OBS_ENV",
    "SPAN_SECONDS_METRIC",
    "Tracer",
    "emit_span",
    "get_tracer",
    "obs_enabled",
    "read_events_jsonl",
    "scoped_tracer",
    "span",
    "tag_context",
    "to_chrome_trace",
    "write_events_jsonl",
]

#: Setting this to 1/true/yes/on enables span tracing and sidecar emission.
OBS_ENV = "REPRO_OBS"

#: Histogram observed once per completed span, labelled ``span=<name>`` —
#: the source of the ``repro report --timings`` phase breakdown.
SPAN_SECONDS_METRIC = "repro_span_seconds"

_TRUE_VALUES = frozenset({"1", "true", "yes", "on"})


def obs_enabled() -> bool:
    """Whether span tracing is on (``REPRO_OBS`` truthy).

    Read live on every call — cheap (one dict lookup) and required so tests
    and child processes see toggles without module reloads.
    """
    return os.environ.get(OBS_ENV, "").strip().lower() in _TRUE_VALUES


class SpanHandle:
    """Yielded by :func:`span`; lets the body attach tags before exit."""

    __slots__ = ("tags",)

    def __init__(self) -> None:
        self.tags: Dict[str, object] = {}

    def tag(self, **tags: object) -> None:
        self.tags.update(tags)


class _NullHandle:
    __slots__ = ()

    def tag(self, **tags: object) -> None:
        pass


_NULL_HANDLE = _NullHandle()


class Tracer:
    """Thread-safe in-memory buffer of trace events."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: List[Dict[str, object]] = []

    def append(self, event: Dict[str, object]) -> None:
        with self._lock:
            self._events.append(event)

    def extend(self, events: Sequence[Mapping[str, object]]) -> None:
        with self._lock:
            self._events.extend(dict(e) for e in events)

    def events(self) -> List[Dict[str, object]]:
        with self._lock:
            return list(self._events)

    def drain(self) -> List[Dict[str, object]]:
        """Return and clear the buffered events."""
        with self._lock:
            events, self._events = self._events, []
            return events


_TRACER_STACK: List[Tracer] = [Tracer()]


def get_tracer() -> Tracer:
    """The process's current (innermost scoped) tracer."""
    return _TRACER_STACK[-1]


@contextmanager
def scoped_tracer(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Push a fresh tracer for one unit of work (mirrors scoped_registry)."""
    tracer = tracer if tracer is not None else Tracer()
    _TRACER_STACK.append(tracer)
    try:
        yield tracer
    finally:
        try:
            _TRACER_STACK.remove(tracer)
        except ValueError:
            pass


# ----------------------------------------------------------------------
# Ambient tags: campaign/job/task ids attached to every span emitted while
# the context is active.  Process-global (not thread-local) on purpose —
# prefetch threads and intra thread-pool workers emit spans on behalf of the
# ambient task and must inherit its ids.

_CONTEXT: Dict[str, object] = {}
_CONTEXT_LOCK = threading.Lock()


@contextmanager
def tag_context(**tags: object) -> Iterator[None]:
    """Attach ambient tags (e.g. ``task=...``) to spans emitted inside."""
    with _CONTEXT_LOCK:
        saved = dict(_CONTEXT)
        _CONTEXT.update({k: v for k, v in tags.items() if v is not None})
    try:
        yield
    finally:
        with _CONTEXT_LOCK:
            _CONTEXT.clear()
            _CONTEXT.update(saved)


def _current_context() -> Dict[str, object]:
    with _CONTEXT_LOCK:
        return dict(_CONTEXT)


# ----------------------------------------------------------------------
_RESERVED_KEYS = ("name", "ts", "dur", "pid", "tid")


def _record_span(
    name: str, *, ts: float, dur: float, tags: Optional[Mapping[str, object]] = None
) -> None:
    event: Dict[str, object] = {
        "name": name,
        "ts": round(float(ts), 6),
        "dur": round(float(dur), 6),
        "pid": os.getpid(),
        "tid": threading.get_ident(),
    }
    merged = _current_context()
    if tags:
        merged.update(tags)
    for key, value in merged.items():
        if value is not None and key not in _RESERVED_KEYS:
            event[key] = value
    get_tracer().append(event)
    get_registry().observe(SPAN_SECONDS_METRIC, float(dur), span=name)


@contextmanager
def span(name: str, **tags: object) -> Iterator:
    """Time a block as one trace event (no-op unless ``REPRO_OBS`` is set)."""
    if not obs_enabled():
        yield _NULL_HANDLE
        return
    handle = SpanHandle()
    start_wall = time.time()
    start = time.perf_counter()
    try:
        yield handle
    finally:
        merged = dict(tags)
        merged.update(handle.tags)
        _record_span(
            name, ts=start_wall, dur=time.perf_counter() - start, tags=merged
        )


def emit_span(name: str, *, ts: float, dur: float, **tags: object) -> None:
    """Record an already-measured span (e.g. queue wait computed after the
    fact from a submission timestamp).  No-op unless ``REPRO_OBS`` is set."""
    if not obs_enabled():
        return
    _record_span(name, ts=ts, dur=max(0.0, float(dur)), tags=tags)


# ----------------------------------------------------------------------
def to_chrome_trace(events: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    """Convert trace events to the Chrome trace-event JSON format.

    Load the result at ``chrome://tracing`` or https://ui.perfetto.dev.
    Timestamps and durations become microseconds; everything that is not a
    reserved field lands in ``args`` so tags survive the conversion.
    """
    trace_events: List[Dict[str, object]] = []
    for event in events:
        args = {
            k: v for k, v in event.items() if k not in _RESERVED_KEYS
        }
        trace_events.append(
            {
                "name": str(event.get("name", "span")),
                "cat": "repro",
                "ph": "X",
                "ts": float(event.get("ts", 0.0)) * 1e6,
                "dur": float(event.get("dur", 0.0)) * 1e6,
                "pid": int(event.get("pid", 0)),
                "tid": int(event.get("tid", 0)),
                "args": args,
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_events_jsonl(
    path: os.PathLike, events: Sequence[Mapping[str, object]], append: bool = True
) -> None:
    """Append events to a JSONL trace file (one JSON object per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    mode = "a" if append else "w"
    with path.open(mode, encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True, default=str) + "\n")


def read_events_jsonl(path: os.PathLike) -> List[Dict[str, object]]:
    """Load a JSONL trace file; unparseable lines are skipped."""
    path = Path(path)
    if not path.is_file():
        return []
    events: List[Dict[str, object]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return events
