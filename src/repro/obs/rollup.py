"""Per-task telemetry sidecars and campaign-level rollups.

Task workers run in separate processes, so their metrics and spans cannot
reach the campaign driver through shared memory.  Instead, each
``execute_task`` invocation (with ``REPRO_OBS=1``) snapshots its scoped
registry and drains its scoped tracer into a *sidecar* JSON file under
``<store stem>.obs/pending/``; after the campaign the driver folds every
pending sidecar into two durable artifacts next to the result store:

* ``<store stem>.obs/rollup.json`` — merged metrics snapshot plus per-span
  summaries (count/total/mean/max seconds), accumulated across runs so a
  resumed campaign keeps its history;
* ``<store stem>.obs/trace.jsonl``  — the concatenated trace events, which
  ``repro trace`` exports to Chrome trace-event format.

Telemetry lives strictly *next to* the store — never inside records — so
fingerprints, goldens and the byte-identical service/offline reports are
untouched by any of this.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from .metrics import MetricsRegistry
from .trace import write_events_jsonl

__all__ = [
    "ROLLUP_FILENAME",
    "SIDECAR_DIRNAME",
    "TRACE_FILENAME",
    "load_rollup",
    "merge_sidecars",
    "obs_dir_for_store",
    "rollup_path",
    "span_summary_table",
    "trace_path",
    "write_sidecar",
]

ROLLUP_FILENAME = "rollup.json"
TRACE_FILENAME = "trace.jsonl"
SIDECAR_DIRNAME = "pending"


def obs_dir_for_store(store_path: os.PathLike) -> Path:
    """Telemetry directory for a result store: ``runs/x.jsonl -> runs/x.obs``."""
    path = Path(store_path)
    return path.parent / (path.stem + ".obs")


def rollup_path(obs_dir: os.PathLike) -> Path:
    return Path(obs_dir) / ROLLUP_FILENAME


def trace_path(obs_dir: os.PathLike) -> Path:
    return Path(obs_dir) / TRACE_FILENAME


def _atomic_write_text(path: Path, text: str) -> None:
    # Local twin of runner.cache.atomic_write, kept here so the obs package
    # stays free of runner imports (runner.cache imports obs.metrics).
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def write_sidecar(
    obs_dir: os.PathLike,
    fingerprint: str,
    metrics_snapshot: Mapping[str, object],
    events: Sequence[Mapping[str, object]],
) -> Path:
    """Persist one task's telemetry delta for the driver to merge.

    Named by task fingerprint, so a re-executed task overwrites its own
    pending sidecar instead of double counting.
    """
    path = Path(obs_dir) / SIDECAR_DIRNAME / f"task-{fingerprint[:16]}.json"
    payload = {
        "fingerprint": str(fingerprint),
        "metrics": dict(metrics_snapshot),
        "events": [dict(e) for e in events],
    }
    _atomic_write_text(path, json.dumps(payload, sort_keys=True, default=str))
    return path


def load_rollup(obs_dir: os.PathLike) -> Optional[Dict[str, object]]:
    path = rollup_path(obs_dir)
    if not path.is_file():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


def merge_sidecars(
    obs_dir: os.PathLike,
    extra_events: Optional[Sequence[Mapping[str, object]]] = None,
) -> Dict[str, object]:
    """Fold pending sidecars (plus driver-side events) into the rollup.

    Consumed sidecars are deleted; the rollup accumulates across calls so an
    interrupted-and-resumed campaign ends with the same totals as an
    uninterrupted one.  Returns the updated rollup dictionary.
    """
    obs_dir = Path(obs_dir)
    existing = load_rollup(obs_dir) or {}
    registry = MetricsRegistry()
    if existing.get("metrics"):
        registry.merge(existing["metrics"])  # type: ignore[arg-type]
    spans: Dict[str, Dict[str, float]] = {
        str(name): dict(stats)
        for name, stats in (existing.get("spans") or {}).items()  # type: ignore[union-attr]
    }

    events: List[Dict[str, object]] = []
    merged = int(existing.get("merged_sidecars", 0))
    pending = obs_dir / SIDECAR_DIRNAME
    if pending.is_dir():
        for path in sorted(pending.glob("task-*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                payload = None
            if payload is not None:
                registry.merge(payload.get("metrics") or {})
                events.extend(payload.get("events") or [])
                merged += 1
            try:
                path.unlink()
            except OSError:
                pass
    if extra_events:
        events.extend(dict(e) for e in extra_events)

    for event in events:
        name = str(event.get("name", "span"))
        dur = float(event.get("dur", 0.0))
        bucket = spans.setdefault(
            name, {"count": 0, "total_s": 0.0, "mean_s": 0.0, "max_s": 0.0}
        )
        bucket["count"] = int(bucket["count"]) + 1
        bucket["total_s"] = float(bucket["total_s"]) + dur
        bucket["max_s"] = max(float(bucket["max_s"]), dur)
    for bucket in spans.values():
        count = max(1, int(bucket["count"]))
        bucket["total_s"] = round(float(bucket["total_s"]), 6)
        bucket["mean_s"] = round(float(bucket["total_s"]) / count, 6)
        bucket["max_s"] = round(float(bucket["max_s"]), 6)

    if events:
        events.sort(key=lambda e: float(e.get("ts", 0.0)))
        write_events_jsonl(trace_path(obs_dir), events, append=True)

    rollup: Dict[str, object] = {
        "updated_at": time.time(),
        "merged_sidecars": merged,
        "spans": spans,
        "metrics": registry.snapshot(),
    }
    _atomic_write_text(
        rollup_path(obs_dir), json.dumps(rollup, sort_keys=True, default=str)
    )
    return rollup


def span_summary_table(rollup: Mapping[str, object]) -> List[List[str]]:
    """Rows for the ``repro report --timings`` phase-breakdown table.

    ``[phase, count, total_s, mean_s, max_s, share_pct]``, sorted by total
    descending; the share is of the sum over phases (phases nest, so it is a
    where-does-time-go signal, not a partition of wall clock).
    """
    spans: Mapping[str, Mapping[str, float]] = (
        rollup.get("spans") or {}  # type: ignore[assignment]
    )
    total = sum(float(stats.get("total_s", 0.0)) for stats in spans.values())
    rows: List[List[str]] = []
    ordered = sorted(
        spans.items(), key=lambda item: -float(item[1].get("total_s", 0.0))
    )
    for name, stats in ordered:
        total_s = float(stats.get("total_s", 0.0))
        rows.append(
            [
                str(name),
                str(int(stats.get("count", 0))),
                f"{total_s:.3f}",
                f"{float(stats.get('mean_s', 0.0)):.4f}",
                f"{float(stats.get('max_s', 0.0)):.3f}",
                f"{(100.0 * total_s / total) if total else 0.0:.1f}",
            ]
        )
    return rows
