"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

Zero-dependency and deliberately small: a :class:`MetricsRegistry` is a
thread-safe bag of labelled series that can be snapshotted to JSON, merged
with another snapshot (the cross-process story — task workers snapshot on
exit, the campaign driver merges), and rendered in the Prometheus text
exposition format (the ``/metricsz`` story).

Process model: every process owns a registry *stack*.  ``get_registry()``
returns the top; :func:`scoped_registry` pushes a fresh registry for the
duration of one unit of work (a campaign task, an intra-pool job) so the
unit's delta can be shipped elsewhere without double counting.  The stack is
process-global on purpose — helper threads (batch prefetchers, intra thread
pools) must land their increments in the ambient unit's registry, which a
thread-local stack would lose.

Counters and histograms merge by addition; gauges merge last-write-wins.
Nothing here ever reaches result records, fingerprints, or reports — the
determinism contract of the stores is untouched by telemetry.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "get_registry",
    "parse_prometheus",
    "scoped_registry",
]

#: Default histogram bucket upper bounds, in seconds — spans range from
#: sub-millisecond SAT queries to multi-minute training runs.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: _LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = [*key, *extra]
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    as_int = int(value)
    return str(as_int) if value == as_int else repr(float(value))


class MetricsRegistry:
    """Thread-safe labelled counters, gauges and fixed-bucket histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Dict[_LabelKey, float]] = {}
        self._gauges: Dict[str, Dict[_LabelKey, float]] = {}
        self._histograms: Dict[str, Dict[_LabelKey, Dict[str, object]]] = {}
        self._bounds: Dict[str, Tuple[float, ...]] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0.0) + float(value)

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        with self._lock:
            self._gauges.setdefault(name, {})[_label_key(labels)] = float(value)

    def add_gauge(self, name: str, delta: float, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._gauges.setdefault(name, {})
            series[key] = series.get(key, 0.0) + float(delta)

    def observe(
        self,
        name: str,
        value: float,
        *,
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> None:
        """Record one histogram observation (bounds fix on first use)."""
        key = _label_key(labels)
        value = float(value)
        with self._lock:
            bounds = self._bounds.setdefault(
                name, tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
            )
            series = self._histograms.setdefault(name, {})
            cell = series.get(key)
            if cell is None:
                cell = {"counts": [0] * (len(bounds) + 1), "sum": 0.0, "count": 0}
                series[key] = cell
            counts: List[int] = cell["counts"]  # type: ignore[assignment]
            for index, bound in enumerate(bounds):
                if value <= bound:
                    counts[index] += 1
                    break
            else:
                counts[-1] += 1
            cell["sum"] = float(cell["sum"]) + value
            cell["count"] = int(cell["count"]) + 1

    # ------------------------------------------------------------------
    def value(self, name: str, **labels: object) -> float:
        """Current value of a counter (0.0 when the series is absent)."""
        with self._lock:
            return self._counters.get(name, {}).get(_label_key(labels), 0.0)

    def gauge_value(self, name: str, **labels: object) -> float:
        with self._lock:
            return self._gauges.get(name, {}).get(_label_key(labels), 0.0)

    def histogram_stats(self, name: str, **labels: object) -> Dict[str, float]:
        """``{count, sum}`` of one histogram series (zeros when absent)."""
        with self._lock:
            cell = self._histograms.get(name, {}).get(_label_key(labels))
            if cell is None:
                return {"count": 0, "sum": 0.0}
            return {"count": int(cell["count"]), "sum": float(cell["sum"])}

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-safe copy of every series (the sidecar payload)."""
        with self._lock:
            return {
                "counters": {
                    name: [[dict(key), value] for key, value in sorted(series.items())]
                    for name, series in sorted(self._counters.items())
                },
                "gauges": {
                    name: [[dict(key), value] for key, value in sorted(series.items())]
                    for name, series in sorted(self._gauges.items())
                },
                "histograms": {
                    name: {
                        "bounds": list(self._bounds.get(name, DEFAULT_BUCKETS)),
                        "series": [
                            [
                                dict(key),
                                {
                                    "counts": list(cell["counts"]),  # type: ignore[arg-type]
                                    "sum": float(cell["sum"]),
                                    "count": int(cell["count"]),
                                },
                            ]
                            for key, cell in sorted(series.items())
                        ],
                    }
                    for name, series in sorted(self._histograms.items())
                },
            }

    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histograms add; gauges take the incoming value.  Unknown
        shapes are skipped rather than raised — a malformed sidecar must not
        sink the campaign that is merging it.
        """
        for name, series in (snapshot.get("counters") or {}).items():  # type: ignore[union-attr]
            for labels, value in series:
                self.inc(str(name), float(value), **labels)
        for name, series in (snapshot.get("gauges") or {}).items():  # type: ignore[union-attr]
            for labels, value in series:
                self.set_gauge(str(name), float(value), **labels)
        histograms = snapshot.get("histograms") or {}
        for name, payload in histograms.items():  # type: ignore[union-attr]
            bounds = tuple(float(b) for b in payload.get("bounds") or DEFAULT_BUCKETS)
            with self._lock:
                self._bounds.setdefault(str(name), bounds)
                own_bounds = self._bounds[str(name)]
                series = self._histograms.setdefault(str(name), {})
                for labels, cell in payload.get("series") or []:
                    key = _label_key(labels)
                    mine = series.get(key)
                    if mine is None:
                        mine = {
                            "counts": [0] * (len(own_bounds) + 1),
                            "sum": 0.0,
                            "count": 0,
                        }
                        series[key] = mine
                    counts = cell.get("counts") or []
                    if len(counts) == len(mine["counts"]):  # type: ignore[arg-type]
                        mine["counts"] = [
                            int(a) + int(b)
                            for a, b in zip(mine["counts"], counts)  # type: ignore[arg-type]
                        ]
                    mine["sum"] = float(mine["sum"]) + float(cell.get("sum", 0.0))
                    mine["count"] = int(mine["count"]) + int(cell.get("count", 0))

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._bounds.clear()

    # ------------------------------------------------------------------
    def render_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every series."""
        lines: List[str] = []
        with self._lock:
            for name in sorted(self._counters):
                lines.append(f"# TYPE {name} counter")
                for key, value in sorted(self._counters[name].items()):
                    lines.append(f"{name}{_render_labels(key)} {_format_value(value)}")
            for name in sorted(self._gauges):
                lines.append(f"# TYPE {name} gauge")
                for key, value in sorted(self._gauges[name].items()):
                    lines.append(f"{name}{_render_labels(key)} {_format_value(value)}")
            for name in sorted(self._histograms):
                lines.append(f"# TYPE {name} histogram")
                bounds = self._bounds.get(name, DEFAULT_BUCKETS)
                for key, cell in sorted(self._histograms[name].items()):
                    cumulative = 0
                    counts: Sequence[int] = cell["counts"]  # type: ignore[assignment]
                    for bound, count in zip(bounds, counts):
                        cumulative += int(count)
                        label = _render_labels(key, [("le", repr(float(bound)))])
                        lines.append(f"{name}_bucket{label} {cumulative}")
                    cumulative += int(counts[-1])
                    label = _render_labels(key, [("le", "+Inf")])
                    lines.append(f"{name}_bucket{label} {cumulative}")
                    lines.append(
                        f"{name}_sum{_render_labels(key)} "
                        f"{_format_value(float(cell['sum']))}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(key)} {int(cell['count'])}"
                    )
        return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse Prometheus text format into ``{"name{labels}": value}``.

    Intentionally minimal (no exemplar/timestamp support): enough for tests,
    CI smoke checks and the load-harness snapshot to assert on series without
    a client library.
    """
    series: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            continue
        try:
            series[name] = float(value)
        except ValueError:
            continue
    return series


# ----------------------------------------------------------------------
# The per-process registry stack.

_REGISTRY_STACK: List[MetricsRegistry] = [MetricsRegistry()]


def get_registry() -> MetricsRegistry:
    """The process's current (innermost scoped) registry."""
    return _REGISTRY_STACK[-1]


@contextmanager
def scoped_registry(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Push a fresh registry for one unit of work.

    Increments made anywhere in the process while the scope is active land in
    the scoped registry; the caller decides what to do with its snapshot
    (write a sidecar, ship it over a pool future, merge it upward).
    """
    registry = registry if registry is not None else MetricsRegistry()
    _REGISTRY_STACK.append(registry)
    try:
        yield registry
    finally:
        try:
            _REGISTRY_STACK.remove(registry)
        except ValueError:
            pass
