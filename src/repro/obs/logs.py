"""Structured logging: JSON lines behind ``REPRO_LOG=json``.

The service and its workers already funnel every message through an ``echo``
callable; :func:`emit` is the formatting layer in front of it.  In the
default (plain) mode the human-readable message passes through *unchanged*,
so existing output, tests and smoke scripts see exactly the historic lines.
With ``REPRO_LOG=json`` each message becomes one JSON object carrying a
timestamp, level, component and whatever ids the call site threads through
(``job_id=...``, ``task_id=...``), which is what log aggregators want.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable

__all__ = ["LOG_ENV", "emit", "log_json_enabled"]

#: Set to ``json`` to switch every echo line to structured JSON.
LOG_ENV = "REPRO_LOG"


def log_json_enabled() -> bool:
    """Whether structured JSON logging is on (read live, like ``REPRO_OBS``)."""
    return os.environ.get(LOG_ENV, "").strip().lower() == "json"


def emit(
    echo: Callable[[str], None],
    message: str,
    *,
    component: str = "repro",
    level: str = "info",
    **fields: object,
) -> None:
    """Send one log line through ``echo``, structured when configured.

    Plain mode emits ``message`` verbatim; JSON mode wraps it with ``ts``,
    ``level``, ``component`` and the extra ``fields`` (None values dropped).
    """
    if not log_json_enabled():
        echo(message)
        return
    payload = {
        "ts": round(time.time(), 6),
        "level": level,
        "component": component,
        "msg": message,
    }
    for key, value in fields.items():
        if value is not None:
            payload[key] = value
    echo(json.dumps(payload, sort_keys=True, default=str))
