"""repro.obs — zero-dependency telemetry: metrics, spans, rollups, logs.

Three pieces (see ISSUE 6 / the README "Observability" section):

* :mod:`repro.obs.metrics` — process-local :class:`MetricsRegistry`
  (counters/gauges/histograms) with snapshot/merge for crossing process
  boundaries and a Prometheus text renderer for ``/metricsz``;
* :mod:`repro.obs.trace`   — ``with obs.span("train"):`` JSONL span tracer
  gated behind ``REPRO_OBS=1``, exportable to Chrome trace-event format;
* :mod:`repro.obs.rollup`  — per-task sidecars merged into campaign-level
  ``rollup.json`` / ``trace.jsonl`` next to the result store;
* :mod:`repro.obs.logs`    — structured JSON log lines behind
  ``REPRO_LOG=json``.

Telemetry never enters result records, fingerprints, goldens or rendered
reports: with ``REPRO_OBS`` unset every span is a no-op and runs stay
byte-identical to historic output.
"""

# Import order matters: rollup imports metrics and trace, and runner.cache
# imports obs.metrics — keep the leaf modules first.
from .metrics import (  # noqa: F401
    DEFAULT_BUCKETS,
    MetricsRegistry,
    get_registry,
    parse_prometheus,
    scoped_registry,
)
from .trace import (  # noqa: F401
    OBS_ENV,
    SPAN_SECONDS_METRIC,
    Tracer,
    emit_span,
    get_tracer,
    obs_enabled,
    read_events_jsonl,
    scoped_tracer,
    span,
    tag_context,
    to_chrome_trace,
    write_events_jsonl,
)
from .logs import LOG_ENV, emit, log_json_enabled  # noqa: F401
from .rollup import (  # noqa: F401
    load_rollup,
    merge_sidecars,
    obs_dir_for_store,
    rollup_path,
    span_summary_table,
    trace_path,
    write_sidecar,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "LOG_ENV",
    "MetricsRegistry",
    "OBS_ENV",
    "SPAN_SECONDS_METRIC",
    "Tracer",
    "emit",
    "emit_span",
    "get_registry",
    "get_tracer",
    "load_rollup",
    "log_json_enabled",
    "merge_sidecars",
    "obs_dir_for_store",
    "obs_enabled",
    "parse_prometheus",
    "read_events_jsonl",
    "rollup_path",
    "scoped_registry",
    "scoped_tracer",
    "span",
    "span_summary_table",
    "tag_context",
    "to_chrome_trace",
    "trace_path",
    "write_events_jsonl",
    "write_sidecar",
]
