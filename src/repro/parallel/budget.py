"""The global intra-task worker budget and per-job seed derivation.

Two levels of parallelism coexist in a campaign: the runner fans *tasks* out
over a ``ProcessPoolExecutor`` (``repro run --workers``), and each task may
fan *jobs* out over a :class:`~repro.parallel.pool.WorkerPool`
(``--intra-workers`` / ``REPRO_INTRA_WORKERS``).  To keep the machine from
oversubscribing, the budget is *global*: the campaign executor divides the
requested intra-worker count by the number of concurrently running tasks and
hands each task its share (see :func:`repro.runner.executor.run_campaign`).

Budget semantics
----------------
* ``REPRO_INTRA_WORKERS`` unset, ``1``, or invalid — the **legacy serial
  path**: hot loops run inline with sequential RNG streams, bit-identical to
  releases that predate :mod:`repro.parallel`.  This is the default, so
  golden results never change unless parallelism is explicitly requested.
* ``REPRO_INTRA_WORKERS=N`` (N > 1) — the **pooled path**: parallel stages
  split into identity-seeded jobs.  Results are bit-identical for every
  backend and every N > 1 (the job decomposition, not the schedule, defines
  the randomness), but differ from the legacy sequential stream.
* ``REPRO_INTRA_BACKEND`` picks the backend for pooled stages (``thread``
  by default; ``process`` pays fork+pickle overhead but parallelises the
  pure-Python SAT solver, which threads cannot).

:func:`derive_job_seed` is the per-job analogue of
:meth:`repro.core.config.AttackConfig.derive_seed` (same digest, same
semantics): a job's randomness comes from *what it is*, never from *when it
ran*.
"""

from __future__ import annotations

import hashlib
import os
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

from .pool import BACKENDS, WorkerPool

__all__ = [
    "DEFAULT_INTRA_BACKEND",
    "INTRA_BACKEND_ENV",
    "INTRA_WORKERS_ENV",
    "derive_job_seed",
    "intra_backend",
    "intra_budget",
    "intra_worker_budget",
    "pool_from_budget",
    "resolve_pool",
    "shared_pool",
]

#: Environment variable holding the global intra-task worker budget.
INTRA_WORKERS_ENV = "REPRO_INTRA_WORKERS"

#: Environment variable selecting the pooled backend (serial/thread/process).
INTRA_BACKEND_ENV = "REPRO_INTRA_BACKEND"

DEFAULT_INTRA_BACKEND = "thread"


def derive_job_seed(base_seed: int, *parts: object) -> int:
    """Stable per-job seed from a base seed and the job's identity tuple.

    Mirrors :meth:`repro.core.config.AttackConfig.derive_seed` bit for bit,
    so a stage seeded from a config seed and a stage seeded from a derived
    base seed follow the same convention.
    """
    digest = hashlib.sha256(
        ("|".join(map(str, parts)) + f"|{base_seed}").encode()
    )
    return int.from_bytes(digest.digest()[:8], "big")


def intra_worker_budget(default: int = 1) -> int:
    """The global intra-task worker budget (``REPRO_INTRA_WORKERS``)."""
    raw = os.environ.get(INTRA_WORKERS_ENV, "").strip()
    if not raw:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


def intra_backend() -> str:
    """The pooled backend name (``REPRO_INTRA_BACKEND``, default thread)."""
    raw = os.environ.get(INTRA_BACKEND_ENV, "").strip().lower()
    return raw if raw in BACKENDS else DEFAULT_INTRA_BACKEND


@contextmanager
def intra_budget(workers: Optional[int]) -> Iterator[None]:
    """Temporarily pin the intra-worker budget for the current process.

    The campaign executor wraps each task in this so nested stages consult
    the task's *share* of the global budget rather than the campaign-wide
    value inherited through the environment.  ``None`` leaves the ambient
    budget untouched.
    """
    if workers is None:
        yield
        return
    previous = os.environ.get(INTRA_WORKERS_ENV)
    os.environ[INTRA_WORKERS_ENV] = str(max(1, int(workers)))
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(INTRA_WORKERS_ENV, None)
        else:
            os.environ[INTRA_WORKERS_ENV] = previous


# ----------------------------------------------------------------------
_POOLS: Dict[Tuple[str, int], WorkerPool] = {}
_POOLS_LOCK = threading.Lock()


def shared_pool(backend: Optional[str] = None, max_workers: Optional[int] = None) -> WorkerPool:
    """A process-wide cached pool for ``(backend, max_workers)``.

    Executors are expensive to start (especially process pools); sharing one
    per configuration means a campaign's thousands of equivalence checks pay
    the start-up cost once.
    """
    backend = backend or intra_backend()
    max_workers = max_workers if max_workers is not None else intra_worker_budget()
    key = (backend, max(1, int(max_workers)))
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is None:
            # Budget-derived pools auto-degrade: on a 1-core box the
            # concurrent backends only add dispatch overhead (see
            # BENCH_intra_parallel.json), and the determinism contract
            # guarantees identical results either way.  Explicitly
            # constructed WorkerPools keep their requested backend.
            pool = WorkerPool(backend=key[0], max_workers=key[1], auto_degrade=True)
            _POOLS[key] = pool
        return pool


def pool_from_budget(
    workers: Optional[int] = None, backend: Optional[str] = None
) -> Optional[WorkerPool]:
    """The pool the current budget allows, or ``None`` for the legacy path.

    A budget of one means "no intra-task parallelism": callers receive
    ``None`` and keep their serial hot path, which stays bit-identical to
    historical results.
    """
    workers = intra_worker_budget() if workers is None else max(1, int(workers))
    if workers <= 1:
        return None
    return shared_pool(backend or intra_backend(), workers)


def resolve_pool(pool: Optional[WorkerPool] = None) -> Optional[WorkerPool]:
    """An explicit pool if given, else whatever the ambient budget allows."""
    return pool if pool is not None else pool_from_budget()
