"""Intra-task worker pools with serial, thread and process backends.

The campaign runner parallelises *across* tasks; this module parallelises
*inside* one task — GraphSAINT normalisation walks, sharded SAT equivalence
queries, and any future embarrassingly parallel stage.  One abstraction,
:class:`WorkerPool`, hides the backend choice:

* ``serial``  — jobs run inline in the calling thread, lazily (a job that is
  cancelled before its result is requested never executes).  This backend
  exists so parallel decompositions can be tested and reproduced without any
  concurrency at all.
* ``thread``  — a shared :class:`~concurrent.futures.ThreadPoolExecutor`.
  Right for jobs that release the GIL (large numpy operations) or that need
  to work inside daemonic campaign worker processes.
* ``process`` — a shared :class:`~concurrent.futures.ProcessPoolExecutor`.
  Right for pure-Python CPU-bound jobs (the SAT solver).  Falls back to the
  thread backend inside daemonic processes, which may not spawn children.

Determinism contract
--------------------
Jobs must derive any randomness from their *identity* (e.g.
:func:`repro.parallel.budget.derive_job_seed` over the job index), never from
execution order or shared generator state.  Under that contract every backend
and every worker count produces bit-identical results: the serial backend is
the reference, and the determinism suite (``tests/parallel``) asserts the
thread and process backends reproduce it exactly.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import (
    CancelledError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed as _futures_as_completed,
)
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from ..obs import (
    MetricsRegistry,
    Tracer,
    get_registry,
    get_tracer,
    obs_enabled,
    scoped_registry,
    scoped_tracer,
)

__all__ = ["BACKENDS", "MIN_PARALLEL_ITEMS", "SerialFuture", "WorkerPool"]

#: Recognised backend names, in "least to most isolation" order.
BACKENDS = ("serial", "thread", "process")

#: Below this many items, ``map`` runs inline: dispatch overhead beats any
#: parallel win for one- or two-element batches on every backend.
MIN_PARALLEL_ITEMS = 2


class SerialFuture:
    """Lazy future used by the serial backend.

    The job runs the first time :meth:`result` (or :meth:`exception`) is
    called; cancelling before that point means the job never executes — which
    is exactly how short-circuiting consumers (first-SAT-shard-wins) avoid
    doing work a parallel backend would have skipped.
    """

    __slots__ = ("_fn", "_args", "_kwargs", "_ran", "_cancelled", "_result", "_error")

    def __init__(self, fn: Callable, args: tuple, kwargs: dict):
        self._fn = fn
        self._args = args
        self._kwargs = kwargs
        self._ran = False
        self._cancelled = False
        self._result = None
        self._error: Optional[BaseException] = None

    def _run(self) -> None:
        if self._ran or self._cancelled:
            return
        self._ran = True
        try:
            self._result = self._fn(*self._args, **self._kwargs)
        except BaseException as exc:  # noqa: BLE001 - futures carry exceptions
            self._error = exc

    def cancel(self) -> bool:
        if self._ran:
            return False
        self._cancelled = True
        return True

    def cancelled(self) -> bool:
        return self._cancelled

    def done(self) -> bool:
        return self._ran or self._cancelled

    def result(self):
        if self._cancelled:
            raise CancelledError()
        self._run()
        if self._error is not None:
            raise self._error
        return self._result

    def exception(self) -> Optional[BaseException]:
        if self._cancelled:
            raise CancelledError()
        self._run()
        return self._error


def _instrumented_call(fn: Callable, args: tuple, kwargs: dict):
    """Run one pool job under a fresh telemetry scope (in a worker process).

    Returns ``(value, metrics_snapshot, trace_events)`` so the parent can
    merge the worker's delta into its own ambient registry/tracer — process
    workers cannot reach the parent's in-memory telemetry directly.  Must
    stay module-level: the process backend pickles it.
    """
    registry = MetricsRegistry()
    tracer = Tracer()
    with scoped_registry(registry), scoped_tracer(tracer):
        value = fn(*args, **kwargs)
    return value, registry.snapshot(), tracer.drain()


class _ShippingFuture:
    """Future wrapper that merges a worker's telemetry delta on first access.

    Wraps a process-backend future whose job ran under
    :func:`_instrumented_call`; ``result()`` unpacks the payload and folds
    the metrics/events into the calling process's current registry and
    tracer exactly once.  The full future surface used by consumers
    (``cancel``/``cancelled``/``done``/``exception``) is preserved, and
    :meth:`WorkerPool.as_completed` keeps wrapper identity stable so
    ``{future: index}`` bookkeeping (the sharded SAT path) still works.
    """

    __slots__ = ("_inner", "_merged", "_value")

    def __init__(self, inner):
        self._inner = inner
        self._merged = False
        self._value = None

    def cancel(self) -> bool:
        return self._inner.cancel()

    def cancelled(self) -> bool:
        return self._inner.cancelled()

    def done(self) -> bool:
        return self._inner.done()

    def running(self) -> bool:
        return self._inner.running()

    def result(self, timeout=None):
        if not self._merged:
            # May raise (timeout, cancellation, the job's own error); the
            # job's telemetry only ships with a successful payload.
            value, snapshot, events = self._inner.result(timeout)
            self._value = value
            self._merged = True
            try:
                get_registry().merge(snapshot)
                get_tracer().extend(events)
            except Exception:  # noqa: BLE001 - telemetry is best-effort
                pass
        return self._value

    def exception(self, timeout=None) -> Optional[BaseException]:
        error = self._inner.exception(timeout)
        if error is None:
            self.result()
        return error


class WorkerPool:
    """A backend-agnostic pool of intra-task workers.

    The underlying executor is created lazily on first use and reused for the
    pool's lifetime (process workers are expensive to start).  Pools are
    usable as context managers; :meth:`shutdown` is idempotent.
    """

    def __init__(
        self,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        *,
        auto_degrade: bool = False,
    ):
        if backend not in BACKENDS:
            raise ValueError(f"unknown pool backend {backend!r}; choose from {BACKENDS}")
        if backend == "process" and multiprocessing.current_process().daemon:
            # Daemonic processes (e.g. some campaign worker pools) may not
            # have children; threads keep the decomposition — and, under the
            # determinism contract, the results — exactly the same.
            backend = "thread"
        requested = 1 if backend == "serial" else max(1, int(max_workers or 1))
        if auto_degrade and backend != "serial" and (os.cpu_count() or 1) <= 1:
            # On a 1-core box a concurrent backend is pure overhead: the
            # intra-parallel bench showed sharded equivalence *slowing down*
            # as workers rose (0.023s @1 -> 0.049s @4).  Degrade to serial
            # but keep the requested max_workers — decompositions that size
            # chunks off it stay identical, and the determinism contract
            # makes the serial execution bit-identical anyway.
            backend = "serial"
        self.backend = backend
        self.max_workers = requested
        self._executor = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _ensure_executor(self):
        with self._lock:
            if self._executor is None:
                if self.backend == "thread":
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix="repro-intra",
                    )
                else:
                    self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
            return self._executor

    # ------------------------------------------------------------------
    def submit(self, fn: Callable, *args, **kwargs):
        """Schedule one job; returns a future (lazy for the serial backend).

        With ``REPRO_OBS=1`` a process-backend job runs under
        :func:`_instrumented_call` and its telemetry delta is merged into
        the caller's ambient registry/tracer on result access (serial and
        thread jobs already share the caller's process, so their increments
        land directly).
        """
        if self.backend == "serial":
            return SerialFuture(fn, args, kwargs)
        executor = self._ensure_executor()
        if self.backend == "process" and obs_enabled():
            return _ShippingFuture(executor.submit(_instrumented_call, fn, args, kwargs))
        return executor.submit(fn, *args, **kwargs)

    def map(self, fn: Callable, items: Iterable) -> List:
        """Run ``fn`` over ``items``; results come back in item order.

        Batches below :data:`MIN_PARALLEL_ITEMS` run inline on every
        backend — the dispatch overhead cannot pay for itself.
        """
        items = list(items)
        if self.backend == "serial" or len(items) < MIN_PARALLEL_ITEMS:
            return [fn(item) for item in items]
        if self.backend == "process" and obs_enabled():
            futures = [self.submit(fn, item) for item in items]
            return [future.result() for future in futures]
        return list(self._ensure_executor().map(fn, items))

    def as_completed(self, futures: Sequence) -> Iterator:
        """Yield futures as they finish.

        The serial backend executes (and yields) in submission order, which
        is also a valid completion order; futures cancelled while iterating
        are skipped by callers exactly as with real executors.  Shipping
        wrappers are yielded as themselves (not their inner futures) so
        ``{future: index}`` maps built at submit time stay valid.
        """
        if self.backend == "serial":
            for future in futures:
                future._run()
                yield future
            return
        wrapper_of = {
            getattr(future, "_inner", future): future for future in futures
        }
        for inner in _futures_as_completed(list(wrapper_of)):
            yield wrapper_of[inner]

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"WorkerPool(backend={self.backend!r}, max_workers={self.max_workers})"
