"""Intra-task parallelism: worker pools, budgets and per-job seeding.

See :mod:`repro.parallel.pool` for the :class:`WorkerPool` abstraction and
:mod:`repro.parallel.budget` for the global ``REPRO_INTRA_WORKERS`` budget
that keeps nested pools from oversubscribing the machine.
"""

from .budget import (
    DEFAULT_INTRA_BACKEND,
    INTRA_BACKEND_ENV,
    INTRA_WORKERS_ENV,
    derive_job_seed,
    intra_backend,
    intra_budget,
    intra_worker_budget,
    pool_from_budget,
    resolve_pool,
    shared_pool,
)
from .pool import BACKENDS, SerialFuture, WorkerPool

__all__ = [
    "BACKENDS",
    "DEFAULT_INTRA_BACKEND",
    "INTRA_BACKEND_ENV",
    "INTRA_WORKERS_ENV",
    "SerialFuture",
    "WorkerPool",
    "derive_job_seed",
    "intra_backend",
    "intra_budget",
    "intra_worker_budget",
    "pool_from_budget",
    "resolve_pool",
    "shared_pool",
]
