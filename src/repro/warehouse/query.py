"""Warehouse query helpers: envelope filters and streaming aggregation.

``aggregate_stream`` replays :func:`repro.runner.store.aggregate` with
running sums instead of materialised record lists.  Floating-point addition
happens in the same order over the same values, so the two produce
*byte-identical* JSON — the property pinned by the warehouse test suite and
the CI ``warehouse-smoke`` diff.
"""

from __future__ import annotations

import datetime as _dt
import time
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..runner.store import AGGREGATE_METRIC_FIELDS

__all__ = ["aggregate_stream", "build_filter", "parse_since"]

_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}


def parse_since(value) -> float:
    """Parse a ``since`` bound: epoch seconds, ISO date/datetime, or an age.

    ``1754600000`` / ``2026-08-01`` / ``2026-08-01T12:00:00`` are absolute;
    ``30d``, ``12h``, ``45m`` mean "this long before now".
    """
    if isinstance(value, (int, float)):
        return float(value)
    text = str(value).strip()
    if not text:
        raise ValueError("empty 'since' value")
    try:
        return float(text)
    except ValueError:
        pass
    unit = text[-1].lower()
    if unit in _AGE_UNITS:
        try:
            return time.time() - float(text[:-1]) * _AGE_UNITS[unit]
        except ValueError:
            pass
    try:
        parsed = _dt.datetime.fromisoformat(text)
    except ValueError:
        raise ValueError(
            f"unparseable 'since' value {text!r}: use epoch seconds, an ISO "
            "date, or an age like 30d/12h/45m"
        ) from None
    return parsed.timestamp()


def build_filter(
    *,
    scheme: Optional[str] = None,
    attack: Optional[str] = None,
    suite: Optional[str] = None,
    status: Optional[str] = None,
    target: Optional[str] = None,
    since: Optional[float] = None,
    sources: Optional[Sequence[str]] = None,
) -> Callable[[Mapping[str, object]], bool]:
    """Build an envelope predicate for :meth:`Warehouse.iter_records`.

    ``sources`` restricts to envelopes ingested from the given job stores —
    the ownership-masking hook: the service passes the caller's own job ids
    here for non-admin tokens.
    """
    allowed = set(sources) if sources is not None else None

    def predicate(env: Mapping[str, object]) -> bool:
        if allowed is not None and env.get("src", "") not in allowed:
            return False
        record = env.get("r", {})
        if not isinstance(record, Mapping):
            return False
        if scheme is not None and record.get("scheme") != scheme:
            return False
        if attack is not None and record.get("attack") != attack:
            return False
        if suite is not None and record.get("suite") != suite:
            return False
        if status is not None and record.get("status", "ok") != status:
            return False
        if target is not None and record.get("target") != target:
            return False
        if since is not None:
            try:
                recorded = float(record.get("recorded_at", 0.0))
            except (TypeError, ValueError):
                return False
            if recorded < since:
                return False
        return True

    return predicate


def aggregate_stream(
    records: Iterable[Mapping],
    group_by: Sequence[str] = ("scheme", "suite", "technology"),
) -> List[Dict[str, object]]:
    """Streaming twin of :func:`repro.runner.store.aggregate`.

    Consumes the record iterable once, holding only per-group running sums
    — never the records themselves — and emits exactly the structure (and
    exactly the floats) ``aggregate()`` computes on the same stream.
    """
    group_by = tuple(group_by)

    class _Acc:
        __slots__ = ("n_tasks", "n_instances", "sums", "counts")

        def __init__(self) -> None:
            self.n_tasks = 0
            self.n_instances = 0
            # sum() starts from int 0, so seed 0 (not 0.0) to reproduce
            # aggregate()'s exact float sequence.
            self.sums: Dict[str, object] = {
                field: 0 for field in AGGREGATE_METRIC_FIELDS
            }
            self.counts: Dict[str, int] = {
                field: 0 for field in AGGREGATE_METRIC_FIELDS
            }

    groups: Dict[Tuple, _Acc] = {}
    for record in records:
        if record.get("status", "ok") != "ok":
            continue
        key = tuple(record.get(field) for field in group_by)
        acc = groups.get(key)
        if acc is None:
            acc = groups[key] = _Acc()
        acc.n_tasks += 1
        acc.n_instances += int(record.get("n_instances", 0))
        for field in AGGREGATE_METRIC_FIELDS:
            value = record.get(field)
            if value is not None:
                acc.sums[field] = acc.sums[field] + float(value)
                acc.counts[field] += 1

    summary: List[Dict[str, object]] = []
    for key in sorted(groups, key=str):
        acc = groups[key]
        entry: Dict[str, object] = dict(zip(group_by, key))
        entry["n_tasks"] = acc.n_tasks
        entry["n_instances"] = int(acc.n_instances)
        metric_n: Dict[str, int] = {}
        for field in AGGREGATE_METRIC_FIELDS:
            count = acc.counts[field]
            entry[field] = acc.sums[field] / count if count else 0.0
            metric_n[field] = count
        entry["metric_n"] = metric_n
        summary.append(entry)
    return summary
