"""Background compaction: fold superseded envelopes on a timer.

The service runs one :class:`CompactionThread` per warehouse.  Each tick it
checks how much garbage (superseded duplicates + corrupt lines) the
warehouse is carrying and triggers :meth:`Warehouse.compact` once the
threshold is crossed.  Compaction preserves every read observable — the
thread can fire mid-query because readers hold their own file handles and
shard files are never mutated in place, only replaced via the manifest.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..obs import emit
from .store import Warehouse

__all__ = ["CompactionThread"]


class CompactionThread:
    """Periodic warehouse compaction with a stop event."""

    def __init__(
        self,
        warehouse: Warehouse,
        *,
        interval_s: float = 60.0,
        min_superseded: int = 512,
    ) -> None:
        self.warehouse = warehouse
        self.interval_s = float(interval_s)
        self.min_superseded = int(min_superseded)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="warehouse-compactor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def tick(self) -> bool:
        """One compaction check; returns True when a compaction ran."""
        try:
            result = self.warehouse.compact(min_superseded=self.min_superseded)
        except Exception as exc:  # noqa: BLE001 - keep the loop alive
            emit("warehouse.compact.error", error=str(exc))
            return False
        if result.get("compacted"):
            emit(
                "warehouse.compacted",
                folded=result.get("folded"),
                records=result.get("records"),
                shards=result.get("shards"),
            )
        return bool(result.get("compacted"))

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.tick()
