"""Cross-campaign result warehouse.

Sharded, compacted, indexed storage for task records across many campaigns:
:class:`Warehouse` (sharded JSONL + fingerprint index + crash-safe
compaction), :func:`ingest_store` / :func:`ingest_state_dir` (lazy tailing
of per-job ``ResultStore`` files), :func:`aggregate_stream` /
:func:`build_filter` (streaming queries), and :class:`CompactionThread`
(the service's background folder).  See ``README.md`` § "Result warehouse".
"""

from .compactor import CompactionThread  # noqa: F401
from .ingest import ingest_state_dir, ingest_store  # noqa: F401
from .query import aggregate_stream, build_filter, parse_since  # noqa: F401
from .store import Warehouse  # noqa: F401

__all__ = [
    "CompactionThread",
    "Warehouse",
    "aggregate_stream",
    "build_filter",
    "ingest_state_dir",
    "ingest_store",
    "parse_since",
]
