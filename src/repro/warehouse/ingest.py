"""Lazy ingest: tail per-job JSONL stores into the warehouse.

Each source (one ``ResultStore`` file, keyed by job id / file stem) has a
persistent byte cursor in the warehouse's ``sources.json``.  Re-running an
ingest reads only the bytes appended since the last pass, so old state dirs
migrate lazily — the first warehouse query pays for history once, every
later query pays only for the tail.  A truncated or replaced store file
(cursor past EOF) resets its cursor and re-ingests from the top; the
warehouse's last-write-wins keying makes that idempotent.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional

from ..obs import get_registry
from .store import Warehouse

__all__ = ["ingest_state_dir", "ingest_store"]


def ingest_store(
    warehouse: Warehouse,
    path,
    *,
    source: Optional[str] = None,
) -> int:
    """Ingest new complete lines from one JSONL store; returns records added.

    Only whole lines are consumed — a partially-written tail line stays
    un-ingested until its writer finishes it.  Unparseable lines advance the
    cursor (they would never parse later either) and are counted on the
    ``repro_warehouse_ingest_corrupt_total`` metric.
    """
    path = Path(path)
    source = source or path.stem
    cursor = warehouse.source_cursor(source)
    offset = int(cursor.get("offset", 0))
    lines = int(cursor.get("lines", 0))
    corrupt = int(cursor.get("corrupt", 0))
    try:
        size = path.stat().st_size
    except OSError:
        return 0
    if size < offset:
        # The store was truncated or replaced; start over (idempotent).
        offset, lines, corrupt = 0, 0, 0
    if size == offset:
        return 0
    with path.open("rb") as handle:
        handle.seek(offset)
        chunk = handle.read(size - offset)
    end = chunk.rfind(b"\n")
    if end < 0:
        return 0  # only a partial line so far
    batch = []
    new_corrupt = 0
    for raw in chunk[: end + 1].split(b"\n")[:-1]:
        lines += 1
        line = raw.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            new_corrupt += 1
            continue
        key = record.get("fingerprint") or record.get("task_id")
        # Namespace by source: two campaigns can legitimately run the same
        # task (same fingerprint); supersession is a within-store notion.
        batch.append((f"{source}:{key}" if key else f"#{source}:{lines}", record))
    if batch:
        warehouse.append_many(batch, source=source)
    registry = get_registry()
    if batch:
        registry.inc("repro_warehouse_ingested_records_total", len(batch))
    if new_corrupt:
        registry.inc("repro_warehouse_ingest_corrupt_total", new_corrupt)
    warehouse.set_source_cursor(
        source,
        {
            "path": str(path),
            "offset": offset + end + 1,
            "lines": lines,
            "corrupt": corrupt + new_corrupt,
        },
    )
    return len(batch)


def ingest_state_dir(warehouse: Warehouse, state_dir) -> Dict[str, int]:
    """Ingest every per-job store under ``<state_dir>/stores``.

    Returns ``{job_id: records_added}`` for the sources that grew.
    """
    stores = Path(state_dir) / "stores"
    added: Dict[str, int] = {}
    if not stores.is_dir():
        return added
    for path in sorted(stores.glob("*.jsonl")):
        count = ingest_store(warehouse, path, source=path.stem)
        if count:
            added[path.stem] = count
    return added
