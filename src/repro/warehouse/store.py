"""Sharded, compacted, indexed result warehouse.

One :class:`Warehouse` directory holds the records of *many* campaigns::

    <root>/
      manifest.json      # ordered list of live shard files + generation
      index.json         # persisted index snapshot (rebuildable from shards)
      sources.json       # ingest cursors: source id -> byte offset tailed
      shards/gGGGG-NNNNNN.jsonl

Each shard line is a small envelope ``{"k": key, "s": seq, "f": first_seq,
"src": source, "r": {record}}`` around the original task record.  The
in-memory index maps ``key`` (task fingerprint, falling back to task id,
falling back to a synthetic per-line key — exactly the
:meth:`repro.runner.store.ResultStore.latest` contract) to the shard, byte
offset and length of its most recent envelope, so ``latest()``-style reads
are random-access seeks, never full scans.

Ordering contract: iteration yields one record per key, ordered by the
*first* sequence number ever assigned to the key.  That reproduces
``ResultStore.latest()``'s dict order (first occurrence wins the position,
last write wins the value), which is what keeps warehouse-rendered reports
byte-identical to JSONL-backed ones.

Crash safety:

* appends serialise the whole line first and hand the kernel a single
  ``O_APPEND`` write under an exclusive ``flock``;
* compaction writes *new* shard files, fsyncs them, then atomically
  replaces ``manifest.json`` — a crash at any point leaves either the old
  or the new shard set fully live, and orphan files are swept on open.
"""

from __future__ import annotations

import io
import json
import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Mapping, NamedTuple, Optional

try:  # POSIX only; locking degrades gracefully elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from ..obs import get_registry
from ..runner.cache import atomic_write

__all__ = ["Warehouse"]

_MANIFEST = "manifest.json"
_INDEX = "index.json"
_SOURCES = "sources.json"
_LOCKNAME = ".lock"

#: Appends between automatic index snapshots.  The snapshot is an
#: optimisation (the index always rebuilds from shard tails), so losing the
#: last few appends' worth of snapshot costs a short tail re-scan, not data.
_INDEX_FLUSH_EVERY = 256


class _Entry(NamedTuple):
    shard: str
    offset: int
    length: int
    seq: int
    first_seq: int
    source: str


class Warehouse:
    """Cross-campaign record store: sharded JSONL + fingerprint index."""

    def __init__(
        self,
        root,
        *,
        max_shard_bytes: int = 64 * 1024 * 1024,
    ) -> None:
        self.root = Path(root)
        self.shards_dir = self.root / "shards"
        self.max_shard_bytes = int(max_shard_bytes)
        self._mutex = threading.RLock()
        self._entries: Dict[str, _Entry] = {}
        self._scanned: Dict[str, int] = {}
        self._sources: Dict[str, Dict[str, object]] = {}
        self._total_lines = 0
        self._corrupt_lines = 0
        self._next_seq = 0
        self._dirty_appends = 0
        self._manifest: Dict[str, object] = {}
        #: Test-only failure injection point for the crash-mid-compaction
        #: recovery test; called with a phase name between compaction steps.
        self._crash_hook: Optional[Callable[[str], None]] = None
        self._open()

    # ------------------------------------------------------------------
    # Setup / persistence
    # ------------------------------------------------------------------
    def _open(self) -> None:
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        manifest_path = self.root / _MANIFEST
        if manifest_path.is_file():
            try:
                self._manifest = json.loads(manifest_path.read_text())
            except (OSError, json.JSONDecodeError):
                self._manifest = {}
        if not self._manifest.get("shards") and "generation" not in self._manifest:
            self._manifest = {
                "version": 1,
                "generation": 0,
                "shards": [],
                "next_shard": 1,
            }
        live = set(self._manifest.get("shards", []))
        # Sweep crash leftovers: shard files a died compaction wrote but
        # never published in the manifest (or never got to delete).
        for path in self.shards_dir.glob("*.jsonl"):
            if path.name not in live:
                try:
                    path.unlink()
                except OSError:
                    pass
        self._load_sources()
        self._load_index_snapshot()
        with self._mutex:
            self._refresh()

    def _load_sources(self) -> None:
        path = self.root / _SOURCES
        if not path.is_file():
            return
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return
        if isinstance(data, dict):
            self._sources = {
                str(k): dict(v) for k, v in data.items() if isinstance(v, dict)
            }

    def _load_index_snapshot(self) -> None:
        path = self.root / _INDEX
        if not path.is_file():
            return
        try:
            snap = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return
        if snap.get("generation") != self._manifest.get("generation"):
            return
        live = set(self._manifest.get("shards", []))
        scanned = snap.get("scanned", {})
        for shard, offset in scanned.items():
            if shard not in live:
                return
            try:
                size = (self.shards_dir / shard).stat().st_size
            except OSError:
                return
            if int(offset) > size:
                return  # snapshot ahead of the file: stale, rebuild
        entries: Dict[str, _Entry] = {}
        for key, row in snap.get("entries", {}).items():
            if len(row) != 6 or row[0] not in live:
                return
            entries[str(key)] = _Entry(
                str(row[0]), int(row[1]), int(row[2]), int(row[3]),
                int(row[4]), str(row[5]),
            )
        self._entries = entries
        self._scanned = {str(k): int(v) for k, v in scanned.items()}
        self._total_lines = int(snap.get("total_lines", len(entries)))
        self._corrupt_lines = int(snap.get("corrupt_lines", 0))
        self._next_seq = int(snap.get("next_seq", 0))

    def _persist_index(self) -> None:
        snap = {
            "version": 1,
            "generation": self._manifest.get("generation", 0),
            "next_seq": self._next_seq,
            "total_lines": self._total_lines,
            "corrupt_lines": self._corrupt_lines,
            "scanned": self._scanned,
            "entries": {key: list(entry) for key, entry in self._entries.items()},
        }
        atomic_write(
            self.root / _INDEX,
            lambda handle: handle.write(json.dumps(snap).encode("utf-8")),
        )
        self._dirty_appends = 0

    def _persist_manifest(self) -> None:
        payload = json.dumps(self._manifest, indent=2).encode("utf-8")
        atomic_write(self.root / _MANIFEST, lambda handle: handle.write(payload))

    def _persist_sources(self) -> None:
        payload = json.dumps(self._sources, indent=2, sort_keys=True).encode("utf-8")
        atomic_write(self.root / _SOURCES, lambda handle: handle.write(payload))

    @contextmanager
    def _flock(self):
        """Cross-process exclusive lock over mutating warehouse operations."""
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        with (self.root / _LOCKNAME).open("a+") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        """Scan un-indexed shard tails (another process may have appended)."""
        for shard in self._manifest.get("shards", []):
            path = self.shards_dir / shard
            try:
                size = path.stat().st_size
            except OSError:
                continue
            scanned = self._scanned.get(shard, 0)
            if size <= scanned:
                continue
            with path.open("rb") as handle:
                handle.seek(scanned)
                chunk = handle.read(size - scanned)
            end = chunk.rfind(b"\n")
            if end < 0:
                continue  # only a partial trailing line so far
            offset = scanned
            for raw in chunk[: end + 1].split(b"\n")[:-1]:
                length = len(raw) + 1
                self._note_line(shard, offset, raw)
                offset += length
            self._scanned[shard] = offset

    def _note_line(self, shard: str, offset: int, raw: bytes) -> None:
        line = raw.strip()
        if not line:
            return
        try:
            env = json.loads(line)
            key = str(env["k"])
            seq = int(env["s"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            self._corrupt_lines += 1
            return
        first = int(env.get("f", seq))
        previous = self._entries.get(key)
        if previous is not None:
            first = min(first, previous.first_seq)
        self._entries[key] = _Entry(
            shard, offset, len(raw) + 1, seq, first, str(env.get("src", ""))
        )
        self._total_lines += 1
        self._next_seq = max(self._next_seq, seq + 1)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _active_shard(self, need: int) -> str:
        shards: List[str] = self._manifest.setdefault("shards", [])
        if shards:
            current = shards[-1]
            if self._scanned.get(current, 0) + need <= self.max_shard_bytes:
                return current
        generation = int(self._manifest.get("generation", 0))
        number = int(self._manifest.get("next_shard", 1))
        name = f"g{generation:04d}-{number:06d}.jsonl"
        self._manifest["next_shard"] = number + 1
        shards.append(name)
        self._persist_manifest()
        return name

    def append(
        self,
        record: Mapping[str, object],
        *,
        key: Optional[str] = None,
        source: str = "",
    ) -> str:
        """Append one record; returns the key it was stored under."""
        return self.append_many([(key, record)], source=source)[0]

    def append_many(
        self,
        items,
        *,
        source: str = "",
    ) -> List[str]:
        """Append ``(key, record)`` pairs in one locked pass.

        ``key`` may be ``None``: the fingerprint / task id fallback (and a
        synthetic per-sequence key for records carrying neither) is applied
        here, mirroring ``ResultStore.latest()``.
        """
        keys: List[str] = []
        with self._mutex, self._flock():
            self._refresh()
            handle: Optional[io.FileIO] = None
            shard = ""
            try:
                for key, record in items:
                    if key is None:
                        key = record.get("fingerprint") or record.get("task_id")
                        key = str(key) if key else f"#seq{self._next_seq}"
                    seq = self._next_seq
                    self._next_seq += 1
                    previous = self._entries.get(key)
                    first = previous.first_seq if previous is not None else seq
                    env: Dict[str, object] = {
                        "f": first,
                        "k": key,
                        "r": dict(record),
                        "s": seq,
                    }
                    if source:
                        env["src"] = source
                    data = (
                        json.dumps(env, sort_keys=True, default=str) + "\n"
                    ).encode("utf-8")
                    target = self._active_shard(len(data))
                    if handle is None or target != shard:
                        if handle is not None:
                            handle.close()
                        shard = target
                        handle = open(  # noqa: SIM115 - closed in finally
                            self.shards_dir / shard, "ab", buffering=0
                        )
                        if fcntl is not None:
                            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                    offset = self._scanned.get(shard, 0)
                    size = handle.seek(0, os.SEEK_END)
                    if size > offset:
                        # Partial line left by a crashed writer: terminate it
                        # so it parses as one corrupt line, never merges with
                        # ours.
                        handle.write(b"\n")
                        self._corrupt_lines += 1
                        offset = size + 1
                    view = memoryview(data)
                    while view:
                        written = handle.write(view)
                        view = view[written:]
                    self._scanned[shard] = offset + len(data)
                    self._entries[key] = _Entry(
                        shard, offset, len(data), seq, first, source
                    )
                    self._total_lines += 1
                    keys.append(key)
            finally:
                if handle is not None:
                    handle.close()
            self._dirty_appends += len(keys)
            get_registry().inc("repro_warehouse_appends_total", len(keys))
            if self._dirty_appends >= _INDEX_FLUSH_EVERY:
                self._persist_index()
        return keys

    def flush(self) -> None:
        """Persist the index snapshot and ingest cursors."""
        with self._mutex:
            self._persist_index()
            self._persist_sources()

    # ------------------------------------------------------------------
    # Ingest cursors
    # ------------------------------------------------------------------
    def source_cursor(self, source: str) -> Dict[str, object]:
        with self._mutex:
            return dict(self._sources.get(source, {"offset": 0, "lines": 0}))

    def set_source_cursor(self, source: str, cursor: Mapping[str, object]) -> None:
        with self._mutex:
            self._sources[source] = dict(cursor)
            self._persist_sources()

    def sources(self) -> Dict[str, Dict[str, object]]:
        with self._mutex:
            return {name: dict(cur) for name, cur in self._sources.items()}

    # ------------------------------------------------------------------
    # Reads (streaming)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._mutex:
            self._refresh()
            return len(self._entries)

    def iter_envelopes(self, *, latest: bool = True) -> Iterator[Dict[str, object]]:
        """Stream envelopes one at a time; never materialises the full set.

        ``latest=True`` yields the most recent envelope per key ordered by
        the key's first appearance (the ``ResultStore.latest()`` contract);
        ``latest=False`` streams every stored line in shard order.
        """
        registry = get_registry()
        if not latest:
            with self._mutex:
                self._refresh()
                shards = list(self._manifest.get("shards", []))
            for shard in shards:
                path = self.shards_dir / shard
                if not path.is_file():
                    continue
                with path.open("rb") as handle:
                    for raw in handle:
                        line = raw.strip()
                        if not line:
                            continue
                        try:
                            env = json.loads(line)
                        except json.JSONDecodeError:
                            continue
                        registry.inc("repro_warehouse_records_scanned_total")
                        yield env
            return
        with self._mutex:
            self._refresh()
            entries = sorted(self._entries.values(), key=lambda e: e.first_seq)
        handles: Dict[str, io.BufferedReader] = {}
        try:
            for entry in entries:
                handle = handles.get(entry.shard)
                if handle is None:
                    handle = (self.shards_dir / entry.shard).open("rb")
                    handles[entry.shard] = handle
                handle.seek(entry.offset)
                env = json.loads(handle.read(entry.length))
                registry.inc("repro_warehouse_records_scanned_total")
                yield env
        finally:
            for handle in handles.values():
                handle.close()

    def iter_records(
        self,
        where: Optional[Callable[[Mapping[str, object]], bool]] = None,
        *,
        latest: bool = True,
    ) -> Iterator[Dict[str, object]]:
        """Stream the stored records (the inner ``r`` payloads).

        ``where`` receives the *envelope* (record under ``"r"``, source
        under ``"src"``) so callers can filter on provenance without the
        record ever being copied.
        """
        for env in self.iter_envelopes(latest=latest):
            if where is not None and not where(env):
                continue
            yield env.get("r", {})

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """Random-access fetch of the latest record for ``key`` (one seek)."""
        with self._mutex:
            self._refresh()
            entry = self._entries.get(key)
        if entry is None:
            return None
        with (self.shards_dir / entry.shard).open("rb") as handle:
            handle.seek(entry.offset)
            env = json.loads(handle.read(entry.length))
        return env.get("r", {})

    def records_by_source(self) -> Dict[str, int]:
        """Live record count per ingest source (usage-rollup substrate)."""
        with self._mutex:
            self._refresh()
            counts: Dict[str, int] = {}
            for entry in self._entries.values():
                counts[entry.source] = counts.get(entry.source, 0) + 1
            return counts

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def superseded(self) -> int:
        """Garbage lines a compaction would fold (duplicates + corrupt)."""
        with self._mutex:
            self._refresh()
            return self._total_lines - len(self._entries) + self._corrupt_lines

    def compact(self, *, min_superseded: int = 1) -> Dict[str, object]:
        """Rewrite shards keeping only the latest envelope per key.

        Envelope lines are byte-copied (sequence numbers and first-seen
        ordering included), so every read observable — ``latest()`` order,
        streamed aggregates, rendered reports — is identical before and
        after.  Crash-safe: new shards are written and fsynced first, then
        ``manifest.json`` flips atomically; old files are only unlinked
        after the flip, and orphans from a crash are swept on next open.
        """
        with self._mutex, self._flock():
            self._refresh()
            folded = self._total_lines - len(self._entries) + self._corrupt_lines
            if folded < min_superseded:
                return {
                    "compacted": False,
                    "folded": 0,
                    "records": len(self._entries),
                    "shards": len(self._manifest.get("shards", [])),
                }
            generation = int(self._manifest.get("generation", 0)) + 1
            ordered = sorted(self._entries.items(), key=lambda kv: kv[1].first_seq)
            old_shards = list(self._manifest.get("shards", []))
            reads: Dict[str, io.BufferedReader] = {}
            new_shards: List[str] = []
            new_entries: Dict[str, _Entry] = {}
            new_scanned: Dict[str, int] = {}
            writer: Optional[io.FileIO] = None
            number = 1
            try:
                for key, entry in ordered:
                    source = reads.get(entry.shard)
                    if source is None:
                        source = (self.shards_dir / entry.shard).open("rb")
                        reads[entry.shard] = source
                    source.seek(entry.offset)
                    raw = source.read(entry.length)
                    if writer is None or (
                        new_scanned[new_shards[-1]] + len(raw) > self.max_shard_bytes
                        and new_scanned[new_shards[-1]] > 0
                    ):
                        if writer is not None:
                            writer.flush()
                            os.fsync(writer.fileno())
                            writer.close()
                        name = f"g{generation:04d}-{number:06d}.jsonl"
                        number += 1
                        new_shards.append(name)
                        new_scanned[name] = 0
                        writer = open(  # noqa: SIM115 - closed below
                            self.shards_dir / name, "wb"
                        )
                    offset = new_scanned[new_shards[-1]]
                    writer.write(raw)
                    new_scanned[new_shards[-1]] = offset + len(raw)
                    new_entries[key] = _Entry(
                        new_shards[-1], offset, len(raw),
                        entry.seq, entry.first_seq, entry.source,
                    )
                if writer is not None:
                    writer.flush()
                    os.fsync(writer.fileno())
            finally:
                if writer is not None:
                    writer.close()
                for handle in reads.values():
                    handle.close()
            if self._crash_hook is not None:
                self._crash_hook("pre-manifest")
            self._manifest = {
                "version": 1,
                "generation": generation,
                "shards": new_shards,
                "next_shard": number,
            }
            self._persist_manifest()
            if self._crash_hook is not None:
                self._crash_hook("post-manifest")
            for shard in old_shards:
                try:
                    (self.shards_dir / shard).unlink()
                except OSError:
                    pass
            self._entries = new_entries
            self._scanned = new_scanned
            self._total_lines = len(new_entries)
            self._corrupt_lines = 0
            self._persist_index()
            registry = get_registry()
            registry.inc("repro_warehouse_compactions_total")
            registry.inc("repro_warehouse_compacted_lines_total", folded)
            return {
                "compacted": True,
                "folded": folded,
                "records": len(new_entries),
                "shards": len(new_shards),
            }

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._mutex:
            self._refresh()
            shards = list(self._manifest.get("shards", []))
            size = 0
            for shard in shards:
                try:
                    size += (self.shards_dir / shard).stat().st_size
                except OSError:
                    pass
            return {
                "records": len(self._entries),
                "lines": self._total_lines,
                "superseded": self._total_lines - len(self._entries),
                "corrupt_lines": self._corrupt_lines,
                "shards": len(shards),
                "bytes": size,
                "generation": int(self._manifest.get("generation", 0)),
                "sources": {name: dict(cur) for name, cur in self._sources.items()},
            }
