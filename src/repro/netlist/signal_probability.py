"""Signal probability and skew analysis.

The SPS (signal probability skew) baseline attack on Anti-SAT looks for an AND
gate whose two fan-in nets have strongly *opposite* probability skews; the
Anti-SAT output Y is highly skewed towards 0 by construction.  Two estimators
are provided:

* :func:`estimate_probabilities_simulation` — Monte-Carlo simulation (exact in
  the limit, cheap for the circuit sizes we use), and
* :func:`estimate_probabilities_independent` — the classic COP-style
  propagation that assumes net independence, which is what removal attacks use
  in practice because it needs no simulation vectors.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from .circuit import Circuit, CircuitError
from .packed_sim import PackedSimulator, pack_rows, popcount
from .simulate import _resolve_engine, random_patterns, simulate

__all__ = [
    "estimate_probabilities_simulation",
    "estimate_probabilities_independent",
    "signal_probability_skew",
]


def estimate_probabilities_simulation(
    circuit: Circuit,
    *,
    n_patterns: int = 2048,
    rng: Optional[np.random.Generator] = None,
    key_assignment: Optional[Mapping[str, bool]] = None,
) -> Dict[str, float]:
    """Estimate P(net = 1) for every net via random simulation.

    Key inputs are randomised unless ``key_assignment`` pins them; a
    ``key_assignment`` naming a net that is not one of the circuit's key
    inputs raises :class:`~repro.netlist.circuit.CircuitError` — a misspelled
    key net must not silently degrade into a random-key simulation.

    On packed-safe circuits the probabilities come straight from popcounts of
    the bit-parallel engine's words (no per-net bool materialisation);
    results are bit-identical to the dense path.
    """
    rng = rng or np.random.default_rng(0)
    if key_assignment:
        unknown = set(key_assignment) - set(circuit.key_inputs)
        if unknown:
            raise CircuitError(
                f"key_assignment names nets that are not key inputs: "
                f"{sorted(unknown)[:5]}"
            )
    all_inputs = circuit.all_inputs
    patterns = random_patterns(len(all_inputs), n_patterns, rng)
    assignments: Dict[str, np.ndarray] = {
        net: patterns[:, i] for i, net in enumerate(all_inputs)
    }
    if key_assignment:
        for net, value in key_assignment.items():
            assignments[net] = np.full(n_patterns, bool(value))
    every_net = list(circuit.gate_names())

    probs: Dict[str, float] = {}
    if _resolve_engine("auto", circuit, n_patterns) == "packed":
        order = list(assignments)
        words = pack_rows([assignments[net] for net in order], n_patterns)
        packed = {net: words[i] for i, net in enumerate(order)}
        values = PackedSimulator(circuit).run(packed, every_net)
        for net in all_inputs:
            probs[net] = popcount(packed[net]) / n_patterns
        for net in every_net:
            probs[net] = popcount(values[net]) / n_patterns
        return probs

    values = simulate(circuit, assignments, outputs=every_net, engine="dense")
    for net in all_inputs:
        probs[net] = float(assignments[net].mean())
    for net in every_net:
        probs[net] = float(values[net].mean())
    return probs


def estimate_probabilities_independent(circuit: Circuit) -> Dict[str, float]:
    """Propagate signal probabilities assuming all gate inputs are independent.

    PIs and KIs are assumed uniform (p = 0.5).  Each cell's output probability
    is computed exactly from its truth table under the independence assumption.
    """
    probs: Dict[str, float] = {}
    for net in circuit.all_inputs:
        probs[net] = 0.5
    gates = circuit.gates
    for name in circuit.topological_order():
        gate = gates[name]
        in_probs = [probs[n] for n in gate.inputs]
        probs[name] = _cell_output_probability(gate, in_probs)
    return probs


def _cell_output_probability(gate, in_probs) -> float:
    """Exact P(out=1) for one cell given independent input probabilities."""
    k = len(in_probs)
    if k > 16:
        # Extremely wide variadic gate: fall back to AND/OR-style closed forms.
        name = gate.cell.name
        prod = float(np.prod(in_probs))
        prod_zero = float(np.prod([1.0 - p for p in in_probs]))
        if name in ("AND",):
            return prod
        if name in ("NAND",):
            return 1.0 - prod
        if name in ("OR",):
            return 1.0 - prod_zero
        if name in ("NOR",):
            return prod_zero
        # XOR/XNOR of many independent p=? inputs: use the parity recurrence.
        p_odd = 0.0
        for p in in_probs:
            p_odd = p_odd * (1.0 - p) + (1.0 - p_odd) * p
        return p_odd if name == "XOR" else 1.0 - p_odd
    total = 0.0
    for assignment in range(1 << k):
        bits = [(assignment >> i) & 1 for i in range(k)]
        weight = 1.0
        for bit, p in zip(bits, in_probs):
            weight *= p if bit else (1.0 - p)
        if weight == 0.0:
            continue
        out = bool(gate.cell.evaluate(*[np.array(bool(b)) for b in bits]))
        if out:
            total += weight
    return total


def signal_probability_skew(probability: float) -> float:
    """SPS skew of a net: s = P(net=1) - 0.5, in [-0.5, 0.5]."""
    return probability - 0.5
