"""Gate-level netlist substrate: cells, circuits, I/O, simulation, analysis."""

from .gates import BENCH8, GEN45, GEN65, CellLibrary, CellType, get_library
from .circuit import Circuit, CircuitError, Gate
from .bench_io import parse_bench, parse_bench_file, write_bench, write_bench_file
from .verilog_io import (
    parse_verilog,
    parse_verilog_file,
    write_verilog,
    write_verilog_file,
)
from .packed_sim import (
    PackedSimulator,
    cell_supports_packed,
    circuit_supports_packed,
    pack_bits,
    pack_rows,
    popcount,
    unpack_bits,
)
from .simulate import (
    PACKED_MIN_PATTERNS,
    evaluate_output,
    exhaustive_patterns,
    random_patterns,
    simulate,
    simulate_patterns,
)
from .signal_probability import (
    estimate_probabilities_independent,
    estimate_probabilities_simulation,
    signal_probability_skew,
)
from .traversal import (
    fanin_cone,
    fanout_cone,
    gate_levels,
    has_key_input_in_fanin,
    key_inputs_in_fanin,
    output_cone,
    primary_inputs_in_fanin,
    transitive_inputs,
)
from .validate import ValidationReport, check_circuit, validate_circuit
from .stats import CircuitStats, cell_histogram, circuit_stats

__all__ = [
    "BENCH8",
    "GEN45",
    "GEN65",
    "CellLibrary",
    "CellType",
    "get_library",
    "Circuit",
    "CircuitError",
    "Gate",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "write_bench_file",
    "parse_verilog",
    "parse_verilog_file",
    "write_verilog",
    "write_verilog_file",
    "simulate",
    "simulate_patterns",
    "random_patterns",
    "exhaustive_patterns",
    "evaluate_output",
    "PACKED_MIN_PATTERNS",
    "PackedSimulator",
    "pack_bits",
    "pack_rows",
    "unpack_bits",
    "popcount",
    "cell_supports_packed",
    "circuit_supports_packed",
    "estimate_probabilities_simulation",
    "estimate_probabilities_independent",
    "signal_probability_skew",
    "fanin_cone",
    "fanout_cone",
    "transitive_inputs",
    "primary_inputs_in_fanin",
    "key_inputs_in_fanin",
    "has_key_input_in_fanin",
    "gate_levels",
    "output_cone",
    "validate_circuit",
    "check_circuit",
    "ValidationReport",
    "CircuitStats",
    "circuit_stats",
    "cell_histogram",
]
