"""Gate-level combinational netlist representation.

A :class:`Circuit` holds primary inputs (PIs), key inputs (KIs), primary
outputs (POs) and a set of :class:`Gate` instances.  Every gate drives exactly
one net whose name is the gate's name; gate inputs refer to nets by name (a net
is either a PI, a KI, or the output of another gate).

This mirrors the netlist model used by the GNNUnlock scripts: the circuit is a
graph whose nodes are gates, the PIs/KIs/POs are *not* nodes but their
connectivity is recorded per gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .gates import BENCH8, CellLibrary, CellType

__all__ = ["Gate", "Circuit", "CircuitError"]


class CircuitError(ValueError):
    """Raised for structurally invalid netlist operations."""


@dataclass
class Gate:
    """One instantiated cell.

    The gate drives the net named ``name``.  ``inputs`` is an ordered tuple of
    net names (order matters for non-symmetric cells such as MUX2/AOI21).
    """

    name: str
    cell: CellType
    inputs: Tuple[str, ...]

    def __post_init__(self) -> None:
        self.inputs = tuple(self.inputs)
        if self.cell.arity is not None and len(self.inputs) != self.cell.arity:
            raise CircuitError(
                f"gate {self.name}: cell {self.cell.name} expects "
                f"{self.cell.arity} inputs, got {len(self.inputs)}"
            )
        if self.cell.arity is None and not self.inputs:
            raise CircuitError(f"gate {self.name}: no inputs")

    @property
    def cell_name(self) -> str:
        return self.cell.name


class Circuit:
    """A combinational gate-level netlist.

    Parameters
    ----------
    name:
        Design name (module name when written as Verilog).
    library:
        The :class:`~repro.netlist.gates.CellLibrary` the gates are drawn from.
    """

    def __init__(self, name: str, library: CellLibrary = BENCH8):
        self.name = name
        self.library = library
        self._inputs: List[str] = []
        self._key_inputs: List[str] = []
        self._outputs: List[str] = []
        self._gates: Dict[str, Gate] = {}
        self._topo_cache: Optional[List[str]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> None:
        """Declare a primary input net."""
        self._check_new_net(name)
        self._inputs.append(name)
        self._invalidate()

    def add_key_input(self, name: str) -> None:
        """Declare a key input net (a locking key bit)."""
        self._check_new_net(name)
        self._key_inputs.append(name)
        self._invalidate()

    def add_output(self, name: str) -> None:
        """Declare a primary output.  The net must eventually be driven."""
        if name in self._outputs:
            raise CircuitError(f"output {name} already declared")
        self._outputs.append(name)
        self._invalidate()

    def add_gate(self, name: str, cell: str | CellType, inputs: Sequence[str]) -> Gate:
        """Instantiate a cell driving net ``name``."""
        self._check_new_net(name)
        cell_type = self.library[cell] if isinstance(cell, str) else cell
        gate = Gate(name, cell_type, tuple(inputs))
        self._gates[name] = gate
        self._invalidate()
        return gate

    def remove_gate(self, name: str) -> Gate:
        """Remove the gate driving net ``name`` (dangling references allowed).

        Callers performing protection-logic removal typically remove a whole
        cone and then re-stitch the cut nets; dangling inputs are reported by
        :meth:`validate` rather than rejected here.
        """
        try:
            gate = self._gates.pop(name)
        except KeyError:
            raise CircuitError(f"no gate named {name}") from None
        self._invalidate()
        return gate

    def remove_output(self, name: str) -> None:
        try:
            self._outputs.remove(name)
        except ValueError:
            raise CircuitError(f"no output named {name}") from None
        self._invalidate()

    def remove_key_input(self, name: str) -> None:
        try:
            self._key_inputs.remove(name)
        except ValueError:
            raise CircuitError(f"no key input named {name}") from None
        self._invalidate()

    def rename_net(self, old: str, new: str) -> None:
        """Rename a net everywhere it appears (driver, sinks, port lists)."""
        if old == new:
            return
        self._check_new_net(new)
        if old in self._gates:
            gate = self._gates.pop(old)
            self._gates[new] = Gate(new, gate.cell, gate.inputs)
        for gname, gate in list(self._gates.items()):
            if old in gate.inputs:
                new_inputs = tuple(new if i == old else i for i in gate.inputs)
                self._gates[gname] = Gate(gname, gate.cell, new_inputs)
        self._inputs = [new if n == old else n for n in self._inputs]
        self._key_inputs = [new if n == old else n for n in self._key_inputs]
        self._outputs = [new if n == old else n for n in self._outputs]
        self._invalidate()

    def replace_gate_input(self, gate_name: str, old: str, new: str) -> None:
        """Rewire one gate: every occurrence of ``old`` in its inputs becomes ``new``."""
        gate = self.gate(gate_name)
        if old not in gate.inputs:
            raise CircuitError(f"gate {gate_name} has no input {old}")
        new_inputs = tuple(new if i == old else i for i in gate.inputs)
        self._gates[gate_name] = Gate(gate_name, gate.cell, new_inputs)
        self._invalidate()

    def set_gate(self, name: str, cell: str | CellType, inputs: Sequence[str]) -> Gate:
        """Replace the gate driving ``name`` (keeping its sinks)."""
        if name not in self._gates:
            raise CircuitError(f"no gate named {name}")
        cell_type = self.library[cell] if isinstance(cell, str) else cell
        gate = Gate(name, cell_type, tuple(inputs))
        self._gates[name] = gate
        self._invalidate()
        return gate

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> Tuple[str, ...]:
        """Primary inputs, excluding key inputs."""
        return tuple(self._inputs)

    @property
    def key_inputs(self) -> Tuple[str, ...]:
        return tuple(self._key_inputs)

    @property
    def all_inputs(self) -> Tuple[str, ...]:
        """Primary inputs followed by key inputs."""
        return tuple(self._inputs) + tuple(self._key_inputs)

    @property
    def outputs(self) -> Tuple[str, ...]:
        return tuple(self._outputs)

    @property
    def gates(self) -> Dict[str, Gate]:
        """Mapping of net name -> driving gate (do not mutate directly)."""
        return dict(self._gates)

    def gate(self, name: str) -> Gate:
        try:
            return self._gates[name]
        except KeyError:
            raise CircuitError(f"no gate named {name}") from None

    def has_gate(self, name: str) -> bool:
        return name in self._gates

    def gate_names(self) -> Tuple[str, ...]:
        return tuple(self._gates)

    def is_input(self, net: str) -> bool:
        return net in self._inputs

    def is_key_input(self, net: str) -> bool:
        return net in self._key_inputs

    def is_output(self, net: str) -> bool:
        return net in self._outputs

    def net_exists(self, net: str) -> bool:
        return (
            net in self._gates
            or net in self._inputs
            or net in self._key_inputs
        )

    def __len__(self) -> int:
        """Number of gates."""
        return len(self._gates)

    def __contains__(self, net: str) -> bool:
        return self.net_exists(net)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit({self.name!r}, lib={self.library.name}, "
            f"|PI|={len(self._inputs)}, |KI|={len(self._key_inputs)}, "
            f"|PO|={len(self._outputs)}, |gates|={len(self._gates)})"
        )

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def fanout_map(self) -> Dict[str, List[str]]:
        """Map net name -> list of gate names that read it."""
        fanout: Dict[str, List[str]] = {}
        for gate in self._gates.values():
            for net in gate.inputs:
                fanout.setdefault(net, []).append(gate.name)
        return fanout

    def fanout_of(self, net: str) -> List[str]:
        """Gate names reading ``net`` (recomputed; use fanout_map for bulk)."""
        return [g.name for g in self._gates.values() if net in g.inputs]

    def topological_order(self) -> List[str]:
        """Gate names in topological order (inputs before outputs).

        Raises :class:`CircuitError` if the netlist has a combinational cycle
        or a gate reads an undeclared net.
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        in_deg: Dict[str, int] = {}
        dependents: Dict[str, List[str]] = {}
        sources = set(self._inputs) | set(self._key_inputs)
        for gate in self._gates.values():
            count = 0
            for net in gate.inputs:
                if net in self._gates:
                    count += 1
                    dependents.setdefault(net, []).append(gate.name)
                elif net not in sources:
                    raise CircuitError(
                        f"gate {gate.name} reads undeclared net {net}"
                    )
            in_deg[gate.name] = count
        ready = sorted(name for name, deg in in_deg.items() if deg == 0)
        order: List[str] = []
        # Kahn's algorithm with deterministic tie-breaking.
        from heapq import heapify, heappop, heappush

        heapify(ready)
        while ready:
            name = heappop(ready)
            order.append(name)
            for dep in dependents.get(name, ()):
                in_deg[dep] -= 1
                if in_deg[dep] == 0:
                    heappush(ready, dep)
        if len(order) != len(self._gates):
            cyclic = sorted(set(self._gates) - set(order))
            raise CircuitError(f"combinational cycle involving {cyclic[:5]}")
        self._topo_cache = order
        return list(order)

    # ------------------------------------------------------------------
    # Copy / merge helpers
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Deep-copy the netlist (gates are immutable so shallow refs are fine)."""
        other = Circuit(name or self.name, self.library)
        other._inputs = list(self._inputs)
        other._key_inputs = list(self._key_inputs)
        other._outputs = list(self._outputs)
        other._gates = dict(self._gates)
        return other

    def fresh_net_name(self, prefix: str) -> str:
        """Return a net name with ``prefix`` that does not collide."""
        if not self.net_exists(prefix) and prefix not in self._outputs:
            return prefix
        i = 0
        while True:
            candidate = f"{prefix}_{i}"
            if not self.net_exists(candidate) and candidate not in self._outputs:
                return candidate
            i += 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_new_net(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise CircuitError(f"invalid net name {name!r}")
        if self.net_exists(name):
            raise CircuitError(f"net {name} already exists")

    def _invalidate(self) -> None:
        self._topo_cache = None
