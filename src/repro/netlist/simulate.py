"""Vectorised logic simulation of combinational netlists.

Simulation is used by the oracle-guided SAT attack (to query the "oracle"),
by the equivalence-checking fallback, by the signal-probability analysis
backing the SPS baseline, and by the FALL unateness analysis.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from .circuit import Circuit, CircuitError

__all__ = [
    "simulate",
    "simulate_patterns",
    "random_patterns",
    "exhaustive_patterns",
    "evaluate_output",
]


def _as_bool_array(value, n_patterns: int) -> np.ndarray:
    arr = np.asarray(value, dtype=bool)
    if arr.ndim == 0:
        arr = np.full(n_patterns, bool(arr))
    if arr.shape != (n_patterns,):
        raise ValueError(f"input vector has shape {arr.shape}, expected ({n_patterns},)")
    return arr


def simulate(
    circuit: Circuit,
    assignments: Mapping[str, object],
    *,
    outputs: Optional[Sequence[str]] = None,
) -> Dict[str, np.ndarray]:
    """Simulate the circuit on one or more input patterns.

    Parameters
    ----------
    circuit:
        The netlist to simulate.
    assignments:
        Mapping from every PI and KI name to either a scalar bool or a
        length-``n`` boolean vector (all vectors must share the same length).
    outputs:
        Net names to report.  Defaults to the circuit's primary outputs.

    Returns
    -------
    dict
        Mapping from requested net name to a boolean numpy vector.
    """
    required = set(circuit.inputs) | set(circuit.key_inputs)
    missing = required - set(assignments)
    if missing:
        raise CircuitError(f"missing input assignments: {sorted(missing)[:5]}")

    n_patterns = 1
    for value in assignments.values():
        arr = np.asarray(value)
        if arr.ndim == 1:
            n_patterns = max(n_patterns, arr.shape[0])

    values: Dict[str, np.ndarray] = {}
    for net in required:
        values[net] = _as_bool_array(assignments[net], n_patterns)

    gates = circuit.gates
    for name in circuit.topological_order():
        gate = gates[name]
        operands = [values[net] for net in gate.inputs]
        values[name] = gate.cell.evaluate(*operands)

    wanted = tuple(outputs) if outputs is not None else circuit.outputs
    result: Dict[str, np.ndarray] = {}
    for net in wanted:
        if net not in values:
            raise CircuitError(f"requested net {net} is not driven")
        result[net] = values[net]
    return result


def simulate_patterns(
    circuit: Circuit,
    patterns: np.ndarray,
    *,
    input_order: Optional[Sequence[str]] = None,
    outputs: Optional[Sequence[str]] = None,
) -> np.ndarray:
    """Simulate a dense pattern matrix.

    ``patterns`` is ``(n_patterns, n_inputs)`` where columns follow
    ``input_order`` (default: ``circuit.all_inputs``, i.e. PIs then KIs).
    Returns ``(n_patterns, n_outputs)`` with columns following ``outputs``
    (default: primary outputs).
    """
    order = tuple(input_order) if input_order is not None else circuit.all_inputs
    patterns = np.asarray(patterns, dtype=bool)
    if patterns.ndim != 2 or patterns.shape[1] != len(order):
        raise ValueError(
            f"patterns must be (n, {len(order)}), got {patterns.shape}"
        )
    assignments = {net: patterns[:, i] for i, net in enumerate(order)}
    wanted = tuple(outputs) if outputs is not None else circuit.outputs
    result = simulate(circuit, assignments, outputs=wanted)
    return np.column_stack([result[net] for net in wanted])


def random_patterns(
    n_inputs: int, n_patterns: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Uniform random boolean pattern matrix of shape (n_patterns, n_inputs)."""
    rng = rng or np.random.default_rng()
    return rng.integers(0, 2, size=(n_patterns, n_inputs), dtype=np.int8).astype(bool)


def exhaustive_patterns(n_inputs: int) -> np.ndarray:
    """All ``2**n_inputs`` patterns (n_inputs must be small)."""
    if n_inputs > 20:
        raise ValueError(f"refusing to enumerate 2**{n_inputs} patterns")
    count = 1 << n_inputs
    idx = np.arange(count, dtype=np.int64)
    cols = [(idx >> bit) & 1 for bit in range(n_inputs)]
    return np.column_stack(cols).astype(bool)


def evaluate_output(
    circuit: Circuit,
    output: str,
    assignments: Mapping[str, object],
) -> bool:
    """Evaluate a single output for a single scalar assignment."""
    result = simulate(circuit, assignments, outputs=[output])
    return bool(result[output][0])
