"""Vectorised logic simulation of combinational netlists.

Simulation is used by the oracle-guided SAT attack (to query the "oracle"),
by the equivalence-checking fallback, by the signal-probability analysis
backing the SPS baseline, and by the FALL unateness analysis.

Two engines sit behind one API:

* the **dense** engine evaluates each net as a numpy bool vector (one byte
  per pattern), and
* the **packed** engine (:mod:`repro.netlist.packed_sim`) evaluates 64
  patterns per ``uint64`` word, cutting memory traffic 8x per gate.

``engine="auto"`` (the default) picks packed once a call simulates at least
:data:`PACKED_MIN_PATTERNS` patterns on a circuit whose cells are all proven
packed-safe, and is bit-identical to the dense engine in every case.  The
``REPRO_SIM_ENGINE`` environment variable (``auto``/``packed``/``dense``)
overrides the default choice process-wide.
"""

from __future__ import annotations

import os
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from .circuit import Circuit, CircuitError
from .packed_sim import PackedSimulator, circuit_supports_packed

__all__ = [
    "PACKED_MIN_PATTERNS",
    "simulate",
    "simulate_patterns",
    "random_patterns",
    "exhaustive_patterns",
    "evaluate_output",
]

#: Pattern-count threshold at which ``engine="auto"`` switches to the packed
#: engine.  Below this the per-gate numpy-call overhead dominates either way
#: and the dense engine's simpler pack-free path wins.
PACKED_MIN_PATTERNS = 128


def _as_bool_array(value, n_patterns: int) -> np.ndarray:
    arr = np.asarray(value, dtype=bool)
    if arr.ndim == 0:
        arr = np.full(n_patterns, bool(arr))
    if arr.shape != (n_patterns,):
        raise ValueError(f"input vector has shape {arr.shape}, expected ({n_patterns},)")
    return arr


def _resolve_engine(engine: str, circuit: Circuit, n_patterns: int) -> str:
    """Resolve an ``engine`` request to ``"packed"`` or ``"dense"``."""
    if engine == "auto":
        engine = os.environ.get("REPRO_SIM_ENGINE", "auto").strip().lower() or "auto"
    if engine == "auto":
        if n_patterns >= PACKED_MIN_PATTERNS and circuit_supports_packed(circuit):
            return "packed"
        return "dense"
    if engine == "packed":
        if not circuit_supports_packed(circuit):
            raise CircuitError(
                f"circuit {circuit.name} uses cells that are not packed-safe"
            )
        return "packed"
    if engine == "dense":
        return "dense"
    raise ValueError(f"unknown simulation engine {engine!r}")


def simulate(
    circuit: Circuit,
    assignments: Mapping[str, object],
    *,
    outputs: Optional[Sequence[str]] = None,
    engine: str = "auto",
) -> Dict[str, np.ndarray]:
    """Simulate the circuit on one or more input patterns.

    Parameters
    ----------
    circuit:
        The netlist to simulate.
    assignments:
        Mapping from every PI and KI name to either a scalar bool or a
        length-``n`` boolean vector (all vectors must share the same length).
    outputs:
        Net names to report.  Defaults to the circuit's primary outputs.
    engine:
        ``"auto"`` (default), ``"packed"`` or ``"dense"``.  The engines are
        bit-identical; ``auto`` picks packed for wide pattern batches on
        packed-safe circuits.

    Returns
    -------
    dict
        Mapping from requested net name to a boolean numpy vector.
    """
    required = set(circuit.inputs) | set(circuit.key_inputs)
    missing = required - set(assignments)
    if missing:
        raise CircuitError(f"missing input assignments: {sorted(missing)[:5]}")

    n_patterns = 1
    for value in assignments.values():
        arr = np.asarray(value)
        if arr.ndim == 1:
            n_patterns = max(n_patterns, arr.shape[0])

    values: Dict[str, np.ndarray] = {}
    for net in required:
        values[net] = _as_bool_array(assignments[net], n_patterns)

    wanted = tuple(outputs) if outputs is not None else circuit.outputs

    if _resolve_engine(engine, circuit, n_patterns) == "packed":
        return PackedSimulator(circuit).run_dense(values, n_patterns, wanted)

    gates = circuit.gates
    for name in circuit.topological_order():
        gate = gates[name]
        operands = [values[net] for net in gate.inputs]
        values[name] = gate.cell.evaluate(*operands)

    result: Dict[str, np.ndarray] = {}
    for net in wanted:
        if net not in values:
            raise CircuitError(f"requested net {net} is not driven")
        result[net] = values[net]
    return result


def simulate_patterns(
    circuit: Circuit,
    patterns: np.ndarray,
    *,
    input_order: Optional[Sequence[str]] = None,
    outputs: Optional[Sequence[str]] = None,
    engine: str = "auto",
) -> np.ndarray:
    """Simulate a dense pattern matrix.

    ``patterns`` is ``(n_patterns, n_inputs)`` where columns follow
    ``input_order`` (default: ``circuit.all_inputs``, i.e. PIs then KIs).
    Returns ``(n_patterns, n_outputs)`` with columns following ``outputs``
    (default: primary outputs).  ``engine`` selects the simulation engine as
    in :func:`simulate`.
    """
    order = tuple(input_order) if input_order is not None else circuit.all_inputs
    patterns = np.asarray(patterns, dtype=bool)
    if patterns.ndim != 2 or patterns.shape[1] != len(order):
        raise ValueError(
            f"patterns must be (n, {len(order)}), got {patterns.shape}"
        )
    assignments = {net: patterns[:, i] for i, net in enumerate(order)}
    wanted = tuple(outputs) if outputs is not None else circuit.outputs
    result = simulate(circuit, assignments, outputs=wanted, engine=engine)
    return np.column_stack([result[net] for net in wanted])


def random_patterns(
    n_inputs: int, n_patterns: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Uniform random boolean pattern matrix of shape (n_patterns, n_inputs).

    Without an explicit ``rng`` the stream comes from a **fixed** seed: this
    codebase's contract is bit-identical replay, and an unseeded default
    generator here was a silent determinism trap — two "identical" runs would
    disagree through no fault of the caller.  Pass your own generator to
    draw from a campaign-derived seed.
    """
    rng = rng or np.random.default_rng(0)
    return rng.integers(0, 2, size=(n_patterns, n_inputs), dtype=np.int8).astype(bool)


def exhaustive_patterns(n_inputs: int) -> np.ndarray:
    """All ``2**n_inputs`` patterns (n_inputs must be small)."""
    if n_inputs > 20:
        raise ValueError(f"refusing to enumerate 2**{n_inputs} patterns")
    count = 1 << n_inputs
    idx = np.arange(count, dtype=np.int64)
    cols = [(idx >> bit) & 1 for bit in range(n_inputs)]
    return np.column_stack(cols).astype(bool)


def evaluate_output(
    circuit: Circuit,
    output: str,
    assignments: Mapping[str, object],
) -> bool:
    """Evaluate a single output for a single scalar assignment."""
    result = simulate(circuit, assignments, outputs=[output])
    return bool(result[output][0])
