"""Bit-parallel netlist simulation: 64 patterns per machine word.

The dense engine in :mod:`repro.netlist.simulate` carries one byte per
pattern per net (numpy bool vectors).  For the pattern counts the attack hot
loops use — signal-probability estimation, oracle sweeps, labeling — the same
logic evaluates exactly on packed ``uint64`` lanes: bit *i* of word *w* holds
pattern ``w * 64 + i``, and every cell in our libraries is a composition of
``& | ^ ~`` which acts bitwise-identically on packed words.  That cuts memory
traffic 8x per gate and lets one numpy op retire 64 patterns per lane.

Safety is verified, not assumed: a cell function is only admitted to the
packed engine after :func:`cell_supports_packed` has proven it bitwise-exact
against the dense reference on an exhaustive truth table (arity <= 6 covers
every cell in the shipped libraries; variadic cells are checked at several
widths).  Anything else — e.g. exotic user cells built from comparisons —
falls back to the dense engine, so ``simulate(engine="auto")`` is always
bit-identical to the reference.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .circuit import Circuit, CircuitError
from .gates import CellType

__all__ = [
    "WORD_BITS",
    "pack_bits",
    "pack_rows",
    "unpack_bits",
    "popcount",
    "cell_supports_packed",
    "circuit_supports_packed",
    "PackedSimulator",
]

WORD_BITS = 64

#: Pattern-block width for :func:`pack_rows`.  One block across all vectors
#: must fit in L2 cache so the gather walks the source matrix once, not once
#: per net.
_PACK_BLOCK = 4096

#: id(cell) -> (cell, verdict).  The cell reference pins the object so its id
#: cannot be recycled while the verdict is cached.
_PACKABLE: Dict[int, Tuple[CellType, bool]] = {}

#: Variadic cells (bench AND/OR/...) are verified at these widths.
_VARIADIC_PROBE_ARITIES = (1, 2, 3, 5)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean vector into uint64 words (little-endian bit order).

    Pattern ``p`` lands in bit ``p % 64`` of word ``p // 64``; trailing pad
    bits of the last word are zero.
    """
    bits = np.asarray(bits, dtype=bool)
    if bits.ndim != 1:
        raise ValueError(f"pack_bits expects a vector, got shape {bits.shape}")
    n = bits.shape[0]
    n_words = (n + WORD_BITS - 1) // WORD_BITS
    padded = np.zeros(n_words * WORD_BITS, dtype=bool)
    padded[:n] = bits
    return (
        np.packbits(padded, bitorder="little")
        .view(np.uint64)
        .reshape(n_words)
        .copy()
    )


def pack_rows(vectors: Sequence[np.ndarray], n_patterns: int) -> np.ndarray:
    """Pack many equal-length bool vectors at once; rows match the input order.

    Returns a ``(len(vectors), n_words)`` uint64 matrix where row *i* equals
    ``pack_bits(vectors[i])``.  The vectors are gathered into one contiguous
    bool matrix in cache-sized pattern blocks before a single ``np.packbits``
    call: the hot callers hand us strided columns of one large pattern
    matrix, and packing those one net at a time re-walks the whole matrix
    once per net (~3x slower at b17_C scale).
    """
    n_words = (n_patterns + WORD_BITS - 1) // WORD_BITS
    mat = np.zeros((len(vectors), n_words * WORD_BITS), dtype=bool)
    for start in range(0, n_patterns, _PACK_BLOCK):
        stop = min(start + _PACK_BLOCK, n_patterns)
        for row, vec in enumerate(vectors):
            mat[row, start:stop] = vec[start:stop]
    return np.packbits(mat, axis=1, bitorder="little").view(np.uint64)


def unpack_bits(words: np.ndarray, n_patterns: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: uint64 words back to a bool vector."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return bits[:n_patterns].astype(bool)


if hasattr(np, "bitwise_count"):

    def popcount(words: np.ndarray) -> int:
        """Total number of set bits across the packed words."""
        return int(np.bitwise_count(words).sum())

else:  # pragma: no cover - numpy < 2.0 fallback

    def popcount(words: np.ndarray) -> int:
        """Total number of set bits across the packed words."""
        words = np.ascontiguousarray(words, dtype=np.uint64)
        return int(np.unpackbits(words.view(np.uint8)).sum())


def _verify_cell_at_arity(cell: CellType, k: int) -> bool:
    """Exhaustively compare packed vs dense evaluation of ``cell`` at arity k."""
    count = 1 << k
    idx = np.arange(count, dtype=np.int64)
    columns = [((idx >> bit) & 1).astype(bool) for bit in range(k)]
    try:
        reference = np.asarray(cell.evaluate(*columns), dtype=bool)
        packed_out = cell.function(*[pack_bits(col) for col in columns])
    except Exception:  # noqa: BLE001 - any failure disqualifies the cell
        return False
    if not isinstance(packed_out, np.ndarray) or packed_out.dtype != np.uint64:
        return False
    return bool(np.array_equal(unpack_bits(packed_out, count), reference))


def cell_supports_packed(cell: CellType) -> bool:
    """True when the cell's function is proven exact on packed uint64 lanes.

    Fixed-arity cells (all <= 6 inputs in the shipped libraries) are verified
    over their full truth table; variadic cells over several widths.  The
    verdict is cached per cell object.
    """
    cached = _PACKABLE.get(id(cell))
    if cached is not None:
        return cached[1]
    if cell.arity is not None:
        ok = cell.arity <= 6 and _verify_cell_at_arity(cell, cell.arity)
    else:
        ok = all(_verify_cell_at_arity(cell, k) for k in _VARIADIC_PROBE_ARITIES)
    _PACKABLE[id(cell)] = (cell, ok)
    return ok


def circuit_supports_packed(circuit: Circuit) -> bool:
    """True when every cell instantiated in the circuit is packed-safe."""
    return all(cell_supports_packed(gate.cell) for gate in circuit)


class PackedSimulator:
    """Evaluate one circuit on packed pattern words.

    Construction compiles the topological order into a flat plan of
    ``(output net, cell function, input nets)`` triples, so the per-gate cost
    in :meth:`run` is one dict store, one list build and one numpy bitwise op
    over ``n_patterns / 64`` words.
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        gates = circuit.gates
        plan: List[Tuple[str, object, Tuple[str, ...]]] = []
        for name in circuit.topological_order():
            gate = gates[name]
            if not cell_supports_packed(gate.cell):
                raise CircuitError(
                    f"cell {gate.cell.name} (gate {name}) is not packed-safe; "
                    "use the dense engine"
                )
            plan.append((name, gate.cell.function, gate.inputs))
        self._plan = plan

    def run(
        self,
        packed_inputs: Dict[str, np.ndarray],
        outputs: Optional[Iterable[str]] = None,
    ) -> Dict[str, np.ndarray]:
        """Evaluate all gates; returns packed words for the requested nets.

        ``packed_inputs`` maps every PI and KI to a packed word vector (all
        the same length); it is not mutated.  Defaults to the circuit's
        primary outputs.
        """
        values = dict(packed_inputs)
        for name, function, in_nets in self._plan:
            values[name] = function(*[values[net] for net in in_nets])
        wanted = tuple(outputs) if outputs is not None else self.circuit.outputs
        result: Dict[str, np.ndarray] = {}
        for net in wanted:
            if net not in values:
                raise CircuitError(f"requested net {net} is not driven")
            result[net] = values[net]
        return result

    def run_dense(
        self,
        assignments: Dict[str, np.ndarray],
        n_patterns: int,
        outputs: Optional[Sequence[str]] = None,
    ) -> Dict[str, np.ndarray]:
        """Pack dense bool assignments, evaluate, unpack the requested nets."""
        order = list(assignments)
        words = pack_rows([assignments[net] for net in order], n_patterns)
        packed = {net: words[i] for i, net in enumerate(order)}
        result = self.run(packed, outputs)
        return {net: unpack_bits(words, n_patterns) for net, words in result.items()}
