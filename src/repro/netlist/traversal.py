"""Structural traversal utilities: fan-in / fan-out cones, levels, support.

These routines back both the GNNUnlock post-processing algorithm (which
reasons about KI / protected-input membership of fan-in cones) and the
baseline attacks (which trace key inputs through the netlist).
"""

from __future__ import annotations

from typing import Dict, List, Set

from .circuit import Circuit

__all__ = [
    "fanin_cone",
    "fanout_cone",
    "transitive_inputs",
    "has_key_input_in_fanin",
    "primary_inputs_in_fanin",
    "key_inputs_in_fanin",
    "gate_levels",
    "output_cone",
]


def fanin_cone(circuit: Circuit, net: str, *, include_start: bool = True) -> Set[str]:
    """All gate names in the transitive fan-in of ``net``.

    PIs and KIs terminate the traversal and are not included (they are not
    gates).  ``net`` itself is included when it names a gate and
    ``include_start`` is true.
    """
    gates = circuit.gates
    seen: Set[str] = set()
    stack: List[str] = [net]
    while stack:
        current = stack.pop()
        gate = gates.get(current)
        if gate is None:
            continue
        if current in seen:
            continue
        seen.add(current)
        stack.extend(gate.inputs)
    if not include_start:
        seen.discard(net)
    return seen


def fanout_cone(circuit: Circuit, net: str, *, include_start: bool = True) -> Set[str]:
    """All gate names in the transitive fan-out of ``net``."""
    fanout = circuit.fanout_map()
    seen: Set[str] = set()
    stack: List[str] = list(fanout.get(net, ()))
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(fanout.get(current, ()))
    if include_start and circuit.has_gate(net):
        seen.add(net)
    elif not include_start:
        seen.discard(net)
    return seen


def transitive_inputs(circuit: Circuit, net: str) -> Set[str]:
    """The set of PI / KI names feeding ``net`` (its structural support)."""
    gates = circuit.gates
    terminals: Set[str] = set()
    seen: Set[str] = set()
    stack: List[str] = [net]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        gate = gates.get(current)
        if gate is None:
            if circuit.is_input(current) or circuit.is_key_input(current):
                terminals.add(current)
            continue
        stack.extend(gate.inputs)
    return terminals


def primary_inputs_in_fanin(circuit: Circuit, net: str) -> Set[str]:
    """Primary (non-key) inputs in the structural support of ``net``."""
    return {n for n in transitive_inputs(circuit, net) if circuit.is_input(n)}


def key_inputs_in_fanin(circuit: Circuit, net: str) -> Set[str]:
    """Key inputs in the structural support of ``net``."""
    return {n for n in transitive_inputs(circuit, net) if circuit.is_key_input(n)}


def has_key_input_in_fanin(circuit: Circuit, net: str) -> bool:
    """True when at least one KI lies in the fan-in cone of ``net``."""
    gates = circuit.gates
    seen: Set[str] = set()
    stack: List[str] = [net]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        if circuit.is_key_input(current):
            return True
        gate = gates.get(current)
        if gate is not None:
            stack.extend(gate.inputs)
    return False


def gate_levels(circuit: Circuit) -> Dict[str, int]:
    """Logic level of each gate (PIs/KIs are level 0; a gate is 1 + max input)."""
    levels: Dict[str, int] = {}
    gates = circuit.gates
    for name in circuit.topological_order():
        gate = gates[name]
        level = 0
        for net in gate.inputs:
            level = max(level, levels.get(net, 0))
        levels[name] = level + 1
    return levels


def output_cone(circuit: Circuit, output: str) -> Set[str]:
    """Gates in the fan-in cone of a primary output."""
    return fanin_cone(circuit, output, include_start=True)
