"""Netlist statistics used for dataset summaries (Table III) and reporting."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from .circuit import Circuit
from .traversal import gate_levels

__all__ = ["CircuitStats", "circuit_stats", "cell_histogram"]


@dataclass(frozen=True)
class CircuitStats:
    """Summary statistics of one netlist."""

    name: str
    library: str
    n_gates: int
    n_inputs: int
    n_key_inputs: int
    n_outputs: int
    depth: int
    cell_counts: Dict[str, int]

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "library": self.library,
            "n_gates": self.n_gates,
            "n_inputs": self.n_inputs,
            "n_key_inputs": self.n_key_inputs,
            "n_outputs": self.n_outputs,
            "depth": self.depth,
            "cell_counts": dict(self.cell_counts),
        }


def cell_histogram(circuit: Circuit) -> Dict[str, int]:
    """Count of gates per cell type."""
    return dict(Counter(gate.cell.name for gate in circuit))


def circuit_stats(circuit: Circuit) -> CircuitStats:
    """Compute summary statistics for one circuit."""
    levels = gate_levels(circuit) if len(circuit) else {}
    return CircuitStats(
        name=circuit.name,
        library=circuit.library.name,
        n_gates=len(circuit),
        n_inputs=len(circuit.inputs),
        n_key_inputs=len(circuit.key_inputs),
        n_outputs=len(circuit.outputs),
        depth=max(levels.values()) if levels else 0,
        cell_counts=cell_histogram(circuit),
    )
