"""Reader / writer for the ISCAS ``bench`` netlist format.

The bench format is the non-industry format the paper criticises prior attacks
for being restricted to; the Anti-SAT locking binary only accepts it.  A bench
file looks like::

    # comment
    INPUT(a)
    INPUT(keyinput0)
    OUTPUT(y)
    n1 = NAND(a, b)
    y = NOT(n1)

Key inputs are recognised by name prefix (``keyinput`` by default), matching
how logic-locking tools emit them.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Tuple

from .circuit import Circuit, CircuitError
from .gates import BENCH8, CellLibrary

__all__ = ["parse_bench", "parse_bench_file", "write_bench", "write_bench_file"]

_KEY_PREFIXES = ("keyinput", "KEYINPUT", "key_input")

_INPUT_RE = re.compile(r"^INPUT\s*\(\s*([^)]+?)\s*\)$", re.IGNORECASE)
_OUTPUT_RE = re.compile(r"^OUTPUT\s*\(\s*([^)]+?)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(r"^([^=\s]+)\s*=\s*([A-Za-z0-9_]+)\s*\(\s*(.*?)\s*\)$")

_BENCH_ALIASES = {
    "INV": "NOT",
    "NOT": "NOT",
    "BUFF": "BUF",
    "BUF": "BUF",
}


def _is_key_input(name: str, key_prefixes: Tuple[str, ...]) -> bool:
    return any(name.startswith(p) for p in key_prefixes)


def parse_bench(
    text: str,
    *,
    name: str = "bench_design",
    library: CellLibrary = BENCH8,
    key_prefixes: Tuple[str, ...] = _KEY_PREFIXES,
) -> Circuit:
    """Parse bench-format text into a :class:`Circuit`.

    Inputs whose names start with one of ``key_prefixes`` become key inputs.
    Output statements may name a net that is also an internal gate; in that
    case the net is simply marked as a primary output.
    """
    circuit = Circuit(name, library)
    pending_outputs: List[str] = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        match = _INPUT_RE.match(line)
        if match:
            net = match.group(1)
            if _is_key_input(net, key_prefixes):
                circuit.add_key_input(net)
            else:
                circuit.add_input(net)
            continue
        match = _OUTPUT_RE.match(line)
        if match:
            pending_outputs.append(match.group(1))
            continue
        match = _GATE_RE.match(line)
        if match:
            out, cell_name, arg_text = match.groups()
            cell_name = cell_name.upper()
            cell_name = _BENCH_ALIASES.get(cell_name, cell_name)
            if cell_name not in library:
                raise CircuitError(
                    f"bench parse error: unknown cell {cell_name!r} in line {line!r}"
                )
            args = [a.strip() for a in arg_text.split(",") if a.strip()]
            circuit.add_gate(out, cell_name, args)
            continue
        raise CircuitError(f"bench parse error: cannot parse line {line!r}")
    for net in pending_outputs:
        circuit.add_output(net)
    return circuit


def parse_bench_file(path: str | Path, **kwargs) -> Circuit:
    """Parse a ``.bench`` file from disk."""
    path = Path(path)
    return parse_bench(path.read_text(), name=kwargs.pop("name", path.stem), **kwargs)


def write_bench(circuit: Circuit) -> str:
    """Serialise a circuit to bench-format text.

    Only cells expressible in the bench vocabulary (AND/NAND/OR/NOR/XOR/XNOR/
    NOT/BUF and the fixed-arity equivalents) are supported.
    """
    lines: List[str] = [f"# {circuit.name}"]
    for net in circuit.inputs:
        lines.append(f"INPUT({net})")
    for net in circuit.key_inputs:
        lines.append(f"INPUT({net})")
    for net in circuit.outputs:
        lines.append(f"OUTPUT({net})")
    lines.append("")
    for name in circuit.topological_order():
        gate = circuit.gate(name)
        cell = _bench_cell_name(gate.cell.name)
        args = ", ".join(gate.inputs)
        lines.append(f"{name} = {cell}({args})")
    return "\n".join(lines) + "\n"


def write_bench_file(circuit: Circuit, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(write_bench(circuit))
    return path


_FIXED_TO_BENCH = {
    "INV": "NOT",
    "AND2": "AND",
    "AND3": "AND",
    "AND4": "AND",
    "NAND2": "NAND",
    "NAND3": "NAND",
    "NAND4": "NAND",
    "OR2": "OR",
    "OR3": "OR",
    "OR4": "OR",
    "NOR2": "NOR",
    "NOR3": "NOR",
    "NOR4": "NOR",
    "XOR2": "XOR",
    "XOR3": "XOR",
    "XNOR2": "XNOR",
    "XNOR3": "XNOR",
}


def _bench_cell_name(cell_name: str) -> str:
    if cell_name in BENCH8:
        return cell_name
    mapped = _FIXED_TO_BENCH.get(cell_name)
    if mapped is None:
        raise CircuitError(
            f"cell {cell_name} has no bench equivalent; re-map to BENCH8 first"
        )
    return mapped
