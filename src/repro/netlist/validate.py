"""Structural validation of netlists.

Locking transforms, synthesis passes and protection-logic removal all mutate
netlists; :func:`validate_circuit` is the invariant checker they (and the
property-based tests) rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .circuit import Circuit, CircuitError

__all__ = ["ValidationReport", "validate_circuit", "check_circuit"]


@dataclass
class ValidationReport:
    """Outcome of a structural validation pass."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def __bool__(self) -> bool:
        return self.ok


def validate_circuit(circuit: Circuit, *, allow_dangling: bool = False) -> ValidationReport:
    """Check the structural invariants of a netlist.

    Errors
    ------
    * a gate reads a net that is neither an input, a key input, nor driven by
      a gate,
    * a primary output is not driven,
    * the netlist contains a combinational cycle,
    * a gate's fan-in count violates its cell arity (checked on construction,
      revalidated here for safety).

    Warnings
    --------
    * a gate output drives nothing and is not a primary output (dead logic),
    * an input or key input drives nothing.
    """
    report = ValidationReport()
    gates = circuit.gates
    declared = set(circuit.inputs) | set(circuit.key_inputs) | set(gates)

    for gate in gates.values():
        for net in gate.inputs:
            if net not in declared:
                msg = f"gate {gate.name} reads undeclared net {net}"
                if allow_dangling:
                    report.warnings.append(msg)
                else:
                    report.errors.append(msg)
        if gate.cell.arity is not None and len(gate.inputs) != gate.cell.arity:
            report.errors.append(
                f"gate {gate.name}: arity mismatch for cell {gate.cell.name}"
            )

    for net in circuit.outputs:
        if net not in declared:
            report.errors.append(f"primary output {net} is not driven")

    try:
        circuit.topological_order()
    except CircuitError as exc:
        if not allow_dangling or "cycle" in str(exc):
            report.errors.append(str(exc))

    fanout = circuit.fanout_map()
    outputs = set(circuit.outputs)
    for name in gates:
        if name not in fanout and name not in outputs:
            report.warnings.append(f"gate {name} drives nothing (dead logic)")
    for net in list(circuit.inputs) + list(circuit.key_inputs):
        if net not in fanout and net not in outputs:
            report.warnings.append(f"input {net} drives nothing")

    return report


def check_circuit(circuit: Circuit) -> None:
    """Raise :class:`CircuitError` if the netlist is structurally invalid."""
    report = validate_circuit(circuit)
    if not report.ok:
        raise CircuitError("; ".join(report.errors))
