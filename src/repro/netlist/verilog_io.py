"""Reader / writer for flat structural (gate-level) Verilog netlists.

The paper's point about "circuit formats" is that real design flows hand off
synthesised Verilog netlists, not bench files.  We support the restricted
structural subset that synthesis tools emit::

    module c2670 ( a, b, keyinput0, y );
      input a, b;
      input keyinput0;
      output y;
      wire n1, n2;
      NAND2 U1 ( .A(a), .B(b), .Y(n1) );
      INV U2 ( .A(n1), .Y(y) );
    endmodule

Pin naming convention: inputs are ``A, B, C, D, E`` (or ``S`` for the MUX
select) in cell-port order and the output pin is ``Y``.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Tuple

from .circuit import Circuit, CircuitError
from .gates import GEN65, CellLibrary

__all__ = [
    "parse_verilog",
    "parse_verilog_file",
    "write_verilog",
    "write_verilog_file",
]

_KEY_PREFIXES = ("keyinput", "KEYINPUT", "key_input")

_MODULE_RE = re.compile(r"module\s+([A-Za-z_][\w$]*)\s*\((.*?)\)\s*;", re.DOTALL)
_DECL_RE = re.compile(r"\b(input|output|wire)\b\s+(.*?);", re.DOTALL)
_INSTANCE_RE = re.compile(
    r"([A-Za-z_][\w]*)\s+([A-Za-z_][\w$]*)\s*\(\s*(\..*?)\)\s*;", re.DOTALL
)
_PIN_RE = re.compile(r"\.([A-Za-z_]\w*)\s*\(\s*([^)]+?)\s*\)")

_INPUT_PIN_ORDER = ("A", "B", "C", "D", "E", "S")
_OUTPUT_PIN = "Y"


def _strip_comments(text: str) -> str:
    text = re.sub(r"//.*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    return text


def _split_names(decl: str) -> List[str]:
    return [n.strip() for n in decl.replace("\n", " ").split(",") if n.strip()]


def parse_verilog(
    text: str,
    *,
    library: CellLibrary = GEN65,
    key_prefixes: Tuple[str, ...] = _KEY_PREFIXES,
) -> Circuit:
    """Parse a flat structural Verilog netlist into a :class:`Circuit`."""
    text = _strip_comments(text)
    module_match = _MODULE_RE.search(text)
    if module_match is None:
        raise CircuitError("verilog parse error: no module header found")
    module_name = module_match.group(1)
    body = text[module_match.end():]
    end = body.find("endmodule")
    if end < 0:
        raise CircuitError("verilog parse error: missing endmodule")
    body = body[:end]

    inputs: List[str] = []
    outputs: List[str] = []
    wires: List[str] = []
    for kind, decl in _DECL_RE.findall(body):
        names = _split_names(decl)
        if kind == "input":
            inputs.extend(names)
        elif kind == "output":
            outputs.extend(names)
        else:
            wires.extend(names)

    circuit = Circuit(module_name, library)
    for net in inputs:
        if any(net.startswith(p) for p in key_prefixes):
            circuit.add_key_input(net)
        else:
            circuit.add_input(net)

    # Remove declarations so that the instance regex does not trip over them.
    instance_body = _DECL_RE.sub("", body)
    instance_to_net: Dict[str, str] = {}
    for cell_name, inst_name, pin_text in _INSTANCE_RE.findall(instance_body):
        if cell_name not in library:
            raise CircuitError(
                f"verilog parse error: unknown cell {cell_name!r} "
                f"(library {library.name})"
            )
        pins = dict(_PIN_RE.findall(pin_text))
        if _OUTPUT_PIN not in pins:
            raise CircuitError(f"instance {inst_name}: missing output pin Y")
        out_net = pins.pop(_OUTPUT_PIN)
        ordered_inputs = []
        for pin in _INPUT_PIN_ORDER:
            if pin in pins:
                ordered_inputs.append(pins.pop(pin))
        if pins:
            raise CircuitError(
                f"instance {inst_name}: unrecognised pins {sorted(pins)}"
            )
        circuit.add_gate(out_net, cell_name, ordered_inputs)
        instance_to_net[inst_name] = out_net

    for net in outputs:
        circuit.add_output(net)
    return circuit


def parse_verilog_file(path: str | Path, **kwargs) -> Circuit:
    """Parse a structural Verilog file from disk."""
    return parse_verilog(Path(path).read_text(), **kwargs)


def write_verilog(circuit: Circuit) -> str:
    """Serialise a circuit to flat structural Verilog."""
    ports = list(circuit.inputs) + list(circuit.key_inputs) + list(circuit.outputs)
    lines: List[str] = []
    lines.append(f"module {circuit.name} ( {', '.join(ports)} );")
    for net in circuit.inputs:
        lines.append(f"  input {net};")
    for net in circuit.key_inputs:
        lines.append(f"  input {net};")
    for net in circuit.outputs:
        lines.append(f"  output {net};")
    wires = [
        name
        for name in circuit.gate_names()
        if name not in circuit.outputs
    ]
    for net in wires:
        lines.append(f"  wire {net};")
    lines.append("")
    for idx, name in enumerate(circuit.topological_order()):
        gate = circuit.gate(name)
        pin_map = []
        for pin, net in zip(_INPUT_PIN_ORDER, gate.inputs):
            pin_map.append(f".{pin}({net})")
        if len(gate.inputs) > len(_INPUT_PIN_ORDER):
            raise CircuitError(
                f"gate {name}: {len(gate.inputs)} inputs exceed Verilog pin naming; "
                "re-map to a fixed-arity library first"
            )
        pin_map.append(f".{_OUTPUT_PIN}({name})")
        lines.append(f"  {gate.cell.name} U{idx} ( {', '.join(pin_map)} );")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_verilog_file(circuit: Circuit, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(write_verilog(circuit))
    return path
