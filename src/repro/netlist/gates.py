"""Cell (gate) types and cell libraries.

The paper evaluates GNNUnlock on netlists written against three different
cell vocabularies:

* the restricted 8-gate ``bench`` vocabulary used by the Anti-SAT locking
  binary (feature-vector length 13),
* a rich commercial 65nm standard-cell library (feature-vector length 34),
* the Nangate 45nm open cell library (feature-vector length 18).

We reproduce the *shape* of those vocabularies with three libraries:
:data:`BENCH8`, :data:`GEN65` and :data:`GEN45`.  The feature-vector length of
a library is ``len(library) + 5`` (see :mod:`repro.core.features`), matching
the paper's 13 / 34 / 18.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "CellType",
    "CellLibrary",
    "BENCH8",
    "GEN65",
    "GEN45",
    "LIBRARIES",
    "get_library",
]


def _to_arrays(values: Sequence) -> Tuple[np.ndarray, ...]:
    return tuple(np.asarray(v, dtype=bool) for v in values)


@dataclass(frozen=True)
class CellType:
    """A combinational cell.

    Parameters
    ----------
    name:
        Library cell name, e.g. ``"NAND2"`` or ``"AOI21"``.
    arity:
        Number of inputs.  ``None`` means variadic (bench-style ``AND``/``OR``
        gates accept any number of inputs >= 1).
    function:
        Callable evaluating the cell.  It receives one boolean numpy array per
        input pin (broadcastable) and returns a boolean numpy array.
    """

    name: str
    arity: int | None
    function: Callable[..., np.ndarray] = field(compare=False, repr=False)

    def evaluate(self, *inputs) -> np.ndarray:
        """Evaluate the cell on scalar bools or numpy bool arrays."""
        if self.arity is not None and len(inputs) != self.arity:
            raise ValueError(
                f"cell {self.name} expects {self.arity} inputs, got {len(inputs)}"
            )
        if self.arity is None and len(inputs) < 1:
            raise ValueError(f"cell {self.name} expects at least one input")
        return self.function(*_to_arrays(inputs))

    @property
    def is_variadic(self) -> bool:
        return self.arity is None


class CellLibrary:
    """An ordered collection of :class:`CellType` objects.

    The ordering is significant: feature vectors index neighbourhood gate-type
    counts by the library order, and parsers/writers resolve cell names through
    the library.
    """

    def __init__(self, name: str, cells: Sequence[CellType]):
        self.name = name
        self._cells: Dict[str, CellType] = {}
        for cell in cells:
            if cell.name in self._cells:
                raise ValueError(f"duplicate cell {cell.name} in library {name}")
            self._cells[cell.name] = cell
        self._order = {cell.name: i for i, cell in enumerate(cells)}

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self):
        return iter(self._cells.values())

    def __getitem__(self, name: str) -> CellType:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(f"cell {name!r} not in library {self.name}") from None

    def index(self, name: str) -> int:
        """Position of a cell in the library ordering (for feature vectors)."""
        return self._order[name]

    @property
    def cell_names(self) -> Tuple[str, ...]:
        return tuple(self._cells)

    @property
    def feature_length(self) -> int:
        """Length of the per-node feature vector for this library.

        Five structural entries (connected-to-PI, connected-to-KI,
        connected-to-PO, in-degree, out-degree) plus one neighbourhood count
        per cell type.
        """
        return len(self) + 5

    def __reduce__(self):
        # Code all over the tree compares libraries by identity
        # (``circuit.library is BENCH8``), so a registered library must
        # unpickle to the singleton itself — not an equal copy.  This keeps
        # circuits loaded from the artifact cache indistinguishable from
        # freshly generated ones.
        if LIBRARIES.get(self.name) is self:
            return (get_library, (self.name,))
        return (CellLibrary, (self.name, tuple(self._cells.values())))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CellLibrary({self.name!r}, {len(self)} cells)"


# ---------------------------------------------------------------------------
# Boolean primitives used to define cell functions.
# ---------------------------------------------------------------------------

def _and(*xs):
    out = xs[0].copy()
    for x in xs[1:]:
        out = out & x
    return out


def _or(*xs):
    out = xs[0].copy()
    for x in xs[1:]:
        out = out | x
    return out


def _xor(*xs):
    out = xs[0].copy()
    for x in xs[1:]:
        out = out ^ x
    return out


def _not(x):
    return ~x


def _buf(x):
    return x.copy()


def _nand(*xs):
    return ~_and(*xs)


def _nor(*xs):
    return ~_or(*xs)


def _xnor(*xs):
    return ~_xor(*xs)


def _aoi21(a, b, c):
    return ~((a & b) | c)


def _aoi22(a, b, c, d):
    return ~((a & b) | (c & d))


def _oai21(a, b, c):
    return ~((a | b) & c)


def _oai22(a, b, c, d):
    return ~((a | b) & (c | d))


def _aoi211(a, b, c, d):
    return ~((a & b) | c | d)


def _oai211(a, b, c, d):
    return ~((a | b) & c & d)


def _aoi221(a, b, c, d, e):
    return ~((a & b) | (c & d) | e)


def _oai221(a, b, c, d, e):
    return ~((a | b) & (c | d) & e)


def _mux2(a, b, s):
    return (a & ~s) | (b & s)


def _maj3(a, b, c):
    return (a & b) | (a & c) | (b & c)


def _nand2b(a, b):
    # NAND with one inverted input: ~( ~a & b )
    return ~(~a & b)


# ---------------------------------------------------------------------------
# BENCH8: the 8-gate vocabulary of the ISCAS bench format (variadic gates).
# ---------------------------------------------------------------------------

BENCH8 = CellLibrary(
    "BENCH8",
    [
        CellType("AND", None, _and),
        CellType("NAND", None, _nand),
        CellType("OR", None, _or),
        CellType("NOR", None, _nor),
        CellType("XOR", None, _xor),
        CellType("XNOR", None, _xnor),
        CellType("NOT", 1, _not),
        CellType("BUF", 1, _buf),
    ],
)


# ---------------------------------------------------------------------------
# GEN65: rich standard-cell-like library (29 cells -> |f| = 34).
# ---------------------------------------------------------------------------

GEN65 = CellLibrary(
    "GEN65",
    [
        CellType("INV", 1, _not),
        CellType("BUF", 1, _buf),
        CellType("AND2", 2, _and),
        CellType("AND3", 3, _and),
        CellType("AND4", 4, _and),
        CellType("NAND2", 2, _nand),
        CellType("NAND3", 3, _nand),
        CellType("NAND4", 4, _nand),
        CellType("OR2", 2, _or),
        CellType("OR3", 3, _or),
        CellType("OR4", 4, _or),
        CellType("NOR2", 2, _nor),
        CellType("NOR3", 3, _nor),
        CellType("NOR4", 4, _nor),
        CellType("XOR2", 2, _xor),
        CellType("XNOR2", 2, _xnor),
        CellType("XOR3", 3, _xor),
        CellType("XNOR3", 3, _xnor),
        CellType("AOI21", 3, _aoi21),
        CellType("AOI22", 4, _aoi22),
        CellType("OAI21", 3, _oai21),
        CellType("OAI22", 4, _oai22),
        CellType("AOI211", 4, _aoi211),
        CellType("OAI211", 4, _oai211),
        CellType("AOI221", 5, _aoi221),
        CellType("OAI221", 5, _oai221),
        CellType("MUX2", 3, _mux2),
        CellType("MAJ3", 3, _maj3),
        CellType("NAND2B", 2, _nand2b),
    ],
)


# ---------------------------------------------------------------------------
# GEN45: reduced open-cell-like library (13 cells -> |f| = 18).
# ---------------------------------------------------------------------------

GEN45 = CellLibrary(
    "GEN45",
    [
        CellType("INV", 1, _not),
        CellType("BUF", 1, _buf),
        CellType("AND2", 2, _and),
        CellType("NAND2", 2, _nand),
        CellType("NAND3", 3, _nand),
        CellType("OR2", 2, _or),
        CellType("NOR2", 2, _nor),
        CellType("NOR3", 3, _nor),
        CellType("XOR2", 2, _xor),
        CellType("XNOR2", 2, _xnor),
        CellType("AOI21", 3, _aoi21),
        CellType("OAI21", 3, _oai21),
        CellType("MUX2", 3, _mux2),
    ],
)


LIBRARIES: Dict[str, CellLibrary] = {
    lib.name: lib for lib in (BENCH8, GEN65, GEN45)
}


def get_library(name: str) -> CellLibrary:
    """Look up a library by name (``"BENCH8"``, ``"GEN65"`` or ``"GEN45"``)."""
    try:
        return LIBRARIES[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown library {name!r}; available: {sorted(LIBRARIES)}"
        ) from None
