"""Per-task leases: the bookkeeping that lets N drainers share one queue.

A :class:`LeaseTable` tracks, for every registered job, which task indices
are still pending, which are out on an active lease, and which are done.
Workers *claim* leases (FIFO across jobs in registration order), *renew*
them by heartbeating before the deadline, and either *complete* or
*release* them.  A lease whose deadline passes without a heartbeat is
reclaimed: its task index goes back to the front of the pending queue so
the next claimer re-executes it.

Invariants (enforced by construction, verified by the property suite in
``tests/fleet/test_lease_properties.py``):

* every registered task index is in exactly one of {pending, active, done};
* a task's result is *accepted exactly once* — completions after the first
  report ``duplicate`` and are discarded;
* completion is **first-wins even from an expired lease**: task execution
  is deterministic, so a zombie worker's result for a not-yet-done task is
  as good as anyone's, and accepting it never loses or duplicates work.

The table is deliberately independent of the job queue: it holds its own
lock, imports nothing from :mod:`repro.service`, and takes an injectable
``clock`` so expiry interleavings are testable without sleeping.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["DEFAULT_LEASE_TTL_S", "LeaseError", "LeaseTable", "TaskLease"]

#: Default seconds between required heartbeats before a lease is reclaimed.
DEFAULT_LEASE_TTL_S = 30.0


class LeaseError(Exception):
    """A lease operation that cannot be honoured.

    ``code`` is machine-readable so the HTTP layer can map it onto a
    status without string-matching the message:

    * ``unknown_lease`` — lease id never existed (or its job was torn down)
    * ``lease_expired`` — lease is no longer active (expired / released /
      completed); the worker must abandon the task
    * ``not_owner`` — lease id exists but belongs to a different worker
    """

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


@dataclass
class TaskLease:
    """One worker's time-bounded right to execute one task."""

    lease_id: str
    job_id: str
    task_index: int
    fingerprint: str
    worker: str
    issued_at: float
    deadline: float
    renewals: int = 0
    #: ``active`` | ``expired`` | ``released`` | ``completed``
    state: str = "active"

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "lease_id": self.lease_id,
            "job_id": self.job_id,
            "task_index": self.task_index,
            "fingerprint": self.fingerprint,
            "worker": self.worker,
            "renewals": self.renewals,
            "state": self.state,
        }


@dataclass
class _JobTasks:
    """Per-job partition of task indices: pending ∪ active ∪ done."""

    fingerprints: Dict[int, str]
    pending: Deque[int] = field(default_factory=deque)
    #: task index -> lease id of the active lease on it
    active: Dict[int, str] = field(default_factory=dict)
    done: Set[int] = field(default_factory=set)


class LeaseTable:
    """Thread-safe lease bookkeeping over an injectable monotonic clock."""

    def __init__(
        self,
        *,
        default_ttl_s: float = DEFAULT_LEASE_TTL_S,
        clock: Callable[[], float] = time.monotonic,
        on_expire: Optional[Callable[[List[TaskLease]], None]] = None,
    ):
        self.default_ttl_s = max(0.1, float(default_ttl_s))
        self.clock = clock
        #: Called (outside the lock) with every batch of expired leases,
        #: whichever operation swept them — expiry is lazy, so an observer
        #: that only polled :meth:`reclaim_expired` would miss the leases
        #: a concurrent ``claim``/``renew``/``complete`` expired first.
        self.on_expire = on_expire
        self._lock = threading.Lock()
        #: job_id -> its task partition, in registration order (dicts are
        #: insertion-ordered; claim() walks them FIFO).
        self._jobs: Dict[str, _JobTasks] = {}
        #: Every lease ever issued for a still-registered job, terminal
        #: states included — tombstones answer late completes/duplicates.
        self._leases: Dict[str, TaskLease] = {}

    # ------------------------------------------------------------------
    # Job lifecycle
    def register(self, job_id: str, tasks: Sequence[Tuple[int, str]]) -> None:
        """Register ``(task_index, fingerprint)`` pairs as claimable work."""
        with self._lock:
            if job_id in self._jobs:
                raise ValueError(f"job {job_id} already registered")
            entry = _JobTasks(fingerprints={int(i): fp for i, fp in tasks})
            entry.pending.extend(sorted(entry.fingerprints))
            self._jobs[job_id] = entry

    def unregister(self, job_id: str) -> None:
        """Drop a finished job's partition and all its lease tombstones."""
        with self._lock:
            self._jobs.pop(job_id, None)
            self._leases = {
                lease_id: lease
                for lease_id, lease in self._leases.items()
                if lease.job_id != job_id
            }

    def cancel_pending(self, job_id: str) -> List[int]:
        """Drain a job's pending indices (for cancellation sweeps).

        Active leases are left to finish or expire; expiry re-queues their
        index, so the next sweep picks those up too.
        """
        with self._lock:
            entry = self._jobs.get(job_id)
            if entry is None:
                return []
            drained = list(entry.pending)
            entry.pending.clear()
            # Cancelled-out indices count as done: the partition invariant
            # (pending ∪ active ∪ done = all) must survive cancellation.
            entry.done.update(drained)
            return drained

    # ------------------------------------------------------------------
    # Worker-facing operations
    def claim(
        self,
        worker: str,
        *,
        limit: int = 1,
        ttl_s: Optional[float] = None,
    ) -> List[TaskLease]:
        """Lease up to ``limit`` pending tasks to ``worker`` (FIFO)."""
        now = self.clock()
        ttl = self._ttl(ttl_s)
        granted: List[TaskLease] = []
        expired: List[TaskLease] = []
        with self._lock:
            expired = self._expire_due_locked(now)
            for job_id, entry in self._jobs.items():
                while entry.pending and len(granted) < int(limit):
                    index = entry.pending.popleft()
                    lease = TaskLease(
                        lease_id=uuid.uuid4().hex,
                        job_id=job_id,
                        task_index=index,
                        fingerprint=entry.fingerprints[index],
                        worker=worker,
                        issued_at=now,
                        deadline=now + ttl,
                    )
                    entry.active[index] = lease.lease_id
                    self._leases[lease.lease_id] = lease
                    granted.append(lease)
                if len(granted) >= int(limit):
                    break
        self._notify_expired(expired)
        return granted

    def renew(
        self, lease_id: str, worker: str, *, ttl_s: Optional[float] = None
    ) -> TaskLease:
        """Heartbeat: push the deadline out by ``ttl_s`` from now."""
        now = self.clock()
        expired: List[TaskLease] = []
        try:
            with self._lock:
                expired = self._expire_due_locked(now)
                lease = self._active_lease_locked(lease_id, worker)
                lease.deadline = now + self._ttl(ttl_s)
                lease.renewals += 1
                return lease
        finally:
            self._notify_expired(expired)

    def release(self, lease_id: str, worker: str) -> TaskLease:
        """Give an unfinished task back; it re-queues at the front."""
        now = self.clock()
        expired: List[TaskLease] = []
        try:
            with self._lock:
                expired = self._expire_due_locked(now)
                lease = self._active_lease_locked(lease_id, worker)
                lease.state = "released"
                self._requeue_locked(lease)
                return lease
        finally:
            self._notify_expired(expired)

    def complete(
        self, lease_id: str, worker: str
    ) -> Tuple[TaskLease, bool, bool]:
        """Accept a finished task.  Returns ``(lease, accepted, duplicate)``.

        First-wins: if the task is not yet done the completion is accepted
        even when this lease has expired (deterministic work is never
        thrown away).  If another worker already completed the task,
        ``accepted`` is False and ``duplicate`` is True.
        """
        now = self.clock()
        expired: List[TaskLease] = []
        try:
            with self._lock:
                expired = self._expire_due_locked(now)
                return self._complete_locked(lease_id, worker)
        finally:
            self._notify_expired(expired)

    def _complete_locked(
        self, lease_id: str, worker: str
    ) -> Tuple[TaskLease, bool, bool]:
        lease = self._leases.get(lease_id)
        if lease is None:
            raise LeaseError("unknown_lease", f"unknown lease {lease_id!r}")
        if lease.worker != worker:
            raise LeaseError(
                "not_owner",
                f"lease {lease_id!r} belongs to {lease.worker!r}, not {worker!r}",
            )
        entry = self._jobs.get(lease.job_id)
        if entry is None:  # job finalised/torn down under the worker
            raise LeaseError(
                "unknown_lease", f"lease {lease_id!r} has no registered job"
            )
        index = lease.task_index
        if index in entry.done:
            lease.state = "completed"
            return lease, False, True
        # Accept: pull the index out of whichever bucket holds it.
        # After an expiry it may be pending again, or re-leased to
        # another worker — pop the active slot regardless of holder,
        # so the superseded lease can only come back as a duplicate.
        if index in entry.active:
            del entry.active[index]
        else:
            try:
                entry.pending.remove(index)
            except ValueError:
                pass
        entry.done.add(index)
        lease.state = "completed"
        return lease, True, False

    # ------------------------------------------------------------------
    # Maintenance / introspection
    def get(self, lease_id: str) -> Optional[TaskLease]:
        with self._lock:
            return self._leases.get(lease_id)

    def reclaim_expired(self) -> List[TaskLease]:
        """Expire overdue leases, re-queue their tasks, return them."""
        with self._lock:
            expired = self._expire_due_locked(self.clock())
        self._notify_expired(expired)
        return expired

    def pending_count(self) -> int:
        with self._lock:
            return sum(len(entry.pending) for entry in self._jobs.values())

    def active_count(self) -> int:
        with self._lock:
            return sum(len(entry.active) for entry in self._jobs.values())

    def outstanding(self, job_id: str) -> int:
        """Tasks of ``job_id`` not yet done (pending + active)."""
        with self._lock:
            entry = self._jobs.get(job_id)
            if entry is None:
                return 0
            return len(entry.pending) + len(entry.active)

    def worker_active(self) -> Dict[str, int]:
        """Active lease count per worker (the utilisation gauge source)."""
        counts: Dict[str, int] = {}
        with self._lock:
            for entry in self._jobs.values():
                for lease_id in entry.active.values():
                    lease = self._leases[lease_id]
                    counts[lease.worker] = counts.get(lease.worker, 0) + 1
        return counts

    def _notify_expired(self, expired: List[TaskLease]) -> None:
        """Fire ``on_expire`` outside the lock (callbacks may re-enter)."""
        if expired and self.on_expire is not None:
            self.on_expire(list(expired))

    # ------------------------------------------------------------------
    # Internals (all assume self._lock is held)
    def _ttl(self, ttl_s: Optional[float]) -> float:
        if ttl_s is None:
            return self.default_ttl_s
        return max(0.1, float(ttl_s))

    def _active_lease_locked(self, lease_id: str, worker: str) -> TaskLease:
        lease = self._leases.get(lease_id)
        if lease is None:
            raise LeaseError("unknown_lease", f"unknown lease {lease_id!r}")
        if lease.worker != worker:
            raise LeaseError(
                "not_owner",
                f"lease {lease_id!r} belongs to {lease.worker!r}, not {worker!r}",
            )
        if lease.state != "active":
            raise LeaseError(
                "lease_expired", f"lease {lease_id!r} is {lease.state}"
            )
        return lease

    def _expire_due_locked(self, now: float) -> List[TaskLease]:
        expired: List[TaskLease] = []
        for lease in list(self._leases.values()):
            if lease.state != "active" or lease.deadline > now:
                continue
            lease.state = "expired"
            self._requeue_locked(lease)
            expired.append(lease)
        return expired

    def _requeue_locked(self, lease: TaskLease) -> None:
        entry = self._jobs.get(lease.job_id)
        if entry is None:
            return
        if entry.active.get(lease.task_index) == lease.lease_id:
            del entry.active[lease.task_index]
            if lease.task_index in entry.done:
                return  # a first-wins completion landed; never re-queue it
            # Front of the queue: a reclaimed task is the oldest work in
            # the system, and low indices unblock the in-order store flush.
            entry.pending.appendleft(lease.task_index)
