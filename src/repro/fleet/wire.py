"""JSON wire format for shipping :class:`TaskResult` values over HTTP.

The drainer executes a task locally and POSTs the outcome back to the
coordinator, which folds it into the job's result store and event feed.
Both directions validate strictly: a malformed completion must 400 at the
API boundary rather than corrupt a store that the report renderer treats
as append-only ground truth.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..runner.executor import TaskResult

__all__ = ["VALID_STATUSES", "result_from_wire", "result_to_wire"]

VALID_STATUSES = ("ok", "failed", "timeout", "skipped", "cancelled")


def result_to_wire(result: TaskResult) -> Dict[str, object]:
    """Flatten a task result into the JSON payload of ``/complete``."""
    return {
        "task_id": result.task_id,
        "fingerprint": result.fingerprint,
        "status": result.status,
        "wall_time_s": float(result.wall_time_s),
        "queue_wait_s": float(result.queue_wait_s),
        "record": result.record,
        "error": result.error,
        "traceback": result.traceback,
        "cache_events": dict(result.cache_events),
    }


def _require_str(payload: Mapping, key: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value:
        raise ValueError(f"result.{key} must be a non-empty string")
    return value


def _optional_str(payload: Mapping, key: str) -> Optional[str]:
    value = payload.get(key)
    if value is not None and not isinstance(value, str):
        raise ValueError(f"result.{key} must be a string or null")
    return value


def _float(payload: Mapping, key: str) -> float:
    value = payload.get(key, 0.0)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"result.{key} must be a number")
    return float(value)


def result_from_wire(payload: Mapping) -> TaskResult:
    """Parse and validate a ``/complete`` payload back into a TaskResult."""
    if not isinstance(payload, Mapping):
        raise ValueError("result must be a JSON object")
    status = _require_str(payload, "status")
    if status not in VALID_STATUSES:
        raise ValueError(
            f"result.status must be one of {VALID_STATUSES}, got {status!r}"
        )
    record = payload.get("record")
    if record is not None and not isinstance(record, dict):
        raise ValueError("result.record must be an object or null")
    cache_events = payload.get("cache_events", {})
    if not isinstance(cache_events, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in cache_events.items()
    ):
        raise ValueError("result.cache_events must map strings to strings")
    return TaskResult(
        task_id=_require_str(payload, "task_id"),
        fingerprint=_require_str(payload, "fingerprint"),
        status=status,
        wall_time_s=_float(payload, "wall_time_s"),
        queue_wait_s=_float(payload, "queue_wait_s"),
        record=record,
        error=_optional_str(payload, "error"),
        traceback=_optional_str(payload, "traceback"),
        cache_events=dict(cache_events),
    )
