"""Coordinator: drains the job queue through remote lease-holding workers.

Drop-in replacement for :class:`~repro.service.worker.JobWorker` when the
service runs with ``--fleet``: instead of executing tasks in-process, it
expands each claimed job, registers the unfinished task indices with a
:class:`~repro.fleet.leases.LeaseTable`, and lets ``repro work`` drainer
processes pull leases over HTTP.  Completions stream back through
:meth:`complete`, which folds each result into the job's store and event
feed exactly the way ``run_campaign`` would have:

* **resume** — task fingerprints with an ``ok`` record in the job's store
  are seeded as ``skipped`` results before anything is leased;
* **in-order store flush** — results arrive in completion order but are
  appended to the JSONL store in task order (buffered until contiguous),
  so ``render_report`` output stays byte-identical to a serial run;
* **exactly-once** — the lease table's first-wins acceptance plus a
  janitor thread that reclaims expired leases guarantee every task's
  result is recorded exactly once even when workers are SIGKILLed.

The coordinator holds no worker processes itself: ``job_slots`` concurrent
jobs only bounds how many jobs it exposes to the fleet at once.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..obs import MetricsRegistry, emit
from ..runner.cache import ArtifactCache, default_cache_dir
from ..runner.executor import TaskResult, append_result
from ..runner.store import ResultStore
from ..service.jobs import Job, JobQueue
from .leases import DEFAULT_LEASE_TTL_S, LeaseError, LeaseTable, TaskLease
from .wire import result_from_wire

__all__ = ["FleetCoordinator", "FleetConflict"]


class FleetConflict(Exception):
    """A completion whose payload contradicts the lease (HTTP 409)."""


@dataclass
class _FleetJob:
    """One claimed job's in-flight bookkeeping."""

    job: Job
    tasks: list  # expanded AttackTask list, index-aligned with the lease table
    fingerprints: List[str]
    results: Dict[int, TaskResult] = field(default_factory=dict)
    next_flush: int = 0  # first task index not yet appended to the store
    store: Optional[ResultStore] = None
    finished: bool = False


class FleetCoordinator:
    """Claims jobs and brokers their tasks to HTTP drainers via leases."""

    #: ``render_metrics`` reads ``worker.job_slots`` for the slots gauge;
    #: the coordinator executes nothing in-process, so it reports 0.
    job_slots = 0

    def __init__(
        self,
        queue: JobQueue,
        *,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        intra_workers: int = 1,
        max_active_jobs: int = 1,
        cache_dir=None,
        use_cache: bool = True,
        cache_max_bytes: Optional[int] = None,
        cache_max_age_s: Optional[float] = None,
        echo: Optional[Callable[[str], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
        on_job_finished: Optional[Callable[[Job], None]] = None,
    ):
        self.queue = queue
        #: Fired after the completion flush lands a job in a terminal
        #: status (the service hangs its warehouse ingest here).  Exceptions
        #: are swallowed: post-processing must never change a job's outcome.
        self.on_job_finished = on_job_finished
        self.metrics = metrics if metrics is not None else queue.metrics
        self.lease_ttl_s = max(0.1, float(lease_ttl_s))
        #: Intra-task worker share handed verbatim to every lease (the
        #: drainers are separate processes on possibly separate hosts, so
        #: there is no machine-wide budget to divide here).  The default of
        #: 1 keeps task fingerprints on the unpooled variant, preserving
        #: byte-identity with serial runs.
        self.intra_workers = max(1, int(intra_workers))
        self.max_active_jobs = max(1, int(max_active_jobs))
        self.cache_dir = cache_dir if cache_dir is not None else default_cache_dir()
        self.use_cache = use_cache
        self.cache_max_bytes = cache_max_bytes
        self.cache_max_age_s = cache_max_age_s
        self.echo = echo if echo is not None else (lambda message: None)
        # on_expire fires for *every* reclaim, including the lazy sweeps a
        # worker's claim/renew/complete triggers — without it the metric
        # and stream event would only cover janitor-observed expiries.
        self.leases = LeaseTable(
            default_ttl_s=self.lease_ttl_s,
            clock=clock,
            on_expire=self._on_leases_expired,
        )
        self._lock = threading.Lock()
        self._jobs: Dict[str, _FleetJob] = {}
        #: Workers ever seen, so utilisation gauges zero out when one leaves.
        self._seen_workers: set = set()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []

    # ------------------------------------------------------------------
    # Lifecycle (mirrors JobWorker.start/stop so CampaignService can swap)
    def start(self) -> None:
        self._threads = [t for t in self._threads if t.is_alive()]
        if self._threads:
            return
        self._stop.clear()
        for name, target in (
            ("repro-fleet-dispatch", self._dispatch_loop),
            ("repro-fleet-janitor", self._janitor_loop),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = [t for t in self._threads if t.is_alive()]

    def _log(self, message: str, *, job: Optional[Job] = None, **fields) -> None:
        emit(
            self.echo,
            message,
            component="fleet",
            job_id=job.job_id if job is not None else None,
            **fields,
        )

    # ------------------------------------------------------------------
    # Dispatch: claim jobs and expose their tasks to the fleet
    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                slots_free = len(self._jobs) < self.max_active_jobs
            if not slots_free:
                self._stop.wait(0.2)
                continue
            job = self.queue.claim(timeout=0.2)
            if job is not None:
                try:
                    self._open_job(job)
                except Exception as exc:  # noqa: BLE001 - job isolation
                    self.queue.finish(
                        job, "failed", error=f"{type(exc).__name__}: {exc}"
                    )

    def _open_job(self, job: Job) -> None:
        self._log(
            f"job {job.job_id} ({job.spec.name}): offering to fleet",
            job=job,
            name=job.spec.name,
        )
        try:
            tasks = job.spec.expand()
        except Exception as exc:  # noqa: BLE001 - job isolation is the contract
            self.queue.finish(job, "failed", error=f"{type(exc).__name__}: {exc}")
            return
        if not tasks:
            self.queue.finish(job, "failed", error="campaign expanded to zero tasks")
            return
        self.queue.set_total(job, len(tasks))
        pooled = self.intra_workers > 1
        fingerprints = [task.fingerprint(pooled=pooled) for task in tasks]
        store = ResultStore(job.store_path)
        fleet_job = _FleetJob(
            job=job, tasks=tasks, fingerprints=fingerprints, store=store
        )
        # Resume: anything with an ok record in the job's own store was
        # finished by a previous life of this service — report it skipped,
        # exactly as run_campaign(resume=True) would.
        done_fingerprints = {
            fingerprint
            for fingerprint, record in store.latest().items()
            if record.get("status") == "ok"
        }
        pending: List[Tuple[int, str]] = []
        skipped: List[Tuple[int, TaskResult]] = []
        for index, (task, fingerprint) in enumerate(zip(tasks, fingerprints)):
            if fingerprint in done_fingerprints:
                skipped.append(
                    (
                        index,
                        TaskResult(
                            task_id=task.task_id,
                            fingerprint=fingerprint,
                            status="skipped",
                        ),
                    )
                )
            else:
                pending.append((index, fingerprint))
        with self._lock:
            self._jobs[job.job_id] = fleet_job
        # Register claimable work before seeding skips: _record may
        # finalize (all-skipped job), and finalize unregisters.
        self.leases.register(job.job_id, pending)
        for index, result in skipped:
            self._record(fleet_job, index, result)
        if pending:
            self._log(
                f"job {job.job_id}: {len(pending)} task(s) claimable, "
                f"{len(skipped)} already complete",
                job=job,
            )

    # ------------------------------------------------------------------
    # Janitor: expiry reclaim, cancellation sweep
    def _janitor_loop(self) -> None:
        interval = max(0.05, min(1.0, self.lease_ttl_s / 4.0))
        while not self._stop.is_set():
            try:
                self._sweep()
            except Exception as exc:  # noqa: BLE001 - keep the janitor alive
                self._log(f"janitor sweep failed: {type(exc).__name__}: {exc}")
            self._stop.wait(interval)

    def _on_leases_expired(self, expired: List[TaskLease]) -> None:
        """LeaseTable ``on_expire`` hook: account for every reclaim."""
        for lease in expired:
            self.metrics.inc("repro_fleet_leases_total", event="reclaimed")
            with self._lock:
                fleet_job = self._jobs.get(lease.job_id)
            if fleet_job is not None:
                self.queue.emit_event(
                    fleet_job.job,
                    "lease_reclaimed",
                    index=lease.task_index,
                    worker=lease.worker,
                    renewals=lease.renewals,
                )
            self._log(
                f"lease on task {lease.task_index} of job {lease.job_id} "
                f"expired (worker {lease.worker}); task re-queued",
            )

    def _sweep(self) -> None:
        self.leases.reclaim_expired()  # accounting happens in on_expire
        with self._lock:
            cancelling = [
                fj for fj in self._jobs.values() if fj.job.cancel_event.is_set()
            ]
        for fleet_job in cancelling:
            for index in self.leases.cancel_pending(fleet_job.job.job_id):
                task = fleet_job.tasks[index]
                self._record(
                    fleet_job,
                    index,
                    TaskResult(
                        task_id=task.task_id,
                        fingerprint=fleet_job.fingerprints[index],
                        status="cancelled",
                        error="campaign cancelled before the task started",
                    ),
                )

    # ------------------------------------------------------------------
    # HTTP-facing operations (called by the API layer)
    def claim_leases(
        self, worker: str, *, limit: int = 1, ttl_s: Optional[float] = None
    ) -> List[Dict[str, object]]:
        """Lease up to ``limit`` tasks to ``worker``; returns wire payloads."""
        if not worker:
            raise ValueError("worker name must be non-empty")
        ttl = self.lease_ttl_s if ttl_s is None else max(0.1, float(ttl_s))
        granted = self.leases.claim(worker, limit=limit, ttl_s=ttl)
        self._seen_workers.add(worker)
        payloads: List[Dict[str, object]] = []
        for lease in granted:
            self.metrics.inc("repro_fleet_leases_total", event="granted")
            with self._lock:
                fleet_job = self._jobs.get(lease.job_id)
            if fleet_job is None:  # job torn down between claim and here
                continue
            self.queue.emit_event(
                fleet_job.job, "lease_granted", index=lease.task_index, worker=worker
            )
            payload = lease.to_json_dict()
            payload.update(
                ttl_s=ttl,
                intra_workers=self.intra_workers,
                job_submitted_at=fleet_job.job.submitted_at,
            )
            payloads.append(payload)
        return payloads

    def heartbeat(
        self, lease_id: str, worker: str, *, ttl_s: Optional[float] = None
    ) -> Dict[str, object]:
        lease = self.leases.renew(lease_id, worker, ttl_s=ttl_s)
        self.metrics.inc("repro_fleet_leases_total", event="renewed")
        return lease.to_json_dict()

    def release(self, lease_id: str, worker: str) -> Dict[str, object]:
        lease = self.leases.release(lease_id, worker)
        self.metrics.inc("repro_fleet_leases_total", event="released")
        return lease.to_json_dict()

    def complete(
        self, lease_id: str, worker: str, payload: Dict[str, object]
    ) -> Dict[str, object]:
        """Accept a drainer's finished task.  Raises on contradictions.

        ``ValueError`` for malformed payloads (400), :class:`FleetConflict`
        when the result's fingerprint does not match the leased task (409 —
        the lease is released so the task re-runs), :class:`LeaseError`
        for unknown/foreign leases.
        """
        result = result_from_wire(payload)
        lease = self.leases.get(lease_id)
        if lease is None:
            raise LeaseError("unknown_lease", f"unknown lease {lease_id!r}")
        with self._lock:
            fleet_job = self._jobs.get(lease.job_id)
        if fleet_job is None:
            raise LeaseError(
                "unknown_lease", f"lease {lease_id!r} has no active job"
            )
        expected = fleet_job.fingerprints[lease.task_index]
        if result.fingerprint != expected:
            try:
                self.leases.release(lease_id, worker)
            except LeaseError:
                pass  # already expired/terminal; the janitor re-queues it
            raise FleetConflict(
                f"result fingerprint {result.fingerprint[:16]}... does not match "
                f"task {lease.task_index} (expected {expected[:16]}...)"
            )
        lease, accepted, duplicate = self.leases.complete(lease_id, worker)
        if accepted:
            self.metrics.inc("repro_fleet_leases_total", event="completed")
            self._record(fleet_job, lease.task_index, result)
        else:
            self.metrics.inc("repro_fleet_leases_total", event="duplicate")
        return {
            "accepted": accepted,
            "duplicate": duplicate,
            "lease": lease.to_json_dict(),
        }

    def job_tasks_payload(self, job_id: str) -> Optional[Dict[str, object]]:
        """The spec payload drainers expand to recover task objects."""
        job = self.queue.get(job_id)
        if job is None:
            return None
        return {
            "job_id": job.job_id,
            "spec": job.spec.to_json_dict(),
            "intra_workers": self.intra_workers,
        }

    # ------------------------------------------------------------------
    # Result recording (in-order flush + finalize)
    def _record(self, fleet_job: _FleetJob, index: int, result: TaskResult) -> None:
        pooled = self.intra_workers > 1
        with self._lock:
            if fleet_job.finished or index in fleet_job.results:
                return
            fleet_job.results[index] = result
            # Flush the contiguous prefix to the store in task order so the
            # JSONL — and therefore the rendered report — matches what a
            # serial single-worker run would have written.  Skipped tasks
            # already have their record from the previous run.
            while fleet_job.next_flush in fleet_job.results:
                flushing = fleet_job.results[fleet_job.next_flush]
                if flushing.status != "skipped":
                    append_result(
                        fleet_job.store,
                        fleet_job.tasks[fleet_job.next_flush],
                        flushing,
                        pooled=pooled,
                    )
                fleet_job.next_flush += 1
            done = len(fleet_job.results)
            total = len(fleet_job.tasks)
        self.queue.record_progress(fleet_job.job, result, index=index, total=total)
        self.metrics.inc("repro_fleet_tasks_total", status=result.status)
        if done >= total:
            self._finalize(fleet_job)

    def _finalize(self, fleet_job: _FleetJob) -> None:
        with self._lock:
            if fleet_job.finished:
                return
            fleet_job.finished = True
            results = [fleet_job.results[i] for i in sorted(fleet_job.results)]
            del self._jobs[fleet_job.job.job_id]
        self.leases.unregister(fleet_job.job.job_id)
        job = fleet_job.job
        cancelled = [r for r in results if r.status == "cancelled"]
        failed = [r for r in results if not r.ok and r.status != "cancelled"]
        if cancelled:
            self.queue.finish(
                job,
                "cancelled",
                error=f"cancelled with {len(cancelled)} task(s) unfinished",
            )
        elif failed:
            self.queue.finish(
                job,
                "failed",
                error=f"{len(failed)} of {len(results)} task(s) failed: "
                + "; ".join(f"{r.task_id}: {r.error}" for r in failed[:3]),
            )
        else:
            self.queue.finish(job, "done")
        self._log(
            f"job {job.job_id} ({job.spec.name}): {job.status}",
            job=job,
            status=job.status,
        )
        if self.on_job_finished is not None:
            try:
                self.on_job_finished(job)
            except Exception as exc:  # noqa: BLE001 - never sink the flush
                self._log(
                    f"job {job.job_id}: post-finish hook failed: {exc}",
                    job=job,
                    error=str(exc),
                )
        self._gc_between_jobs()

    def _gc_between_jobs(self) -> None:
        if self.cache_max_bytes is None and self.cache_max_age_s is None:
            return
        if not self.use_cache:
            return
        cache = ArtifactCache(self.cache_dir)
        evicted = cache.gc(
            max_bytes=self.cache_max_bytes, max_age_s=self.cache_max_age_s
        )
        if evicted:
            freed = sum(entry.size_bytes for entry in evicted)
            self._log(
                f"cache gc: evicted {len(evicted)} artifact(s), {freed} bytes",
                evicted=len(evicted),
                freed_bytes=freed,
            )

    # ------------------------------------------------------------------
    # Observability
    def fleet_gauges(self) -> Dict[str, object]:
        """Gauge snapshot for ``/metricsz``: queue depth and utilisation."""
        active = self.leases.worker_active()
        return {
            "tasks_pending": self.leases.pending_count(),
            "leases_active": self.leases.active_count(),
            "workers_seen": len(self._seen_workers),
            "worker_active": {
                name: active.get(name, 0) for name in sorted(self._seen_workers)
            },
        }
