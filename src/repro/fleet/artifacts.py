"""Write-through artifact cache backed by the service's object store.

A fleet drainer keeps the ordinary on-disk :class:`ArtifactCache` as its
first tier and falls back to the coordinator's HTTP object store
(``GET/PUT /v1/artifacts/<kind>/<key>``) on a local miss: fetched bytes
are digest-verified, unpickled, and written through to the local tier so
the next task on this host hits locally.  Freshly built artifacts are
pushed back (best-effort) so other drainers — and the coordinator's own
``JobWorker``, if any — skip the work entirely.

Remote failures never fail a task: a fetch error is a miss (the artifact
regenerates locally, determinism makes that safe) and a push error only
costs other workers a cache hit.  Per-direction transfer counters feed
the ``repro_fleet_artifact_transfers_total`` metric.
"""

from __future__ import annotations

import pickle
from typing import Dict, Optional
from urllib.error import URLError

from ..obs import get_registry
from ..runner.cache import _MISSING, ArtifactCache, atomic_write
from ..service.client import ServiceError

__all__ = ["FleetArtifactCache"]


class FleetArtifactCache(ArtifactCache):
    """Two-tier cache: local disk in front of the service object store."""

    def __init__(
        self,
        root=None,
        *,
        remote=None,
        enabled: bool = True,
        push: bool = True,
    ):
        super().__init__(root, enabled=enabled)
        #: A :class:`~repro.service.client.ServiceClient` (or anything with
        #: ``get_artifact``/``put_artifact``); None = purely local.
        self.remote = remote
        self.push = push
        #: Lifetime transfer outcomes, mirrored into the metrics registry.
        self.transfers: Dict[str, int] = {
            "fetch_hit": 0,
            "fetch_miss": 0,
            "fetch_error": 0,
            "push_ok": 0,
            "push_error": 0,
        }

    def _transfer(self, direction: str, outcome: str) -> None:
        self.transfers[f"{direction}_{outcome}"] += 1
        get_registry().inc(
            "repro_fleet_artifact_transfers_total",
            direction=direction,
            outcome=outcome,
        )

    # ------------------------------------------------------------------
    def _load(self, kind: str, key: str) -> object:
        value = super()._load(kind, key)
        if value is not _MISSING or self.remote is None:
            return value
        try:
            data = self.remote.get_artifact(kind, key)
        except (ServiceError, URLError, OSError):
            self._transfer("fetch", "error")
            return _MISSING
        if data is None:
            self._transfer("fetch", "miss")
            return _MISSING
        try:
            value = pickle.loads(data)
        except Exception:  # noqa: BLE001 - corrupt remote bytes are a miss
            self._transfer("fetch", "error")
            return _MISSING
        self._transfer("fetch", "hit")
        # Write through: next task on this host hits the local tier.  The
        # raw fetched bytes land verbatim so local and remote stay
        # byte-identical for a given key.
        path = self.path_for(kind, key)
        if self.enabled and path is not None:
            atomic_write(path, lambda handle: handle.write(data))
        return value

    def put(self, kind: str, key: str, value: object) -> Optional[object]:
        path = super().put(kind, key, value)
        if self.remote is not None and self.push:
            try:
                data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
                self.remote.put_artifact(kind, key, data)
                self._transfer("push", "ok")
            except (ServiceError, URLError, OSError, pickle.PicklingError):
                self._transfer("push", "error")
        return path
