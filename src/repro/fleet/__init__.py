"""Distributed worker fleet: task leases, drainers, and the object store.

``repro serve --fleet`` swaps the in-process :class:`JobWorker` for a
:class:`FleetCoordinator` that exposes each job's tasks as time-bounded
leases over HTTP; any number of ``repro work`` drainer processes — on the
same host or others — claim, execute and complete them.  See
:mod:`repro.fleet.leases` for the exactly-once bookkeeping and
:mod:`repro.fleet.artifacts` for the write-through artifact tier.

Only :mod:`.leases` is imported eagerly: the heavier modules pull in the
service/runner stacks (whose API layer itself imports ``leases``), so
they load lazily via PEP 562 to keep the import graph acyclic.
"""

from importlib import import_module

from .leases import DEFAULT_LEASE_TTL_S, LeaseError, LeaseTable, TaskLease

__all__ = [
    "DEFAULT_LEASE_TTL_S",
    "FleetArtifactCache",
    "FleetConflict",
    "FleetCoordinator",
    "FleetWorker",
    "LeaseError",
    "LeaseTable",
    "TaskLease",
    "default_worker_name",
]

_LAZY = {
    "FleetArtifactCache": ".artifacts",
    "FleetConflict": ".coordinator",
    "FleetCoordinator": ".coordinator",
    "FleetWorker": ".worker",
    "default_worker_name": ".worker",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(import_module(module, __name__), name)
