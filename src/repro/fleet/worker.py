"""``repro work``: a standalone drainer process for the fleet.

The worker is a thin loop over the service HTTP API: lease a batch of
tasks, execute each with the ordinary :func:`execute_task` machinery (so
caching, telemetry and determinism behave exactly as in-process runs),
heartbeat while executing, and POST the result back.  Transient HTTP
failures retry with capped exponential backoff (both in the
:class:`ServiceClient` and around the lease loop); SIGTERM/SIGINT request
a graceful drain — the in-flight task finishes and unstarted leases are
released so another drainer picks them up immediately.

Artifacts flow through a :class:`FleetArtifactCache`: local disk first,
the coordinator's object store on a miss, freshly built artifacts pushed
back for the rest of the fleet.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from typing import Callable, Dict, List, Optional
from urllib.error import URLError

from ..obs import emit
from ..runner.cache import default_cache_dir
from ..runner.campaign import CampaignSpec
from ..runner.executor import execute_task
from ..service.client import ServiceClient, ServiceError
from ..service.status import ERR_LEASE_EXPIRED
from .artifacts import FleetArtifactCache
from .leases import DEFAULT_LEASE_TTL_S
from .wire import result_to_wire

__all__ = ["FleetWorker", "default_worker_name"]

#: Client-level retries for every fleet HTTP call (lease/heartbeat/
#: complete/artifacts): enough to ride out a restart, capped backoff.
CLIENT_RETRIES = 4

#: Ceiling for the lease-loop backoff after repeated transport failures.
MAX_LOOP_BACKOFF_S = 30.0


def default_worker_name() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class _Heartbeat(threading.Thread):
    """Renews one lease at ttl/3 until stopped or the lease is lost."""

    def __init__(self, client: ServiceClient, lease_id: str, worker: str, ttl_s: float):
        super().__init__(name=f"repro-heartbeat-{lease_id[:8]}", daemon=True)
        self.client = client
        self.lease_id = lease_id
        self.worker = worker
        self.interval = max(0.05, float(ttl_s) / 3.0)
        self.lost = False
        # NB: not "_stop" — Thread.join() calls its own private _stop().
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            try:
                self.client.heartbeat(self.lease_id, self.worker)
            except ServiceError as exc:
                if exc.code == ERR_LEASE_EXPIRED or exc.status in (404, 410):
                    # Reassigned or reclaimed: keep executing — completion
                    # is first-wins, so the work may still land — but stop
                    # renewing a lease the coordinator no longer honours.
                    self.lost = True
                    return
            except (URLError, OSError):
                pass  # transient; try again next tick

    def stop(self) -> None:
        self._halt.set()


class FleetWorker:
    """One drainer process: lease → execute → complete, until stopped."""

    def __init__(
        self,
        url: str,
        *,
        token: Optional[str] = None,
        name: Optional[str] = None,
        cache_dir=None,
        use_cache: bool = True,
        batch: int = 1,
        poll_s: float = 0.5,
        lease_ttl_s: Optional[float] = None,
        max_idle_s: Optional[float] = None,
        echo: Optional[Callable[[str], None]] = None,
        client: Optional[ServiceClient] = None,
    ):
        self.client = (
            client
            if client is not None
            else ServiceClient(url, token=token, retries=CLIENT_RETRIES)
        )
        self.name = name or default_worker_name()
        if cache_dir is None and use_cache:
            cache_dir = default_cache_dir()
        self.cache_dir = cache_dir
        self.use_cache = use_cache
        self.batch = max(1, int(batch))
        self.poll_s = max(0.05, float(poll_s))
        self.lease_ttl_s = lease_ttl_s
        self.max_idle_s = max_idle_s
        self.echo = echo if echo is not None else (lambda message: None)
        self._stop = threading.Event()
        #: job_id -> expanded task list (bounded; specs are tiny but task
        #: lists can hold parsed netlists once executed — keep a few jobs).
        self._tasks: Dict[str, list] = {}
        self.tasks_executed = 0

    def _log(self, message: str, **fields) -> None:
        emit(self.echo, message, component="fleet-worker", worker=self.name, **fields)

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request a graceful drain (signal-handler and test safe)."""
        self._stop.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → finish the current task, release the rest."""

        def _handler(signum, frame):  # noqa: ARG001 - signal signature
            self._log(f"received signal {signum}; draining")
            self.stop()

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                signal.signal(signum, _handler)
            except ValueError:  # not the main thread (embedded/test use)
                return

    # ------------------------------------------------------------------
    def _cache_for_task(self) -> FleetArtifactCache:
        if not self.use_cache:
            return FleetArtifactCache(None, remote=None)
        return FleetArtifactCache(self.cache_dir, remote=self.client)

    def _tasks_for(self, job_id: str) -> Optional[list]:
        tasks = self._tasks.get(job_id)
        if tasks is not None:
            return tasks
        try:
            payload = self.client.job_spec(job_id)
        except ServiceError as exc:
            self._log(f"spec fetch for job {job_id} failed: {exc}", job_id=job_id)
            return None
        spec = CampaignSpec.from_json_dict(payload["spec"])
        tasks = spec.expand()
        if len(self._tasks) >= 8:  # bound memory across many tiny jobs
            self._tasks.clear()
        self._tasks[job_id] = tasks
        return tasks

    def _release_quietly(self, lease: Dict[str, object]) -> None:
        try:
            self.client.release_lease(str(lease["lease_id"]), self.name)
        except (ServiceError, URLError, OSError):
            pass  # expiry will re-queue it

    # ------------------------------------------------------------------
    def _run_lease(self, lease: Dict[str, object]) -> bool:
        """Execute one leased task and report it.  Returns True if executed."""
        job_id = str(lease["job_id"])
        index = int(lease["task_index"])
        lease_id = str(lease["lease_id"])
        tasks = self._tasks_for(job_id)
        if tasks is None or not 0 <= index < len(tasks):
            self._release_quietly(lease)
            return False
        task = tasks[index]
        ttl = float(lease.get("ttl_s") or DEFAULT_LEASE_TTL_S)
        heartbeat = _Heartbeat(self.client, lease_id, self.name, ttl)
        heartbeat.start()
        try:
            result = execute_task(
                task,
                cache_dir=self.cache_dir,
                intra_workers=int(lease.get("intra_workers") or 1),
                submitted_at=lease.get("job_submitted_at"),
                cache=self._cache_for_task(),
            )
        finally:
            heartbeat.stop()
            heartbeat.join(timeout=5.0)
        self.tasks_executed += 1
        self._log(
            f"task {task.task_id} ({job_id}[{index}]): {result.status} "
            f"in {result.wall_time_s:.2f}s",
            job_id=job_id,
            status=result.status,
        )
        try:
            outcome = self.client.complete_task(
                lease_id, self.name, result_to_wire(result)
            )
            if outcome.get("duplicate"):
                self._log(
                    f"task {task.task_id}: already completed by another worker",
                    job_id=job_id,
                )
        except ServiceError as exc:
            # 410 = the job was finalised under us; 409 = fingerprint
            # mismatch (version skew between worker and coordinator).
            # Either way the coordinator owns recovery — log and move on.
            self._log(f"complete for {task.task_id} rejected: {exc}", job_id=job_id)
        except (URLError, OSError) as exc:
            self._log(
                f"complete for {task.task_id} failed after retries: {exc}; "
                "lease will expire and the task will re-run",
                job_id=job_id,
            )
        return True

    def run(self) -> int:
        """Drain until stopped (or idle past ``max_idle_s``); returns the
        number of tasks this worker executed."""
        self._log(
            f"worker {self.name} draining {self.client.url} "
            f"(batch={self.batch})"
        )
        backoff = self.poll_s
        idle_since: Optional[float] = None
        while not self._stop.is_set():
            try:
                leases: List[Dict[str, object]] = self.client.lease_tasks(
                    self.name, limit=self.batch, ttl_s=self.lease_ttl_s
                )
            except (ServiceError, URLError, OSError) as exc:
                self._log(f"lease request failed: {exc}; backing off {backoff:.1f}s")
                self._stop.wait(backoff)
                backoff = min(backoff * 2.0, MAX_LOOP_BACKOFF_S)
                continue
            backoff = self.poll_s
            if not leases:
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                if self.max_idle_s is not None and now - idle_since >= self.max_idle_s:
                    self._log(f"idle for {self.max_idle_s:.1f}s; exiting")
                    break
                self._stop.wait(self.poll_s)
                continue
            idle_since = None
            for lease in leases:
                if self._stop.is_set():
                    self._release_quietly(lease)
                    continue
                self._run_lease(lease)
        self._log(f"worker {self.name} drained; {self.tasks_executed} task(s) executed")
        return self.tasks_executed
