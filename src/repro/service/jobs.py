"""Job lifecycle and the persistent queue behind the campaign service.

A *job* is one submitted :class:`~repro.runner.campaign.CampaignSpec` plus
its execution state.  Jobs are identified by the campaign fingerprint, so a
duplicate submission dedupes onto the existing job instead of re-running the
same grid.  Every state transition is persisted to
``<state_dir>/jobs/<job_id>.json`` (atomic write), and each job owns a JSONL
:class:`~repro.runner.store.ResultStore` at
``<state_dir>/stores/<job_id>.jsonl`` — together these make the service
restartable: :meth:`JobQueue.recover` re-enqueues jobs that were queued or
running when the process died, and the worker re-runs them with
``run_campaign(..., resume=True)`` so finished tasks are skipped, not
repeated.

Status machine::

    queued -> running -> done        every task ok (or skipped on resume)
                      -> failed      >= 1 task failed/timed out, or the spec
                                     could not even expand
                      -> cancelled   cancel requested and honoured mid-run
    queued -> cancelled              cancel before a worker claimed the job

``failed`` and ``cancelled`` are re-submittable: submitting the same spec
again re-enqueues the existing job, and resume picks up from its store.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple

from ..runner.cache import atomic_write
from ..runner.campaign import CampaignSpec
from .status import ACTIVE_STATUSES, TERMINAL_STATUSES

__all__ = [
    "ACTIVE_STATUSES",
    "Job",
    "JobQueue",
    "TERMINAL_STATUSES",
]

#: Hex digits of the campaign fingerprint used as the job id.
JOB_ID_LENGTH = 16


@dataclass
class Job:
    """One submitted campaign and its execution state."""

    job_id: str
    spec: CampaignSpec
    store_path: Path
    status: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    tasks_total: int = 0
    tasks_done: int = 0
    tasks_ok: int = 0
    tasks_skipped: int = 0
    tasks_failed: int = 0
    error: Optional[str] = None
    #: Status transitions in order, e.g. ``["queued", "running", "done"]``.
    history: List[str] = field(default_factory=lambda: ["queued"])
    cancel_event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe view of the job served by the status endpoints."""
        return {
            "job_id": self.job_id,
            "name": self.spec.name,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cancel_requested": self.cancel_event.is_set(),
            "error": self.error,
            "history": list(self.history),
            "progress": {
                "tasks_total": self.tasks_total,
                "tasks_done": self.tasks_done,
                "tasks_ok": self.tasks_ok,
                "tasks_skipped": self.tasks_skipped,
                "tasks_failed": self.tasks_failed,
            },
        }


class JobQueue:
    """Thread-safe FIFO of jobs with on-disk persistence.

    The HTTP handlers (submit/status/cancel) and the worker threads
    (claim/progress/finish) share one queue; every method takes the internal
    lock, so callers never need their own synchronisation.
    """

    def __init__(self, state_dir: os.PathLike):
        self.state_dir = Path(state_dir)
        self.jobs_dir = self.state_dir / "jobs"
        self.stores_dir = self.state_dir / "stores"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.stores_dir.mkdir(parents=True, exist_ok=True)
        self._cond = threading.Condition()
        self._jobs: Dict[str, Job] = {}
        self._pending: Deque[str] = deque()

    # ------------------------------------------------------------------
    def submit(self, spec: CampaignSpec) -> Tuple[Job, bool]:
        """Enqueue a campaign; returns ``(job, created)``.

        The job id is the campaign fingerprint, so submitting an identical
        spec while a job is queued, running or done returns the existing job
        (``created=False``) instead of scheduling duplicate work.  A failed
        or cancelled job is *re-enqueued* by the duplicate submission — its
        store is kept, so the re-run resumes past every task that already
        finished.
        """
        tasks = spec.validate()
        job_id = spec.fingerprint()[:JOB_ID_LENGTH]
        with self._cond:
            existing = self._jobs.get(job_id)
            if existing is not None:
                if existing.status in ("queued", "running", "done"):
                    return existing, False
                # failed / cancelled: re-enqueue for a resumed re-run.
                existing.status = "queued"
                existing.history.append("queued")
                existing.error = None
                existing.started_at = None
                existing.finished_at = None
                existing.tasks_total = len(tasks)
                existing.tasks_done = 0
                existing.tasks_ok = 0
                existing.tasks_skipped = 0
                existing.tasks_failed = 0
                existing.cancel_event = threading.Event()
                self._pending.append(job_id)
                self._persist(existing)
                self._cond.notify()
                return existing, False
            job = Job(
                job_id=job_id,
                spec=spec,
                store_path=self.stores_dir / f"{job_id}.jsonl",
                tasks_total=len(tasks),
            )
            self._jobs[job_id] = job
            self._pending.append(job_id)
            self._persist(job)
            self._cond.notify()
            return job, True

    def claim(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the next queued job and mark it running (None on timeout)."""
        with self._cond:
            if not self._pending:
                self._cond.wait(timeout)
            if not self._pending:
                return None
            job = self._jobs[self._pending.popleft()]
            job.status = "running"
            job.history.append("running")
            job.started_at = time.time()
            self._persist(job)
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._cond:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """Every known job, oldest submission first."""
        with self._cond:
            return sorted(self._jobs.values(), key=lambda j: (j.submitted_at, j.job_id))

    def counts(self) -> Dict[str, int]:
        """``{status: job count}`` over every known job."""
        with self._cond:
            counts: Dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.status] = counts.get(job.status, 0) + 1
            return counts

    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cancellation; returns the job (None if unknown).

        A queued job is cancelled immediately (it never reaches a worker); a
        running job gets its cancel event set and transitions once the worker
        honours it.  Terminal jobs are left untouched.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.status == "queued":
                try:
                    self._pending.remove(job_id)
                except ValueError:
                    pass
                job.cancel_event.set()
                self._finish_locked(job, "cancelled", error="cancelled while queued")
            elif job.status == "running":
                job.cancel_event.set()
                self._persist(job)
            return job

    def record_progress(self, job: Job, result) -> None:
        """Fold one :class:`~repro.runner.executor.TaskResult` into the job."""
        with self._cond:
            if result.status == "skipped":
                job.tasks_done += 1
                job.tasks_skipped += 1
                job.tasks_ok += 1
            elif result.status == "ok":
                job.tasks_done += 1
                job.tasks_ok += 1
            elif result.status != "cancelled":
                # failed / timeout still *completed* (they have a verdict);
                # cancelled tasks never ran and stay out of the done count.
                job.tasks_done += 1
                job.tasks_failed += 1
            self._persist(job)

    def set_total(self, job: Job, total: int) -> None:
        with self._cond:
            job.tasks_total = int(total)
            self._persist(job)

    def finish(self, job: Job, status: str, error: Optional[str] = None) -> None:
        with self._cond:
            self._finish_locked(job, status, error=error)

    def _finish_locked(self, job: Job, status: str, error: Optional[str]) -> None:
        job.status = status
        job.history.append(status)
        job.finished_at = time.time()
        job.error = error
        self._persist(job)

    # ------------------------------------------------------------------
    def recover(self) -> List[str]:
        """Load persisted jobs; re-enqueue the ones that never finished.

        Called once at service start-up.  Returns the ids that were
        re-enqueued (they resume from their stores, skipping finished tasks).
        Unreadable job files are skipped rather than sinking the service.
        """
        requeued: List[str] = []
        entries = []
        for path in sorted(self.jobs_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                spec = CampaignSpec.from_json_dict(payload["spec"])
                job_id = str(payload["job_id"])
                status = str(payload["status"])
            except Exception:  # noqa: BLE001 - a corrupt file must not sink startup
                continue
            entries.append((job_id, status, payload, spec))
        entries.sort(key=lambda item: (item[2].get("submitted_at", 0.0), item[0]))
        with self._cond:
            for job_id, status, payload, spec in entries:
                interrupted = status in ACTIVE_STATUSES
                # A cancel requested but not yet honoured when the service
                # died must survive the restart: honour it now instead of
                # resurrecting the job.
                cancelled_in_flight = interrupted and bool(
                    payload.get("cancel_requested")
                )
                job = Job(
                    job_id=job_id,
                    spec=spec,
                    store_path=self.stores_dir / f"{job_id}.jsonl",
                    status="queued" if interrupted else status,
                    submitted_at=float(payload.get("submitted_at", time.time())),
                    started_at=payload.get("started_at"),
                    finished_at=payload.get("finished_at"),
                    tasks_total=int(payload.get("tasks_total", 0)),
                    tasks_done=int(payload.get("tasks_done", 0)),
                    tasks_ok=int(payload.get("tasks_ok", 0)),
                    tasks_skipped=int(payload.get("tasks_skipped", 0)),
                    tasks_failed=int(payload.get("tasks_failed", 0)),
                    error=payload.get("error"),
                    history=[str(s) for s in payload.get("history", ["queued"])],
                )
                if cancelled_in_flight:
                    job.cancel_event.set()
                    self._finish_locked(
                        job, "cancelled", error="cancelled before service restart"
                    )
                elif interrupted:
                    # Counters restart from zero: the resumed run re-reports
                    # every task (finished ones come back as "skipped").
                    job.started_at = None
                    job.finished_at = None
                    job.tasks_done = 0
                    job.tasks_ok = 0
                    job.tasks_skipped = 0
                    job.tasks_failed = 0
                    job.history.append("queued")
                    self._pending.append(job_id)
                    requeued.append(job_id)
                self._jobs[job_id] = job
                self._persist(job)
            if requeued:
                self._cond.notify_all()
        return requeued

    def _persist(self, job: Job) -> None:
        # The snapshot is persisted nearly as-is: cancel_requested must
        # survive a restart so an unhonoured cancel is not resurrected.
        payload = dict(job.snapshot())
        payload.update(payload.pop("progress"))  # flatten counters
        payload["spec"] = job.spec.to_json_dict()
        atomic_write(
            self.jobs_dir / f"{job.job_id}.json",
            lambda handle: handle.write(
                json.dumps(payload, sort_keys=True).encode("utf-8")
            ),
        )
