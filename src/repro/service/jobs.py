"""Job lifecycle and the persistent queue behind the campaign service.

A *job* is one submitted :class:`~repro.runner.campaign.CampaignSpec` plus
its execution state.  Jobs are identified by the campaign fingerprint, so a
duplicate submission dedupes onto the existing job instead of re-running the
same grid.  Every state transition is persisted to
``<state_dir>/jobs/<job_id>.json`` (atomic write), and each job owns a JSONL
:class:`~repro.runner.store.ResultStore` at
``<state_dir>/stores/<job_id>.jsonl`` — together these make the service
restartable: :meth:`JobQueue.recover` re-enqueues jobs that were queued or
running when the process died, and the worker re-runs them with
``run_campaign(..., resume=True)`` so finished tasks are skipped, not
repeated.

Scheduling is a **stable priority queue**: :meth:`JobQueue.claim` pops the
highest :attr:`CampaignSpec.priority` first and, within one priority class,
the oldest submission (FIFO by a persisted per-queue sequence number, so the
order survives restarts even when two jobs were submitted within the same
clock tick).  Priority is scheduling metadata only — it is excluded from the
campaign fingerprint, so resubmitting a grid at a different priority dedupes
onto the existing job.

Every transition and per-task completion is also appended to the job's
in-memory **event feed**, which the ``/v1/jobs/<id>/stream`` long-poll
endpoint serves: callers block in :meth:`JobQueue.wait_events` until the
feed grows past their cursor (or the job goes terminal).  Events do not
survive a restart — a recovered job starts a fresh feed; its persisted
counters and store records carry the durable truth.

Status machine::

    queued -> running -> done        every task ok (or skipped on resume)
                      -> failed      >= 1 task failed/timed out, or the spec
                                     could not even expand
                      -> cancelled   cancel requested and honoured mid-run
    queued -> cancelled              cancel before a worker claimed the job

``failed`` and ``cancelled`` are re-submittable: submitting the same spec
again re-enqueues the existing job (at the back of its priority class), and
resume picks up from its store.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple

from ..obs import MetricsRegistry
from ..runner.cache import atomic_write
from ..runner.campaign import CampaignSpec
from .status import ACTIVE_STATUSES, TERMINAL_STATUSES

__all__ = [
    "ACTIVE_STATUSES",
    "Job",
    "JobQueue",
    "QuotaError",
    "TERMINAL_STATUSES",
]

#: Hex digits of the campaign fingerprint used as the job id.
JOB_ID_LENGTH = 16

#: Events retained per live job for the stream endpoint; older events are
#: dropped (clients detect the gap via absolute event numbers and re-sync
#: from the snapshot, which always carries the authoritative counters).
MAX_EVENTS_RETAINED = 4096

#: Events kept once a job is terminal — enough to replay the tail of any
#: ordinary campaign for late `repro watch` attachments, while bounding
#: what a long-lived service holds per finished job.
MAX_EVENTS_TERMINAL = 512


class QuotaError(Exception):
    """A per-owner job quota rejected a submission (HTTP 429)."""

    def __init__(self, message: str, retry_after_s: float = 5.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


@dataclass
class Job:
    """One submitted campaign and its execution state."""

    job_id: str
    spec: CampaignSpec
    store_path: Path
    status: str = "queued"
    #: Scheduling class (higher runs first); mirrors ``spec.priority``.
    priority: int = 0
    #: Queue-wide submission sequence number: the FIFO tie-breaker within a
    #: priority class.  Persisted, so recovery keeps the original order.
    seq: int = 0
    #: Principals that submitted this spec (first one first); used for
    #: quota accounting and submit-role visibility.
    owners: List[str] = field(default_factory=list)
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    tasks_total: int = 0
    tasks_done: int = 0
    tasks_ok: int = 0
    tasks_skipped: int = 0
    tasks_failed: int = 0
    #: Accumulated task runtime / queue wait (seconds) reported by the
    #: campaign's :class:`~repro.runner.executor.TaskResult`s.
    tasks_wall_s: float = 0.0
    tasks_queue_wait_s: float = 0.0
    error: Optional[str] = None
    #: Status transitions in order, e.g. ``["queued", "running", "done"]``.
    history: List[str] = field(default_factory=lambda: ["queued"])
    cancel_event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )
    #: Live event feed for the stream endpoint (not persisted).  Each event
    #: carries its absolute number ``n``; the deque retains the most recent
    #: ``MAX_EVENTS_RETAINED`` of ``events_emitted`` total.
    events: Deque[Dict[str, object]] = field(
        default_factory=lambda: deque(maxlen=MAX_EVENTS_RETAINED),
        repr=False,
        compare=False,
    )
    events_emitted: int = field(default=0, repr=False, compare=False)
    #: Per-job notification channel for stream waiters.  Shares the queue's
    #: lock (set by the queue when it registers the job), so an event on one
    #: job wakes only that job's watchers.
    event_cond: Optional[threading.Condition] = field(
        default=None, repr=False, compare=False
    )

    def owned_by(self, name: Optional[str]) -> bool:
        return name is not None and name in self.owners

    def timings(self) -> Dict[str, object]:
        """Wall-clock summary of the job so far (served in status payloads).

        ``queue_wait_s`` is submission→claim (live for a job still queued),
        ``run_s`` claim→finish (live for a running job); the ``tasks_*``
        accumulators sum what the campaign's task results reported.
        """
        now = time.time()
        queue_wait: Optional[float] = None
        if self.started_at is not None:
            queue_wait = max(0.0, self.started_at - self.submitted_at)
        elif self.status == "queued":
            queue_wait = max(0.0, now - self.submitted_at)
        run_s: Optional[float] = None
        if self.started_at is not None:
            end = self.finished_at if self.finished_at is not None else now
            run_s = max(0.0, end - self.started_at)
        return {
            "queue_wait_s": None if queue_wait is None else round(queue_wait, 6),
            "run_s": None if run_s is None else round(run_s, 6),
            "tasks_wall_s": round(self.tasks_wall_s, 6),
            "tasks_queue_wait_s": round(self.tasks_queue_wait_s, 6),
        }

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe view of the job served by the status endpoints."""
        return {
            "job_id": self.job_id,
            "name": self.spec.name,
            "status": self.status,
            "priority": self.priority,
            "owners": list(self.owners),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cancel_requested": self.cancel_event.is_set(),
            "error": self.error,
            "history": list(self.history),
            "progress": {
                "tasks_total": self.tasks_total,
                "tasks_done": self.tasks_done,
                "tasks_ok": self.tasks_ok,
                "tasks_skipped": self.tasks_skipped,
                "tasks_failed": self.tasks_failed,
            },
            "timings": self.timings(),
        }


class JobQueue:
    """Thread-safe stable priority queue of jobs with on-disk persistence.

    The HTTP handlers (submit/status/cancel/stream) and the worker threads
    (claim/progress/finish) share one queue; every method takes the internal
    lock, so callers never need their own synchronisation.
    """

    def __init__(
        self, state_dir: os.PathLike, *, metrics: Optional[MetricsRegistry] = None
    ):
        self.state_dir = Path(state_dir)
        #: Service-level counters/histograms (rendered by ``/metricsz``); a
        #: fresh registry when the queue runs standalone, the service's
        #: shared one in production.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.jobs_dir = self.state_dir / "jobs"
        self.stores_dir = self.state_dir / "stores"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.stores_dir.mkdir(parents=True, exist_ok=True)
        # One lock guards all queue state; two notification channels share
        # it: _claim_cond for workers blocked in claim(), and a per-job
        # Condition (job.event_cond) for stream waiters — so a task event on
        # one job wakes only that job's watchers, never every waiter of
        # every job plus the idle claimers.
        self._lock = threading.Lock()
        self._claim_cond = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        #: job_id -> (-priority, seq): ``claim`` pops the minimum, i.e. the
        #: highest priority first and FIFO within one priority class.
        self._pending: Dict[str, Tuple[int, int]] = {}
        self._next_seq = 0

    # ------------------------------------------------------------------
    def submit(
        self,
        spec: CampaignSpec,
        *,
        owner: Optional[str] = None,
        max_queued: Optional[int] = None,
        max_active: Optional[int] = None,
    ) -> Tuple[Job, bool]:
        """Enqueue a campaign; returns ``(job, created)``.

        The job id is the campaign fingerprint, so submitting an identical
        spec while a job is queued, running or done returns the existing job
        (``created=False``) instead of scheduling duplicate work — though a
        resubmission at a *higher* priority escalates a job that is still
        waiting in the queue (original FIFO slot, new class; never a
        demotion, so a plain resubmit cannot sink an urgent job).  A
        failed or cancelled job is *re-enqueued* by the duplicate submission — its
        store is kept, so the re-run resumes past every task that already
        finished; it re-joins the back of its priority class (fresh ``seq``).

        ``owner`` (the authenticated principal, if any) is recorded on the
        job; ``max_queued`` / ``max_active`` are that owner's quotas, checked
        atomically with the enqueue: more than ``max_queued`` queued jobs or
        ``max_active`` queued+running jobs raises :class:`QuotaError` —
        except when the submission dedupes onto an existing live job, which
        schedules no new work and therefore never counts against a quota.
        """
        tasks = spec.validate()
        job_id = spec.fingerprint()[:JOB_ID_LENGTH]
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None:
                if existing.status in ("queued", "running", "done"):
                    self._add_owner_locked(existing, owner)
                    # A deduped resubmission can still *escalate* a job that
                    # is waiting in the queue ("jump the backlog"); it keeps
                    # its original seq, i.e. its FIFO slot within the new
                    # class.  Escalation only: a resubmission at a lower (or
                    # default) priority must not demote the job — priority
                    # is outside the fingerprint, so any co-owner's plain
                    # resubmit would otherwise silently sink an urgent job.
                    # Running/done jobs are past scheduling either way.
                    if (
                        existing.status == "queued"
                        and spec.priority > existing.priority
                    ):
                        existing.priority = spec.priority
                        if existing.job_id in self._pending:
                            self._pending[existing.job_id] = (
                                -existing.priority,
                                existing.seq,
                            )
                        self._emit_locked(
                            existing, "priority", priority=existing.priority
                        )
                        self._persist(existing)
                    self._count_submit_locked(owner, "deduped")
                    return existing, False
                # failed / cancelled: re-enqueue for a resumed re-run.
                self._check_quota_locked(owner, max_queued, max_active)
                self._add_owner_locked(existing, owner)
                existing.status = "queued"
                existing.history.append("queued")
                existing.priority = spec.priority
                existing.seq = self._take_seq_locked()
                existing.error = None
                existing.started_at = None
                existing.finished_at = None
                existing.tasks_total = len(tasks)
                existing.tasks_done = 0
                existing.tasks_ok = 0
                existing.tasks_skipped = 0
                existing.tasks_failed = 0
                existing.cancel_event = threading.Event()
                self._enqueue_locked(existing)
                self._emit_locked(existing, "status", status="queued")
                self._persist(existing)
                self._count_submit_locked(owner, "requeued")
                return existing, False
            self._check_quota_locked(owner, max_queued, max_active)
            job = Job(
                job_id=job_id,
                spec=spec,
                store_path=self.stores_dir / f"{job_id}.jsonl",
                priority=spec.priority,
                seq=self._take_seq_locked(),
                owners=[owner] if owner is not None else [],
                tasks_total=len(tasks),
            )
            job.event_cond = threading.Condition(self._lock)
            self._jobs[job_id] = job
            self._enqueue_locked(job)
            self._emit_locked(job, "status", status="queued")
            self._persist(job)
            self._count_submit_locked(owner, "created")
            return job, True

    def _count_submit_locked(self, owner: Optional[str], outcome: str) -> None:
        self.metrics.inc(
            "repro_service_submits_total",
            outcome=outcome,
            principal=owner if owner is not None else "anonymous",
        )

    def _take_seq_locked(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def _enqueue_locked(self, job: Job) -> None:
        self._pending[job.job_id] = (-job.priority, job.seq)
        self._claim_cond.notify_all()

    def _add_owner_locked(self, job: Job, owner: Optional[str]) -> None:
        if owner is not None and owner not in job.owners:
            job.owners.append(owner)
            self._persist(job)

    def _check_quota_locked(
        self,
        owner: Optional[str],
        max_queued: Optional[int],
        max_active: Optional[int],
    ) -> None:
        if owner is None or (max_queued is None and max_active is None):
            return
        queued = active = 0
        for job in self._jobs.values():
            if not job.owned_by(owner):
                continue
            if job.status == "queued":
                queued += 1
                active += 1
            elif job.status == "running":
                active += 1
        if max_queued is not None and queued >= max_queued:
            raise QuotaError(
                f"quota exceeded for {owner!r}: {queued} job(s) already queued "
                f"(max_queued={max_queued})"
            )
        if max_active is not None and active >= max_active:
            raise QuotaError(
                f"quota exceeded for {owner!r}: {active} job(s) queued or running "
                f"(max_active={max_active})"
            )

    def claim(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the next queued job and mark it running (None on timeout).

        "Next" = highest priority; submission order within a priority class.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            # Loop until the deadline: spurious condition wake-ups must not
            # masquerade as a timeout.
            while not self._pending:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._claim_cond.wait(remaining)
            job_id = min(self._pending, key=self._pending.__getitem__)
            del self._pending[job_id]
            job = self._jobs[job_id]
            job.status = "running"
            job.history.append("running")
            job.started_at = time.time()
            self.metrics.inc("repro_service_claims_total")
            self.metrics.observe(
                "repro_service_job_queue_wait_seconds",
                max(0.0, job.started_at - job.submitted_at),
            )
            self._emit_locked(job, "status", status="running")
            self._persist(job)
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self, owner: Optional[str] = None) -> List[Job]:
        """Every known job, oldest submission first.

        ``owner`` restricts the listing to that principal's jobs (what a
        submit-role token sees).
        """
        with self._lock:
            selected = [
                job
                for job in self._jobs.values()
                if owner is None or job.owned_by(owner)
            ]
            return sorted(selected, key=lambda j: (j.submitted_at, j.seq, j.job_id))

    def counts(self) -> Dict[str, int]:
        """``{status: job count}`` over every known job."""
        with self._lock:
            counts: Dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.status] = counts.get(job.status, 0) + 1
            return counts

    def feed_depth(self) -> int:
        """Total events currently retained across all job feeds."""
        with self._lock:
            return sum(len(job.events) for job in self._jobs.values())

    # ------------------------------------------------------------------
    # Event feed (the stream endpoint's source).

    def _emit_locked(self, job: Job, kind: str, **fields: object) -> None:
        event: Dict[str, object] = {"n": job.events_emitted, "event": kind}
        event.update(fields)
        job.events.append(event)
        job.events_emitted += 1
        if job.event_cond is not None:
            job.event_cond.notify_all()

    def wait_events(
        self, job_id: str, since: int = 0, timeout: float = 25.0
    ) -> Optional[Tuple[List[Dict[str, object]], int, Dict[str, object]]]:
        """Long-poll the job's event feed.

        Blocks until the feed holds events numbered ``>= since``, the job is
        terminal, or ``timeout`` elapses; returns ``(events, next, snapshot)``
        where ``next`` is the cursor for the follow-up call.  Events older
        than the retention window are silently absent — the snapshot always
        carries authoritative counters, so a lagging client loses verbosity,
        never truth.  Returns None for an unknown job.
        """
        since = max(0, int(since))
        deadline = time.monotonic() + max(0.0, float(timeout))
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            while (
                job.events_emitted <= since
                and job.status not in TERMINAL_STATUSES
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                job.event_cond.wait(remaining)
            events = [e for e in job.events if int(e["n"]) >= since]  # type: ignore[arg-type]
            return events, job.events_emitted, job.snapshot()

    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cancellation; returns the job (None if unknown).

        A queued job is cancelled immediately (it never reaches a worker); a
        running job gets its cancel event set and transitions once the worker
        honours it.  Terminal jobs are left untouched.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.status == "queued":
                self._pending.pop(job_id, None)
                job.cancel_event.set()
                self._finish_locked(job, "cancelled", error="cancelled while queued")
            elif job.status == "running":
                job.cancel_event.set()
                self._emit_locked(job, "cancel_requested")
                self._persist(job)
            return job

    def record_progress(
        self,
        job: Job,
        result,
        index: Optional[int] = None,
        total: Optional[int] = None,
    ) -> None:
        """Fold one :class:`~repro.runner.executor.TaskResult` into the job."""
        with self._lock:
            if result.status == "skipped":
                job.tasks_done += 1
                job.tasks_skipped += 1
                job.tasks_ok += 1
            elif result.status == "ok":
                job.tasks_done += 1
                job.tasks_ok += 1
            elif result.status != "cancelled":
                # failed / timeout still *completed* (they have a verdict);
                # cancelled tasks never ran and stay out of the done count.
                job.tasks_done += 1
                job.tasks_failed += 1
            job.tasks_wall_s += float(getattr(result, "wall_time_s", 0.0) or 0.0)
            job.tasks_queue_wait_s += float(
                getattr(result, "queue_wait_s", 0.0) or 0.0
            )
            self.metrics.inc(
                "repro_service_tasks_total", status=str(result.status)
            )
            event: Dict[str, object] = {
                "task_id": getattr(result, "task_id", None),
                "status": result.status,
                "tasks_done": job.tasks_done,
                "tasks_total": total if total is not None else job.tasks_total,
            }
            if index is not None:
                event["index"] = index
            self._emit_locked(job, "task", **event)
            self._persist(job)

    def set_total(self, job: Job, total: int) -> None:
        with self._lock:
            job.tasks_total = int(total)
            self._emit_locked(job, "total", tasks_total=job.tasks_total)
            self._persist(job)

    def emit_event(self, job: Job, kind: str, **fields: object) -> None:
        """Publish an out-of-band event on a job's feed (fleet lease events).

        Same delivery semantics as the built-in kinds: appended to the
        bounded feed, wakes long-poll watchers, no persistence beyond the
        feed itself.
        """
        with self._lock:
            self._emit_locked(job, kind, **fields)

    def finish(self, job: Job, status: str, error: Optional[str] = None) -> None:
        with self._lock:
            self._finish_locked(job, status, error=error)

    def _finish_locked(self, job: Job, status: str, error: Optional[str]) -> None:
        job.status = status
        job.history.append(status)
        job.finished_at = time.time()
        job.error = error
        self.metrics.inc("repro_service_jobs_finished_total", status=status)
        if job.started_at is not None:
            self.metrics.observe(
                "repro_service_job_run_seconds",
                max(0.0, job.finished_at - job.started_at),
            )
        self._emit_locked(job, "status", status=status, error=error)
        # The feed stops growing here; shrink what a finished job pins in
        # memory while keeping the tail replayable for late watchers (the
        # snapshot carries the authoritative counters regardless).
        while len(job.events) > MAX_EVENTS_TERMINAL:
            job.events.popleft()
        self._persist(job)

    # ------------------------------------------------------------------
    def recover(self) -> List[str]:
        """Load persisted jobs; re-enqueue the ones that never finished.

        Called once at service start-up.  Returns the ids that were
        re-enqueued (they resume from their stores, skipping finished tasks).
        Re-enqueued jobs keep their **original submission order**: the
        persisted per-queue ``seq`` is the sort key (files whose payloads
        predate it fall back to ``submitted_at``), so recovery is immune to
        directory-listing order and to submissions that shared one clock
        tick.  Priority classes are likewise restored, so a high-priority
        job queued behind a long run still claims first after a restart.
        Unreadable job files are skipped rather than sinking the service.
        """
        requeued: List[str] = []
        entries = []
        for path in sorted(self.jobs_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                spec = CampaignSpec.from_json_dict(payload["spec"])
                job_id = str(payload["job_id"])
                status = str(payload["status"])
            except Exception:  # noqa: BLE001 - a corrupt file must not sink startup
                continue
            entries.append((job_id, status, payload, spec))
        # Original queue order: the persisted seq is exact (immune to clock
        # ties, and a failed job re-enqueued later keeps its *later* slot
        # despite its early submitted_at).  Payloads predating seq sort
        # after the seq'd ones, by submission time; directory order never
        # decides.
        entries.sort(
            key=lambda item: (
                float(item[2].get("seq", float("inf"))),
                float(item[2].get("submitted_at", 0.0)),
                item[0],
            )
        )
        with self._lock:
            for job_id, status, payload, spec in entries:
                interrupted = status in ACTIVE_STATUSES
                # A cancel requested but not yet honoured when the service
                # died must survive the restart: honour it now instead of
                # resurrecting the job.
                cancelled_in_flight = interrupted and bool(
                    payload.get("cancel_requested")
                )
                job = Job(
                    job_id=job_id,
                    spec=spec,
                    store_path=self.stores_dir / f"{job_id}.jsonl",
                    status="queued" if interrupted else status,
                    priority=int(payload.get("priority", spec.priority)),
                    seq=self._take_seq_locked(),
                    owners=[str(o) for o in payload.get("owners", [])],
                    submitted_at=float(payload.get("submitted_at", time.time())),
                    started_at=payload.get("started_at"),
                    finished_at=payload.get("finished_at"),
                    tasks_total=int(payload.get("tasks_total", 0)),
                    tasks_done=int(payload.get("tasks_done", 0)),
                    tasks_ok=int(payload.get("tasks_ok", 0)),
                    tasks_skipped=int(payload.get("tasks_skipped", 0)),
                    tasks_failed=int(payload.get("tasks_failed", 0)),
                    tasks_wall_s=float(payload.get("tasks_wall_s", 0.0)),
                    tasks_queue_wait_s=float(
                        payload.get("tasks_queue_wait_s", 0.0)
                    ),
                    error=payload.get("error"),
                    history=[str(s) for s in payload.get("history", ["queued"])],
                )
                job.event_cond = threading.Condition(self._lock)
                if cancelled_in_flight:
                    job.cancel_event.set()
                    self._finish_locked(
                        job, "cancelled", error="cancelled before service restart"
                    )
                elif interrupted:
                    # Counters restart from zero: the resumed run re-reports
                    # every task (finished ones come back as "skipped").
                    job.started_at = None
                    job.finished_at = None
                    job.tasks_done = 0
                    job.tasks_ok = 0
                    job.tasks_skipped = 0
                    job.tasks_failed = 0
                    job.tasks_wall_s = 0.0
                    job.tasks_queue_wait_s = 0.0
                    job.history.append("queued")
                    self._pending[job_id] = (-job.priority, job.seq)
                    self._emit_locked(job, "status", status="queued", recovered=True)
                    requeued.append(job_id)
                self._jobs[job_id] = job
                self._persist(job)
            if requeued:
                self._claim_cond.notify_all()
        return requeued

    def _persist(self, job: Job) -> None:
        # The snapshot is persisted nearly as-is: cancel_requested must
        # survive a restart so an unhonoured cancel is not resurrected, and
        # seq must survive so recovery keeps the original submission order.
        payload = dict(job.snapshot())
        payload.update(payload.pop("progress"))  # flatten counters
        # timings are derived (partly from the live clock); persist the raw
        # accumulators instead so recovery rebuilds them exactly.
        payload.pop("timings", None)
        payload["tasks_wall_s"] = job.tasks_wall_s
        payload["tasks_queue_wait_s"] = job.tasks_queue_wait_s
        payload["seq"] = job.seq
        payload["spec"] = job.spec.to_json_dict()
        atomic_write(
            self.jobs_dir / f"{job.job_id}.json",
            lambda handle: handle.write(
                json.dumps(payload, sort_keys=True).encode("utf-8")
            ),
        )
