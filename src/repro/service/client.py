"""Thin stdlib client for the campaign service HTTP API.

Used by the ``repro submit / status / watch / fetch / cancel`` CLI verbs and
by the service test-suite, so the CLI never hand-rolls HTTP and the tests
exercise exactly what users run.  Only ``urllib`` — no new dependencies.

Errors are typed: every non-2xx response raises :class:`ServiceError` or a
subclass (:class:`AuthError` for 401/403, :class:`NotFoundError` for 404,
:class:`ThrottledError` for 429 — carrying the server's ``Retry-After``),
with the machine-readable ``code`` from the structured error body.

Progress is streamed, not polled: :meth:`ServiceClient.wait` and
:meth:`ServiceClient.watch` ride the ``/v1/jobs/<id>/stream`` long-poll
endpoint, so a waiting client holds one slow request at a time instead of
busy-polling the status route.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Dict, Iterator, List, Mapping, Optional
from urllib import error as urllib_error
from urllib import request as urllib_request
from urllib.parse import urlencode

from .status import TERMINAL_STATUSES

__all__ = [
    "AuthError",
    "DEFAULT_SERVICE_URL",
    "NotFoundError",
    "SERVICE_TOKEN_ENV",
    "SERVICE_URL_ENV",
    "ServiceClient",
    "ServiceError",
    "ThrottledError",
]

#: Environment variable overriding the default service URL for the CLI.
SERVICE_URL_ENV = "REPRO_SERVICE_URL"

#: Environment variable supplying the bearer token for the CLI.
SERVICE_TOKEN_ENV = "REPRO_SERVICE_TOKEN"

DEFAULT_SERVICE_URL = "http://127.0.0.1:8765"

#: Server-side wait per stream request; the client loops to wait longer.
STREAM_CHUNK_S = 10.0

#: Ceiling on any single retry sleep, whatever Retry-After or the
#: exponential backoff computed (a throttled fleet must keep heartbeating).
RETRY_MAX_SLEEP_S = 10.0


class ServiceError(RuntimeError):
    """An HTTP-level error response from the service (4xx/5xx)."""

    def __init__(
        self,
        status: int,
        message: str,
        *,
        code: Optional[str] = None,
        retry_after_s: Optional[float] = None,
    ):
        super().__init__(f"service returned {status}: {message}")
        self.status = status
        self.message = message
        self.code = code
        self.retry_after_s = retry_after_s


class AuthError(ServiceError):
    """401 (missing/unknown/revoked token) or 403 (role/ownership)."""


class NotFoundError(ServiceError):
    """404: unknown job or route."""


class ThrottledError(ServiceError):
    """429: rate limit or quota; ``retry_after_s`` says when to try again."""


def _error_from_http(exc: urllib_error.HTTPError) -> ServiceError:
    """Map an HTTPError onto the typed hierarchy, parsing the JSON body."""
    code: Optional[str] = None
    try:
        body = json.loads(exc.read().decode("utf-8"))
        error = body.get("error", body)
        if isinstance(error, Mapping):  # structured {"code": ..., "message": ...}
            code = error.get("code")
            message = str(error.get("message", error))
        else:
            message = str(error)
    except Exception:  # noqa: BLE001 - non-JSON error body
        message = str(exc.reason)
    retry_after: Optional[float] = None
    header = exc.headers.get("Retry-After") if exc.headers is not None else None
    if header is not None:
        try:
            retry_after = float(header)
        except ValueError:
            pass
    cls = ServiceError
    if exc.code in (401, 403):
        cls = AuthError
    elif exc.code == 404:
        cls = NotFoundError
    elif exc.code == 429:
        cls = ThrottledError
    return cls(exc.code, message, code=code, retry_after_s=retry_after)


class ServiceClient:
    """JSON-over-HTTP client bound to one service URL.

    ``token`` (optional) is sent as ``Authorization: Bearer <token>`` on
    every request; required when the service runs with a tokens file.

    ``retries`` (default 0 — behaviour unchanged) opts in to transparent
    retry of transient failures: 429/503 responses (honouring the server's
    ``Retry-After``, else capped exponential backoff from
    ``retry_backoff_s``) and transport-level ``URLError``.  The fleet
    worker loop runs with retries on; interactive CLI verbs keep the
    fail-fast default so a throttled ``submit`` surfaces immediately.
    """

    def __init__(
        self,
        url: str = DEFAULT_SERVICE_URL,
        *,
        token: Optional[str] = None,
        timeout: float = 30.0,
        retries: int = 0,
        retry_backoff_s: float = 0.25,
    ):
        self.url = url.rstrip("/")
        self.token = token
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.retry_backoff_s = max(0.0, float(retry_backoff_s))

    # ------------------------------------------------------------------
    def _headers(self, *, content_type: Optional[str] = "application/json") -> Dict[str, str]:
        headers: Dict[str, str] = {}
        if content_type is not None:
            headers["Content-Type"] = content_type
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        return headers

    def _open(self, req: urllib_request.Request, timeout: float):
        """``urlopen`` with the client's retry policy; raises typed errors."""
        attempt = 0
        while True:
            try:
                return urllib_request.urlopen(req, timeout=timeout)
            except urllib_error.HTTPError as exc:
                error = _error_from_http(exc)
                if attempt < self.retries and exc.code in (429, 503):
                    delay = error.retry_after_s
                    if delay is None:
                        delay = self.retry_backoff_s * (2.0 ** attempt)
                    time.sleep(min(max(0.0, delay), RETRY_MAX_SLEEP_S))
                    attempt += 1
                    continue
                raise error from None
            except urllib_error.URLError:
                if attempt < self.retries:
                    delay = self.retry_backoff_s * (2.0 ** attempt)
                    time.sleep(min(delay, RETRY_MAX_SLEEP_S))
                    attempt += 1
                    continue
                raise

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, object]] = None,
        *,
        timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        req = urllib_request.Request(
            self.url + path, data=data, method=method, headers=self._headers()
        )
        with self._open(
            req, self.timeout if timeout is None else timeout
        ) as response:
            return json.loads(response.read().decode("utf-8"))

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """Raw Prometheus text from ``/metricsz`` (admin-only under auth)."""
        req = urllib_request.Request(
            self.url + "/metricsz",
            method="GET",
            headers=self._headers(content_type=None),
        )
        with self._open(req, self.timeout) as response:
            return response.read().decode("utf-8")

    def jobs(self) -> List[Dict[str, object]]:
        return list(self._request("GET", "/v1/jobs")["jobs"])

    def submit(self, spec) -> Dict[str, object]:
        """Submit a campaign; ``spec`` is a CampaignSpec or its JSON dict.

        Returns ``{"job": <snapshot>, "created": bool}`` — ``created`` is
        False when the submission deduped onto an existing job.  Raises
        :class:`ThrottledError` (with ``retry_after_s``) when the service's
        rate limit or the caller's quota rejects the submission.
        """
        if hasattr(spec, "to_json_dict"):
            spec = spec.to_json_dict()
        return self._request("POST", "/v1/jobs", {"spec": dict(spec)})

    def status(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def fetch(self, job_id: str, kind: str = "report") -> Dict[str, object]:
        """Raw payload of a job's ``report`` or ``records`` endpoint."""
        return self._request("GET", f"/v1/jobs/{job_id}/{kind}")

    def report(self, job_id: str, *, style: Optional[str] = None) -> str:
        """Rendered report; ``style="matrix"`` for the capability matrix."""
        kind = "report" if style is None else f"report?style={style}"
        return str(self.fetch(job_id, kind)["report"])

    def records(self, job_id: str) -> List[Dict[str, object]]:
        return list(self.fetch(job_id, "records")["records"])

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")["job"]

    # ------------------------------------------------------------------
    # Warehouse: cross-campaign queries
    def warehouse_query(
        self,
        *,
        scheme: Optional[str] = None,
        attack: Optional[str] = None,
        suite: Optional[str] = None,
        status: Optional[str] = None,
        target: Optional[str] = None,
        since: Optional[str] = None,
        limit: Optional[int] = None,
        aggregate: bool = False,
        group_by: Optional[str] = None,
    ) -> Dict[str, object]:
        """Cross-campaign record query (``GET /v1/warehouse/query``).

        Returns ``{"records", "count", "truncated"}`` — or ``{"groups",
        "group_by"}`` with ``aggregate=True`` (``group_by`` is a
        comma-separated field list).  Non-admin tokens see only records
        from jobs they own.
        """
        params = {
            "scheme": scheme,
            "attack": attack,
            "suite": suite,
            "status": status,
            "target": target,
            "since": since,
            "limit": limit,
            "aggregate": "1" if aggregate else None,
            "group_by": group_by,
        }
        query = urlencode(
            {key: value for key, value in params.items() if value is not None}
        )
        path = "/v1/warehouse/query" + (f"?{query}" if query else "")
        return self._request("GET", path)

    def warehouse_usage(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant usage rollup; non-admins get only their own row."""
        return dict(self._request("GET", "/v1/warehouse/usage")["usage"])

    def warehouse_stats(self) -> Dict[str, object]:
        """Warehouse shard/index stats (admin token required under auth)."""
        return dict(self._request("GET", "/v1/warehouse/stats")["stats"])

    def warehouse_compact(self) -> Dict[str, object]:
        """Trigger a compaction now (admin token required under auth)."""
        return dict(self._request("POST", "/v1/warehouse/compact")["result"])

    # ------------------------------------------------------------------
    def stream(
        self, job_id: str, *, since: int = 0, timeout: float = STREAM_CHUNK_S
    ) -> Dict[str, object]:
        """One long-poll turn: block server-side up to ``timeout`` seconds.

        Returns ``{"job": snapshot, "events": [...], "next": cursor}``; pass
        ``next`` back as ``since`` to continue the feed.
        """
        return self._request(
            "GET",
            f"/v1/jobs/{job_id}/stream?since={int(since)}&timeout={float(timeout)}",
            # The socket must outlive the server-side wait.
            timeout=float(timeout) + self.timeout,
        )

    def watch(
        self, job_id: str, *, timeout: Optional[float] = None, since: int = 0
    ) -> Iterator[Dict[str, object]]:
        """Yield progress events until the job is terminal.

        Each yielded dict is one event from the job's feed (``event`` is
        ``status``/``task``/``total``/``priority``/``cancel_requested``),
        with the
        current job snapshot attached under ``"job"``.  Raises
        :class:`TimeoutError` if the job is still live after ``timeout``
        seconds (None = wait forever).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            chunk = STREAM_CHUNK_S
            if deadline is not None:
                chunk = min(chunk, max(0.0, deadline - time.monotonic()))
            payload = self.stream(job_id, since=since, timeout=chunk)
            snapshot = payload["job"]
            for event in payload["events"]:
                yield {**event, "job": snapshot}
            since = int(payload["next"])
            if snapshot["status"] in TERMINAL_STATUSES:
                return
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['status']} after {timeout}s"
                )

    def wait(
        self,
        job_id: str,
        *,
        timeout: Optional[float] = 300.0,
        poll_s: float = 0.25,
        on_update=None,
    ) -> Dict[str, object]:
        """Block until the job reaches a terminal status; returns the snapshot.

        Rides the stream endpoint (one slow HTTP request at a time server
        side) instead of busy-polling the status route.  ``on_update`` (if
        given) receives every received snapshot, for callers that want to
        surface progress while waiting.  ``poll_s`` is kept for backwards
        compatibility and only paces the fallback path used if the stream
        endpoint is unavailable.  Raises :class:`TimeoutError` when
        ``timeout`` seconds elapse first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        since = 0
        while True:
            chunk = STREAM_CHUNK_S
            if deadline is not None:
                chunk = min(chunk, max(0.0, deadline - time.monotonic()))
            try:
                payload = self.stream(job_id, since=since, timeout=chunk)
            except NotFoundError:
                # Job missing, or a pre-stream server without the route?
                # Only the latter degrades to the classic status poll: the
                # probe below re-raises NotFoundError for an unknown job.
                self.status(job_id)
                return self._wait_polling(
                    job_id, deadline=deadline, poll_s=poll_s, on_update=on_update
                )
            snapshot = payload["job"]
            since = int(payload["next"])
            if on_update is not None:
                on_update(snapshot)
            if snapshot["status"] in TERMINAL_STATUSES:
                return snapshot
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['status']} after {timeout}s"
                )

    # ------------------------------------------------------------------
    # Fleet endpoints (used by `repro work` drainers; require a worker or
    # admin token when the service runs with auth).
    def lease_tasks(
        self, worker: str, *, limit: int = 1, ttl_s: Optional[float] = None
    ) -> List[Dict[str, object]]:
        payload: Dict[str, object] = {"worker": worker, "limit": int(limit)}
        if ttl_s is not None:
            payload["ttl_s"] = float(ttl_s)
        return list(self._request("POST", "/v1/tasks/lease", payload)["leases"])

    def heartbeat(self, lease_id: str, worker: str) -> Dict[str, object]:
        return self._request(
            "POST", f"/v1/tasks/{lease_id}/heartbeat", {"worker": worker}
        )["lease"]

    def release_lease(self, lease_id: str, worker: str) -> Dict[str, object]:
        return self._request(
            "POST", f"/v1/tasks/{lease_id}/release", {"worker": worker}
        )["lease"]

    def complete_task(
        self, lease_id: str, worker: str, result: Mapping[str, object]
    ) -> Dict[str, object]:
        return self._request(
            "POST",
            f"/v1/tasks/{lease_id}/complete",
            {"worker": worker, "result": dict(result)},
        )

    def job_spec(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/jobs/{job_id}/spec")

    # ------------------------------------------------------------------
    # Artifact object store (raw bytes, digest-checked both ways).
    def get_artifact(self, kind: str, key: str) -> Optional[bytes]:
        """Fetch an artifact's bytes; None on a miss or a failed digest
        check (the caller regenerates — determinism makes that safe)."""
        req = urllib_request.Request(
            self.url + f"/v1/artifacts/{kind}/{key}",
            method="GET",
            headers=self._headers(content_type=None),
        )
        try:
            with self._open(req, self.timeout) as response:
                data = response.read()
                digest = response.headers.get("X-Repro-Digest")
        except NotFoundError:
            return None
        if digest is not None and hashlib.sha256(data).hexdigest() != digest:
            return None
        return data

    def put_artifact(self, kind: str, key: str, data: bytes) -> Dict[str, object]:
        """Upload an artifact's bytes; the digest header lets the server
        reject bodies corrupted in transit (422)."""
        headers = self._headers(content_type="application/octet-stream")
        headers["X-Repro-Digest"] = hashlib.sha256(data).hexdigest()
        req = urllib_request.Request(
            self.url + f"/v1/artifacts/{kind}/{key}",
            data=data,
            method="PUT",
            headers=headers,
        )
        with self._open(req, self.timeout) as response:
            return json.loads(response.read().decode("utf-8"))

    def _wait_polling(self, job_id, *, deadline, poll_s, on_update):
        while True:
            snapshot = self.status(job_id)
            if on_update is not None:
                on_update(snapshot)
            if snapshot["status"] in TERMINAL_STATUSES:
                return snapshot
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {snapshot['status']}")
            time.sleep(poll_s)
