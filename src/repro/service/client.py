"""Thin stdlib client for the campaign service HTTP API.

Used by the ``repro submit / status / fetch / cancel`` CLI verbs and by the
service test-suite, so the CLI never hand-rolls HTTP and the tests exercise
exactly what users run.  Only ``urllib`` — no new dependencies.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Mapping, Optional
from urllib import error as urllib_error
from urllib import request as urllib_request

from .status import TERMINAL_STATUSES

__all__ = ["DEFAULT_SERVICE_URL", "SERVICE_URL_ENV", "ServiceClient", "ServiceError"]

#: Environment variable overriding the default service URL for the CLI.
SERVICE_URL_ENV = "REPRO_SERVICE_URL"

DEFAULT_SERVICE_URL = "http://127.0.0.1:8765"


class ServiceError(RuntimeError):
    """An HTTP-level error response from the service (4xx/5xx)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"service returned {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """JSON-over-HTTP client bound to one service URL."""

    def __init__(self, url: str = DEFAULT_SERVICE_URL, *, timeout: float = 30.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, object]:
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        req = urllib_request.Request(
            self.url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib_request.urlopen(req, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib_error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
                message = str(body.get("error", body))
            except Exception:  # noqa: BLE001 - non-JSON error body
                message = str(exc.reason)
            raise ServiceError(exc.code, message) from None

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def jobs(self) -> List[Dict[str, object]]:
        return list(self._request("GET", "/v1/jobs")["jobs"])

    def submit(self, spec) -> Dict[str, object]:
        """Submit a campaign; ``spec`` is a CampaignSpec or its JSON dict.

        Returns ``{"job": <snapshot>, "created": bool}`` — ``created`` is
        False when the submission deduped onto an existing job.
        """
        if hasattr(spec, "to_json_dict"):
            spec = spec.to_json_dict()
        return self._request("POST", "/v1/jobs", {"spec": dict(spec)})

    def status(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def fetch(self, job_id: str, kind: str = "report") -> Dict[str, object]:
        """Raw payload of a job's ``report`` or ``records`` endpoint."""
        return self._request("GET", f"/v1/jobs/{job_id}/{kind}")

    def report(self, job_id: str) -> str:
        return str(self.fetch(job_id, "report")["report"])

    def records(self, job_id: str) -> List[Dict[str, object]]:
        return list(self.fetch(job_id, "records")["records"])

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")["job"]

    # ------------------------------------------------------------------
    def wait(
        self,
        job_id: str,
        *,
        timeout: Optional[float] = 300.0,
        poll_s: float = 0.25,
        on_update=None,
    ) -> Dict[str, object]:
        """Poll until the job reaches a terminal status; returns the snapshot.

        ``on_update`` (if given) receives every polled snapshot, for callers
        that want to surface progress while waiting.  Raises
        :class:`TimeoutError` when ``timeout`` seconds elapse first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            snapshot = self.status(job_id)
            if on_update is not None:
                on_update(snapshot)
            if snapshot["status"] in TERMINAL_STATUSES:
                return snapshot
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['status']} after {timeout}s"
                )
            time.sleep(poll_s)
