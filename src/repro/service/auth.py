"""Bearer-token authentication, quotas and rate limiting for the service.

The tokens file is JSON mapping each secret token string to its grant::

    {
      "tokens": {
        "s3cret-alice": {"name": "alice", "role": "submit",
                         "max_queued": 4, "max_active": 2,
                         "submit_rate": 5.0, "submit_burst": 10},
        "s3cret-ops":   {"name": "ops", "role": "admin"}
      }
    }

* ``name`` identifies the principal; jobs record it as their owner.  Two
  tokens may share a name (key rotation) — they share quotas and ownership.
* ``role`` is ``"submit"`` (submit, and see / cancel / stream *own* jobs)
  or ``"admin"`` (everything, every job).  Default: ``submit``.
* ``max_queued`` caps the owner's *queued* jobs; ``max_active`` caps their
  queued + running jobs.  Omitted limits fall back to the service-wide
  defaults (``None`` = unlimited).
* ``submit_rate`` / ``submit_burst`` shape a token bucket on POST
  ``/v1/jobs``: sustained ``submit_rate`` submissions per second with
  bursts up to ``submit_burst`` (default: the rate, rounded up).
* ``max_priority`` caps the job priority the token may request — without a
  cap a single tenant could pin its jobs above everyone else's backlog.
  Falls back to the service-wide default; admins are uncapped unless their
  entry sets one explicitly.

The registry re-reads the file whenever it changes on disk, so revoking a
token (deleting its entry) takes effect without a restart.  A token absent
from the file is simply unknown — revocation and "never existed" are
indistinguishable on the wire (401 either way).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional

__all__ = ["ROLES", "TokenBucket", "TokenInfo", "TokenRegistry"]

ROLES = ("submit", "worker", "admin")


@dataclass(frozen=True)
class TokenInfo:
    """One token's grant: identity, role and (optional) limits."""

    name: str
    role: str = "submit"
    max_queued: Optional[int] = None
    max_active: Optional[int] = None
    submit_rate: Optional[float] = None
    submit_burst: Optional[int] = None
    #: Highest job priority this token may request (None = the service-wide
    #: default for its role).  Caps escalation, not demotion.
    max_priority: Optional[int] = None

    @property
    def is_admin(self) -> bool:
        return self.role == "admin"

    @property
    def is_worker(self) -> bool:
        """Fleet drainers: may lease tasks and use the artifact store, but
        may not submit jobs or administer the service."""
        return self.role in ("worker", "admin")


def _parse_token_entry(token: str, entry: object) -> TokenInfo:
    if not isinstance(entry, dict):
        raise ValueError(f"token entry for {token[:8]!r}... must be a JSON object")
    known = {
        "name",
        "role",
        "max_queued",
        "max_active",
        "submit_rate",
        "submit_burst",
        "max_priority",
    }
    unknown = sorted(set(entry) - known)
    if unknown:
        raise ValueError(f"unknown token field(s): {', '.join(unknown)}")
    name = entry.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError("every token entry needs a non-empty string 'name'")
    role = entry.get("role", "submit")
    if role not in ROLES:
        raise ValueError(f"token {name!r}: role must be one of {ROLES}, got {role!r}")

    def _int_limit(key: str) -> Optional[int]:
        value = entry.get(key)
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise ValueError(f"token {name!r}: {key} must be a non-negative integer")
        return value

    rate = entry.get("submit_rate")
    if rate is not None and (
        isinstance(rate, bool) or not isinstance(rate, (int, float)) or rate <= 0
    ):
        raise ValueError(f"token {name!r}: submit_rate must be a positive number")
    max_priority = entry.get("max_priority")
    if max_priority is not None and (
        isinstance(max_priority, bool) or not isinstance(max_priority, int)
    ):
        raise ValueError(f"token {name!r}: max_priority must be an integer")
    return TokenInfo(
        name=name,
        role=role,
        max_queued=_int_limit("max_queued"),
        max_active=_int_limit("max_active"),
        submit_rate=None if rate is None else float(rate),
        submit_burst=_int_limit("submit_burst"),
        max_priority=max_priority,
    )


def parse_tokens(payload: object) -> Dict[str, TokenInfo]:
    """Parse the tokens-file JSON payload into ``{secret: TokenInfo}``."""
    if not isinstance(payload, dict) or not isinstance(payload.get("tokens"), dict):
        raise ValueError('tokens file must be {"tokens": {"<secret>": {...}}}')
    tokens: Dict[str, TokenInfo] = {}
    for secret, entry in payload["tokens"].items():
        if not isinstance(secret, str) or not secret:
            raise ValueError("token secrets must be non-empty strings")
        tokens[secret] = _parse_token_entry(secret, entry)
    return tokens


class TokenRegistry:
    """Tokens loaded from a file, re-read whenever it changes on disk.

    ``lookup`` is what the API calls per request: a cheap ``stat`` plus a
    dict lookup on the unchanged path, a full (validated) reload when the
    operator edited the file.  A reload that fails to parse keeps the last
    good token set and surfaces the error through ``last_error`` — a typo
    while editing must not lock every client out.
    """

    def __init__(
        self,
        path: os.PathLike,
        on_error: Optional[Callable[[str], None]] = None,
    ):
        self.path = Path(path)
        self._on_error = on_error
        self._lock = threading.Lock()
        self._signature: Optional[tuple] = None
        self._tokens: Dict[str, TokenInfo] = {}
        self.last_error: Optional[str] = None
        self._reload_locked(initial=True)

    def _reload_locked(self, initial: bool = False) -> None:
        try:
            stat = self.path.stat()
        except OSError as exc:
            if initial:
                raise ValueError(
                    f"cannot load tokens file {self.path}: {exc}"
                ) from None
            self._note_error_locked(f"{type(exc).__name__}: {exc}")
            return
        # mtime_ns alone can miss two saves within the filesystem's
        # timestamp granularity (the second being the revocation);
        # size and inode (atomic-rename editors) close that window.
        signature = (stat.st_mtime_ns, stat.st_size, stat.st_ino)
        if signature == self._signature:
            return
        # Advance the signature even when the parse below fails: the broken
        # file is re-parsed only after the *next* edit, not on every request.
        self._signature = signature
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
            self._tokens = parse_tokens(payload)
            self.last_error = None
        except Exception as exc:  # noqa: BLE001 - keep serving the last good set
            if initial:
                raise ValueError(f"cannot load tokens file {self.path}: {exc}") from None
            self._note_error_locked(f"{type(exc).__name__}: {exc}")

    def _note_error_locked(self, message: str) -> None:
        """Record a reload failure and surface it (once per distinct error)."""
        if message != self.last_error:
            self.last_error = message
            if self._on_error is not None:
                self._on_error(
                    f"tokens file {self.path}: {message} "
                    f"(keeping the last good token set)"
                )

    def lookup(self, secret: str) -> Optional[TokenInfo]:
        """The grant behind ``secret``, or None for unknown/revoked tokens."""
        with self._lock:
            self._reload_locked()
            return self._tokens.get(secret)

    def __len__(self) -> int:
        with self._lock:
            return len(self._tokens)


class TokenBucket:
    """Classic token bucket: ``rate`` refills/s up to ``burst`` capacity.

    ``acquire()`` either spends one token (returns None) or reports how many
    seconds until one is available — the value served as ``Retry-After``.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = float(rate)
        self.burst = max(1, int(burst if burst is not None else -(-rate // 1)))
        self._clock = clock
        self._tokens = float(self.burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def acquire(self) -> Optional[float]:
        with self._lock:
            now = self._clock()
            self._tokens = min(
                float(self.burst), self._tokens + (now - self._updated) * self.rate
            )
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return None
            return (1.0 - self._tokens) / self.rate
