"""Long-lived campaign service: submit / poll / fetch over HTTP.

The service wraps the :mod:`repro.runner` campaign machinery in a
long-running process, turning the batch "expand a grid and wait" workflow
into an on-demand one:

* :mod:`~repro.service.jobs` — the job model and a persistent, deduplicating
  :class:`JobQueue` (job id = campaign fingerprint).
* :mod:`~repro.service.worker` — :class:`JobWorker` threads that execute
  claimed jobs with ``run_campaign(..., resume=True)`` and divide the global
  worker budgets across concurrent jobs.
* :mod:`~repro.service.api` — :class:`CampaignService`, the stdlib
  ``ThreadingHTTPServer`` JSON API (``repro serve``): bearer-token auth,
  per-token rate limits and quotas, job priorities, and a
  ``/v1/jobs/<id>/stream`` long-poll progress feed.
* :mod:`~repro.service.auth` — the tokens-file registry (submit/admin
  roles, per-token limits, live-reload revocation) and the token bucket.
* :mod:`~repro.service.client` — :class:`ServiceClient`, the stdlib HTTP
  client behind ``repro submit / status / watch / fetch / cancel``, with
  typed errors (:class:`AuthError`, :class:`ThrottledError`, ...) and
  opt-in transient-failure retries for the fleet worker loop.

Scaling out: ``repro serve --fleet`` swaps the in-process worker for the
:mod:`repro.fleet` coordinator, whose task leases and artifact object
store let N ``repro work`` drainer processes share the queue.

Restart safety: job state persists under the service's state directory and
every job's results live in its own JSONL store, so a killed service picks
its queue back up on restart and resumes in-flight jobs without re-running
finished tasks.
"""

from .api import CampaignService
from .auth import TokenBucket, TokenInfo, TokenRegistry
from .client import (
    AuthError,
    DEFAULT_SERVICE_URL,
    NotFoundError,
    SERVICE_TOKEN_ENV,
    SERVICE_URL_ENV,
    ServiceClient,
    ServiceError,
    ThrottledError,
)
from .jobs import ACTIVE_STATUSES, Job, JobQueue, QuotaError, TERMINAL_STATUSES
from .worker import JobWorker

__all__ = [
    "ACTIVE_STATUSES",
    "AuthError",
    "CampaignService",
    "DEFAULT_SERVICE_URL",
    "Job",
    "JobQueue",
    "JobWorker",
    "NotFoundError",
    "QuotaError",
    "SERVICE_TOKEN_ENV",
    "SERVICE_URL_ENV",
    "ServiceClient",
    "ServiceError",
    "ThrottledError",
    "TERMINAL_STATUSES",
    "TokenBucket",
    "TokenInfo",
    "TokenRegistry",
]
