"""Job status constants shared by the queue and the HTTP client.

Lives in its own dependency-free module so :mod:`repro.service.client`
(which deliberately avoids importing the runner stack) and
:mod:`repro.service.jobs` agree on the state machine by construction.
"""

#: Statuses a restarted service must pick back up.
ACTIVE_STATUSES = ("queued", "running")

#: Statuses that end a job: polling stops, fetch keeps working, and a
#: duplicate submission of a ``failed``/``cancelled`` spec re-enqueues it.
TERMINAL_STATUSES = ("done", "failed", "cancelled")
