"""Job status constants and error codes shared by the queue and the client.

Lives in its own dependency-free module so :mod:`repro.service.client`
(which deliberately avoids importing the runner stack) and
:mod:`repro.service.jobs` agree on the state machine — and on the error
vocabulary — by construction.
"""

#: Statuses a restarted service must pick back up.
ACTIVE_STATUSES = ("queued", "running")

#: Statuses that end a job: polling stops, fetch keeps working, and a
#: duplicate submission of a ``failed``/``cancelled`` spec re-enqueues it.
TERMINAL_STATUSES = ("done", "failed", "cancelled")

# ----------------------------------------------------------------------
# Machine-readable error codes.  Every non-2xx service response carries
# ``{"error": {"code": <one of these>, "message": ...}}``; the client maps
# them onto typed exceptions.

ERR_UNAUTHORIZED = "unauthorized"  # 401: missing, unknown or revoked token
ERR_FORBIDDEN = "forbidden"  # 403: authenticated but not allowed
ERR_RATE_LIMITED = "rate_limited"  # 429: submit token bucket empty
ERR_QUOTA_EXCEEDED = "quota_exceeded"  # 429: per-token job quota reached
ERR_NOT_FOUND = "not_found"  # 404: unknown job or route
ERR_METHOD_NOT_ALLOWED = "method_not_allowed"  # 405
ERR_INVALID_REQUEST = "invalid_request"  # 400: malformed JSON / params
ERR_PAYLOAD_TOO_LARGE = "payload_too_large"  # 413: body exceeds the cap
ERR_INVALID_SPEC = "invalid_spec"  # 400: spec failed validation
ERR_INTERNAL = "internal"  # 500: handler bug

# Fleet (PR 8): task leases and the artifact object store.
ERR_CONFLICT = "conflict"  # 409: completion contradicts the lease (fingerprint)
ERR_LEASE_EXPIRED = "lease_expired"  # 410: lease expired/released/reassigned
ERR_INTEGRITY = "integrity_mismatch"  # 422: artifact body fails its digest check
