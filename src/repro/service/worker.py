"""Worker threads that drain the job queue through ``run_campaign``.

Each worker slot claims one job at a time and executes it with
``run_campaign(..., resume=True)`` against the job's own result store, so a
service restart (or a failed-job resubmission) re-runs only the tasks that
never finished.  Worker budgets divide the machine instead of oversubscribing
it:

* the **intra-task** budget (``REPRO_INTRA_WORKERS`` or the service's
  ``intra_workers`` option) is split evenly across the ``job_slots``
  concurrent jobs, and ``run_campaign`` further divides each job's share
  across its task processes;
* the **task-process** count per job defaults to ``cpu_count // job_slots``
  so two concurrent jobs on an 8-core box get 4 processes each.

Between jobs the worker garbage-collects the artifact cache under the
service's ``cache_max_bytes`` / ``cache_max_age_s`` budget (on top of the
``REPRO_CACHE_MAX_BYTES`` env budget that ``run_campaign`` already honours),
so a long-lived service never grows its cache without bound.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, List, Optional

from ..obs import MetricsRegistry, emit, emit_span, tag_context
from ..parallel import intra_worker_budget
from ..runner.cache import ArtifactCache, default_cache_dir
from ..runner.executor import run_campaign
from ..runner.store import ResultStore
from .jobs import Job, JobQueue

__all__ = ["JobWorker"]


class JobWorker:
    """``job_slots`` daemon threads running queued jobs to completion."""

    def __init__(
        self,
        queue: JobQueue,
        *,
        job_slots: int = 1,
        task_workers: Optional[int] = None,
        intra_workers: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
        use_cache: bool = True,
        cache_max_bytes: Optional[int] = None,
        cache_max_age_s: Optional[float] = None,
        echo: Optional[Callable[[str], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
        on_job_finished: Optional[Callable[[Job], None]] = None,
    ):
        self.queue = queue
        #: Fired after a job reaches a terminal status with records on disk
        #: (the service hangs its warehouse ingest here).  Exceptions are
        #: swallowed: post-processing must never change a job's outcome.
        self.on_job_finished = on_job_finished
        #: Shared with the queue/service in production; ``/metricsz`` renders
        #: the busy-slot gauge from here.
        self.metrics = metrics if metrics is not None else queue.metrics
        self.job_slots = max(1, int(job_slots))
        cpus = os.cpu_count() or 2
        if task_workers is not None:
            self.task_workers = max(1, int(task_workers))
        else:
            self.task_workers = max(1, cpus // self.job_slots)
        total_intra = (
            intra_worker_budget() if intra_workers is None else max(1, int(intra_workers))
        )
        #: Each concurrent job's share of the global intra-task budget.
        self.intra_share = max(1, total_intra // self.job_slots)
        self.cache_dir = cache_dir if cache_dir is not None else default_cache_dir()
        self.use_cache = use_cache
        self.cache_max_bytes = cache_max_bytes
        self.cache_max_age_s = cache_max_age_s
        self.echo = echo if echo is not None else (lambda message: None)
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        # A previous stop() may have timed out with a worker still draining
        # its job; never spawn fresh threads alongside it (the stop event is
        # still set, so the straggler exits after its job) — doubling up
        # would oversubscribe every budget the slots were divided by.
        self._threads = [t for t in self._threads if t.is_alive()]
        if self._threads:
            return
        self._stop.clear()
        for slot in range(self.job_slots):
            thread = threading.Thread(
                target=self._run_loop, name=f"repro-job-worker-{slot}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Stop claiming new jobs and wait for in-flight ones to finish.

        A thread that outlives ``timeout`` (a long task mid-run) is kept in
        the roster so a later :meth:`start` cannot stack new workers on top
        of it; it exits on its own once the current job completes.
        """
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = [t for t in self._threads if t.is_alive()]

    def _run_loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.claim(timeout=0.2)
            if job is not None:
                self.metrics.add_gauge("repro_service_workers_busy", 1.0)
                try:
                    self.run_job(job)
                finally:
                    self.metrics.add_gauge("repro_service_workers_busy", -1.0)
                # After the busy window: the job already has its terminal
                # status, so ingest/GC latency never shows up as a busy slot.
                self._notify_finished(job)
                self._gc_between_jobs()

    def _log(self, message: str, *, job: Optional[Job] = None, **fields) -> None:
        emit(
            self.echo,
            message,
            component="worker",
            job_id=job.job_id if job is not None else None,
            **fields,
        )

    # ------------------------------------------------------------------
    def run_job(self, job: Job) -> None:
        """Execute one claimed job to a terminal status.  Never raises."""
        self._log(
            f"job {job.job_id} ({job.spec.name}): starting",
            job=job,
            name=job.spec.name,
        )
        if job.started_at is not None:
            # The job-scope queue wait (submission -> claim); the campaign
            # merges it into the job store's telemetry rollup.
            emit_span(
                "queue_wait",
                ts=job.submitted_at,
                dur=job.started_at - job.submitted_at,
                scope="job",
                job=job.job_id,
            )
        try:
            tasks = job.spec.expand()
        except Exception as exc:  # noqa: BLE001 - job isolation is the contract
            self.queue.finish(job, "failed", error=f"{type(exc).__name__}: {exc}")
            return
        if not tasks:
            self.queue.finish(job, "failed", error="campaign expanded to zero tasks")
            return
        self.queue.set_total(job, len(tasks))
        store = ResultStore(job.store_path)
        try:
            with tag_context(job=job.job_id):
                results = run_campaign(
                    tasks,
                    workers=self.task_workers,
                    serial=self.task_workers <= 1,
                    cache_dir=self.cache_dir,
                    use_cache=self.use_cache,
                    store=store,
                    resume=True,
                    intra_workers=self.intra_share,
                    # Campaign progress lines inherit the job id and honour
                    # REPRO_LOG=json like every other service log line.
                    echo=lambda message: emit(
                        self.echo, message, component="campaign", job_id=job.job_id
                    ),
                    cancel=job.cancel_event.is_set,
                    # index/total flow into the job's event feed so stream
                    # clients can render "k/n" progress without re-deriving it.
                    on_result=lambda index, total, result: self.queue.record_progress(
                        job, result, index=index, total=total
                    ),
                )
        except Exception as exc:  # noqa: BLE001 - job isolation is the contract
            self.queue.finish(job, "failed", error=f"{type(exc).__name__}: {exc}")
            return
        cancelled = [r for r in results if r.status == "cancelled"]
        failed = [r for r in results if not r.ok and r.status != "cancelled"]
        if cancelled:
            self.queue.finish(
                job,
                "cancelled",
                error=f"cancelled with {len(cancelled)} task(s) unfinished",
            )
        elif failed:
            self.queue.finish(
                job,
                "failed",
                error=f"{len(failed)} of {len(results)} task(s) failed: "
                + "; ".join(f"{r.task_id}: {r.error}" for r in failed[:3]),
            )
        else:
            self.queue.finish(job, "done")
        self._log(
            f"job {job.job_id} ({job.spec.name}): {job.status}",
            job=job,
            status=job.status,
        )

    def _notify_finished(self, job: Job) -> None:
        if self.on_job_finished is None:
            return
        try:
            self.on_job_finished(job)
        except Exception as exc:  # noqa: BLE001 - never change a job's outcome
            self._log(
                f"job {job.job_id}: post-finish hook failed: {exc}",
                job=job,
                error=str(exc),
            )

    def _gc_between_jobs(self) -> None:
        """Bound the artifact cache while the service idles between jobs."""
        if self.cache_max_bytes is None and self.cache_max_age_s is None:
            return
        if not self.use_cache:
            return
        cache = ArtifactCache(self.cache_dir)
        evicted = cache.gc(
            max_bytes=self.cache_max_bytes, max_age_s=self.cache_max_age_s
        )
        if evicted:
            freed = sum(entry.size_bytes for entry in evicted)
            self._log(
                f"cache gc: evicted {len(evicted)} artifact(s), {freed} bytes",
                evicted=len(evicted),
                freed_bytes=freed,
            )
