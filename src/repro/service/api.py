"""HTTP JSON API of the campaign service (stdlib ``http.server`` only).

Endpoints (all JSON)::

    GET    /healthz                  liveness + per-status job counts
    GET    /v1/jobs                  every known job, oldest first
    POST   /v1/jobs                  submit {"spec": {...CampaignSpec...}}
    GET    /v1/jobs/<id>             job status + task-completion progress
    GET    /v1/jobs/<id>/report      deterministic rendered paper-table report
    GET    /v1/jobs/<id>/records     raw ResultStore records (all history)
    POST   /v1/jobs/<id>/cancel      request cancellation
    DELETE /v1/jobs/<id>             alias for cancel

Error contract: 400 for malformed JSON or an invalid spec (the ``error``
field carries the validation message), 404 for unknown jobs/routes, 405 for
wrong methods.  Submissions dedupe by campaign fingerprint: the response's
``created`` field says whether a new job was enqueued or an existing one
returned.

The server is a ``ThreadingHTTPServer`` so status polls are served while
jobs run; campaign execution itself happens on the
:class:`~repro.service.worker.JobWorker` threads, never on request threads.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from ..runner.campaign import CampaignSpec
from ..runner.store import ResultStore, render_report
from .jobs import JobQueue
from .worker import JobWorker

__all__ = ["CampaignService"]


class _ApiError(Exception):
    """An error with an HTTP status, rendered as ``{"error": ...}``."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`CampaignService`."""

    server_version = "repro-service"
    protocol_version = "HTTP/1.1"

    # The ThreadingHTTPServer subclass below carries the service reference.
    @property
    def service(self) -> "CampaignService":
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        self.service.echo(f"http: {format % args}")

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")

    def _handle(self, method: str) -> None:
        try:
            # Always drain the request body, even on routes that ignore it:
            # leaving unread bytes in rfile desynchronises HTTP/1.1
            # keep-alive connections (the next request would be parsed from
            # the middle of this one's body).
            self._body = self._read_body()
            status, payload = self._route(method)
        except _ApiError as exc:
            status, payload = exc.status, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - a handler bug must not kill the server
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # ------------------------------------------------------------------
    def _route(self, method: str) -> Tuple[int, Dict[str, object]]:
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok", "jobs": self.service.queue.counts()}
        if path == "/v1/jobs":
            if method == "GET":
                return 200, {
                    "jobs": [job.snapshot() for job in self.service.queue.jobs()]
                }
            if method == "POST":
                return self._submit()
            raise _ApiError(405, f"{method} not allowed on {path}")
        if path.startswith("/v1/jobs/"):
            return self._job_route(method, path[len("/v1/jobs/"):])
        raise _ApiError(404, f"no route {method} {path}")

    def _job_route(self, method: str, tail: str) -> Tuple[int, Dict[str, object]]:
        parts = tail.split("/")
        job_id, action = parts[0], "/".join(parts[1:])
        job = self.service.queue.get(job_id)
        if job is None:
            raise _ApiError(404, f"unknown job {job_id!r}")
        if method == "DELETE" and not action:
            self.service.queue.cancel(job_id)
            return 200, {"job": job.snapshot()}
        if method == "POST" and action == "cancel":
            self.service.queue.cancel(job_id)
            return 200, {"job": job.snapshot()}
        if method != "GET":
            raise _ApiError(405, f"{method} not allowed on /v1/jobs/{tail}")
        if not action:
            return 200, {"job": job.snapshot()}
        store = ResultStore(job.store_path)
        if action == "report":
            records = list(store.latest().values())
            return 200, {
                "job_id": job.job_id,
                "status": job.status,
                "report": render_report(records),
            }
        if action == "records":
            return 200, {"job_id": job.job_id, "records": store.load()}
        raise _ApiError(404, f"no route GET /v1/jobs/{tail}")

    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise _ApiError(400, "invalid Content-Length") from None
        return self.rfile.read(length) if length > 0 else b""

    def _submit(self) -> Tuple[int, Dict[str, object]]:
        try:
            payload = json.loads(self._body.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _ApiError(400, f"request body is not valid JSON: {exc}") from None
        if isinstance(payload, dict) and "spec" in payload:
            payload = payload["spec"]
        try:
            spec = CampaignSpec.from_json_dict(payload)
            job, created = self.service.queue.submit(spec)
        except (TypeError, ValueError) as exc:
            # TypeError covers payload shapes the converters cannot even
            # begin to coerce; it is a client error, not a server fault.
            raise _ApiError(400, f"invalid campaign spec: {exc}") from None
        return (201 if created else 200), {"job": job.snapshot(), "created": created}


class _ServiceServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, service: "CampaignService"):
        super().__init__(address, handler)
        self.service = service


class CampaignService:
    """The long-lived campaign service: queue + workers + HTTP server.

    ``port=0`` binds an ephemeral port (useful for tests); the bound address
    is available as :attr:`url` after :meth:`start`.  Usable as a context
    manager::

        with CampaignService("runs/service", port=0) as service:
            client = ServiceClient(service.url)
            ...
    """

    def __init__(
        self,
        state_dir: os.PathLike,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        job_slots: int = 1,
        task_workers: Optional[int] = None,
        intra_workers: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
        use_cache: bool = True,
        cache_max_bytes: Optional[int] = None,
        cache_max_age_s: Optional[float] = None,
        echo: Optional[Callable[[str], None]] = None,
    ):
        self.echo = echo if echo is not None else (lambda message: None)
        self.host = host
        self._requested_port = port
        self.queue = JobQueue(state_dir)
        self.recovered: List[str] = self.queue.recover()
        self.worker = JobWorker(
            self.queue,
            job_slots=job_slots,
            task_workers=task_workers,
            intra_workers=intra_workers,
            cache_dir=cache_dir,
            use_cache=use_cache,
            cache_max_bytes=cache_max_bytes,
            cache_max_age_s=cache_max_age_s,
            echo=self.echo,
        )
        self._httpd: Optional[_ServiceServer] = None
        self._http_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "CampaignService":
        if self._httpd is not None:
            return self
        self.worker.start()
        self._httpd = _ServiceServer(
            (self.host, self._requested_port), _ServiceHandler, self
        )
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-service-http", daemon=True
        )
        self._http_thread.start()
        if self.recovered:
            self.echo(f"recovered {len(self.recovered)} unfinished job(s)")
        self.echo(f"serving on {self.url}")
        return self

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._http_thread is not None:
            self._http_thread.join(timeout)
            self._http_thread = None
        self.worker.stop(timeout)

    def __enter__(self) -> "CampaignService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
