"""HTTP JSON API of the campaign service (stdlib ``http.server`` only).

Endpoints (JSON unless noted)::

    GET    /healthz                  liveness (always open; job counts are
                                     included only when auth is off)
    GET    /metricsz                 Prometheus text format telemetry
                                     (admin token required when auth is on)
    GET    /v1/jobs                  known jobs, oldest first (admins see all,
                                     submit-role tokens see their own)
    POST   /v1/jobs                  submit {"spec": {...CampaignSpec...}}
    GET    /v1/jobs/<id>             job status + task-completion progress
    GET    /v1/jobs/<id>/report      deterministic rendered paper-table report
    GET    /v1/jobs/<id>/records     raw ResultStore records (all history)
    GET    /v1/jobs/<id>/stream      long-poll progress feed
                                     (``?since=<cursor>&timeout=<seconds>``)
    POST   /v1/jobs/<id>/cancel      request cancellation
    DELETE /v1/jobs/<id>             alias for cancel

Warehouse endpoints (cross-campaign queries over every job's records;
finished job stores are ingested automatically and any not-yet-ingested
tail is picked up lazily on query)::

    GET    /v1/warehouse/query       ?scheme=&attack=&suite=&status=&target=
                                     &since=&limit=  filtered records; add
                                     ``aggregate=1[&group_by=a,b]`` for
                                     streamed group averages instead.
                                     Non-admin tokens see only records from
                                     jobs they own (same masking rule as
                                     /v1/jobs); worker tokens are refused.
    GET    /v1/warehouse/usage       per-tenant rollup (jobs, records, task
                                     seconds); non-admins see their own row
    GET    /v1/warehouse/stats       shard/index/compaction stats (admin)
    POST   /v1/warehouse/compact     fold superseded records now (admin)

Fleet endpoints (worker or admin token; ``/v1/tasks`` requires the service
to run with ``--fleet``)::

    GET    /v1/jobs/<id>/spec        campaign spec for task re-expansion
    POST   /v1/tasks/lease           {"worker", "limit", "ttl_s"} -> leases
    POST   /v1/tasks/<lease>/heartbeat  renew before the deadline
    POST   /v1/tasks/<lease>/complete   {"worker", "result": {...}}
    POST   /v1/tasks/<lease>/release    give the task back unfinished
    GET    /v1/artifacts/<kind>/<key>   raw artifact bytes (X-Repro-Digest)
    PUT    /v1/artifacts/<kind>/<key>   upload (digest-checked, 422 on
                                        mismatch; streamed, own size cap)

Error contract: every non-2xx response body is
``{"error": {"code": <machine-readable>, "message": <human-readable>}}``
(codes in :mod:`repro.service.status`).  400 for malformed JSON or an
invalid spec, 401 for a missing/unknown/revoked token, 403 for a role
violation (e.g. a priority above the caller's cap), 404 for unknown jobs
and routes — and for jobs the caller cannot see, indistinguishably, since
job ids are computable fingerprints and a bare 403 would leak which specs
other tenants run, 405 for wrong methods,
429 — always with a ``Retry-After`` header — when the submit rate limit or
a per-token quota rejects a submission.  Submissions dedupe by campaign
fingerprint: the response's ``created`` field says whether a new job was
enqueued or an existing one returned.

Authentication is optional: without a tokens file the service is open (every
request acts as an anonymous admin, as in earlier releases) but the
service-wide rate limit and quotas, if configured, still apply.  With a
tokens file, every ``/v1`` request needs ``Authorization: Bearer <token>``;
``/healthz`` stays open for liveness probes.

The server is a ``ThreadingHTTPServer`` so status polls and long-poll
streams are served while jobs run; campaign execution itself happens on the
:class:`~repro.service.worker.JobWorker` threads, never on request threads.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs

from ..fleet.leases import LeaseError
from ..obs import MetricsRegistry, emit
from ..runner.cache import ArtifactCache, default_cache_dir, parse_size
from ..runner.campaign import CampaignSpec
from ..runner.store import ResultStore, render_report
from ..warehouse import (
    CompactionThread,
    Warehouse,
    aggregate_stream,
    build_filter,
    ingest_store,
    parse_since,
)
from . import status as codes
from .auth import TokenBucket, TokenInfo, TokenRegistry
from .jobs import Job, JobQueue, QuotaError
from .worker import JobWorker

__all__ = ["CampaignService"]

#: Cap on the server-side long-poll wait; clients re-issue to wait longer.
STREAM_MAX_WAIT_S = 30.0

#: Cap on artifact uploads (bodies are streamed to disk, never buffered, so
#: this can be far above MAX_BODY_BYTES).  Override with the env var.
ARTIFACT_MAX_BYTES_ENV = "REPRO_ARTIFACT_MAX_BYTES"
DEFAULT_ARTIFACT_MAX_BYTES = 1024 * 1024 * 1024

#: Streaming chunk for artifact transfers.
_ARTIFACT_CHUNK = 1024 * 1024

#: Cap on request bodies, enforced *before* buffering: campaign specs are a
#: few KB, so anything near this is hostile.  Without the cap a tokenless
#: client could OOM the service with one giant Content-Length — exactly the
#: resource-exhaustion class the auth/rate-limit layer exists to close.
MAX_BODY_BYTES = 8 * 1024 * 1024


class _ApiError(Exception):
    """An error with an HTTP status, rendered as the structured JSON body."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retry_after_s: Optional[float] = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after_s = retry_after_s


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`CampaignService`."""

    server_version = "repro-service"
    protocol_version = "HTTP/1.1"

    # The ThreadingHTTPServer subclass below carries the service reference.
    @property
    def service(self) -> "CampaignService":
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        emit(self.service.echo, f"http: {format % args}", component="http")

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")

    def do_PUT(self) -> None:  # noqa: N802
        self._handle("PUT")

    def _handle(self, method: str) -> None:
        headers: Dict[str, str] = {}
        content_type = "application/json"
        self._extra_headers: Dict[str, str] = {}
        try:
            # Always drain the request body, even on routes that ignore it:
            # leaving unread bytes in rfile desynchronises HTTP/1.1
            # keep-alive connections (the next request would be parsed from
            # the middle of this one's body).  Artifact uploads are the one
            # exception: their bodies can dwarf MAX_BODY_BYTES, so the
            # route streams rfile straight to disk instead of buffering.
            if method == "PUT" and self.path.startswith("/v1/artifacts/"):
                self._body = b""
            else:
                self._body = self._read_body()
            # Routes return (status, payload) or, for non-JSON responses
            # such as /metricsz, (status, text, content_type).
            routed = self._route(method)
            if len(routed) == 3:
                status, payload, content_type = routed  # type: ignore[misc]
            else:
                status, payload = routed  # type: ignore[misc]
        except _ApiError as exc:
            status = exc.status
            payload = {"error": {"code": exc.code, "message": str(exc)}}
            if exc.retry_after_s is not None:
                headers["Retry-After"] = str(max(1, math.ceil(exc.retry_after_s)))
        except Exception as exc:  # noqa: BLE001 - a handler bug must not kill the server
            status = 500
            payload = {
                "error": {
                    "code": codes.ERR_INTERNAL,
                    "message": f"{type(exc).__name__}: {exc}",
                }
            }
        if isinstance(payload, (bytes, bytearray)):
            body = bytes(payload)
        elif isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = json.dumps(payload).encode("utf-8")
        self.service.metrics.inc(
            "repro_service_http_requests_total", method=method, status=status
        )
        headers.update(self._extra_headers)
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-response — routine for long-poll stream
            # consumers that lose interest; never let it unwind the handler.
            self.close_connection = True

    # ------------------------------------------------------------------
    def _identity(self) -> TokenInfo:
        """The caller's grant; raises 401 when auth is on and absent/bad."""
        registry = self.service.auth
        if registry is None:
            return self.service.anonymous
        header = self.headers.get("Authorization") or ""
        if not header.startswith("Bearer "):
            raise _ApiError(
                401,
                codes.ERR_UNAUTHORIZED,
                "missing bearer token (Authorization: Bearer <token>)",
            )
        info = registry.lookup(header[len("Bearer "):].strip())
        if info is None:
            raise _ApiError(401, codes.ERR_UNAUTHORIZED, "unknown or revoked token")
        return info

    def _snapshot_for(
        self, job: Job, identity: TokenInfo
    ) -> Dict[str, object]:
        """Job snapshot with co-owner names redacted for non-admins.

        The 404 masking in :meth:`_visible_job` exists so tenants cannot
        learn what specs others run; an unredacted ``owners`` list would
        reopen that hole (submit a spec, read the co-owners off the deduped
        response).
        """
        snapshot = job.snapshot()
        if not identity.is_admin:
            snapshot["owners"] = [
                owner for owner in snapshot["owners"] if owner == identity.name
            ]
        return snapshot

    def _visible_job(self, job_id: str, identity: TokenInfo) -> Job:
        job = self.service.queue.get(job_id)
        # Another tenant's job answers exactly like a nonexistent one: job
        # ids are computable offline (truncated campaign fingerprints), so a
        # distinguishable 403 would let any token probe whether someone else
        # already submitted a given spec.
        if job is None or (not identity.is_admin and not job.owned_by(identity.name)):
            raise _ApiError(404, codes.ERR_NOT_FOUND, f"unknown job {job_id!r}")
        return job

    def _query(self) -> Dict[str, str]:
        if "?" not in self.path:
            return {}
        return {
            key: values[-1]
            for key, values in parse_qs(self.path.split("?", 1)[1]).items()
        }

    # ------------------------------------------------------------------
    def _route(self, method: str) -> Tuple:
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/healthz" and method == "GET":
            payload: Dict[str, object] = {
                "status": "ok",
                "auth": self.service.auth is not None,
            }
            # Workload counts only in open mode: with auth on, a tokenless
            # probe gets liveness and nothing about other tenants' jobs.
            if self.service.auth is None:
                payload["jobs"] = self.service.queue.counts()
            return 200, payload
        if path == "/metricsz" and method == "GET":
            # Operational counters reveal workload shape (job counts,
            # per-principal quota rejections); behind auth, only admins see
            # them — the same visibility rule as the full job listing.
            identity = self._identity()
            if not identity.is_admin:
                raise _ApiError(
                    403, codes.ERR_FORBIDDEN, "metrics require an admin token"
                )
            return (
                200,
                self.service.render_metrics(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if path == "/v1/jobs":
            identity = self._identity()
            if method == "GET":
                owner = None if identity.is_admin else identity.name
                return 200, {
                    "jobs": [
                        self._snapshot_for(job, identity)
                        for job in self.service.queue.jobs(owner)
                    ]
                }
            if method == "POST":
                return self._submit(identity)
            raise _ApiError(
                405, codes.ERR_METHOD_NOT_ALLOWED, f"{method} not allowed on {path}"
            )
        if path.startswith("/v1/jobs/"):
            return self._job_route(method, path[len("/v1/jobs/"):])
        if path == "/v1/tasks/lease" or path.startswith("/v1/tasks/"):
            return self._task_route(method, path[len("/v1/tasks/"):])
        if path.startswith("/v1/warehouse"):
            return self._warehouse_route(method, path)
        if path.startswith("/v1/artifacts/"):
            return self._artifact_route(method, path[len("/v1/artifacts/"):])
        raise _ApiError(404, codes.ERR_NOT_FOUND, f"no route {method} {path}")

    # ------------------------------------------------------------------
    # Warehouse: cross-campaign queries
    def _warehouse_route(self, method: str, path: str) -> Tuple:
        identity = self._identity()
        if identity.is_worker and not identity.is_admin:
            # Worker tokens exist to lease tasks and move artifacts; letting
            # one read every tenant's records would cross the same line the
            # job-route 404 masking draws.
            raise _ApiError(
                403, codes.ERR_FORBIDDEN, "warehouse routes refuse worker tokens"
            )
        if path == "/v1/warehouse/query" and method == "GET":
            return self._warehouse_query(identity)
        if path == "/v1/warehouse/usage" and method == "GET":
            return self._warehouse_usage(identity)
        if path == "/v1/warehouse/stats" and method == "GET":
            self._require_admin(identity, "warehouse stats")
            self.service.refresh_warehouse()
            return 200, {"stats": self.service.warehouse.stats()}
        if path == "/v1/warehouse/compact" and method == "POST":
            self._require_admin(identity, "warehouse compaction")
            self.service.refresh_warehouse()
            return 200, {"result": self.service.warehouse.compact()}
        raise _ApiError(404, codes.ERR_NOT_FOUND, f"no route {method} {path}")

    def _require_admin(self, identity: TokenInfo, what: str) -> None:
        if not identity.is_admin:
            raise _ApiError(
                403, codes.ERR_FORBIDDEN, f"{what} requires an admin token"
            )

    def _warehouse_filter(self, identity: TokenInfo, params: Dict[str, str]):
        """Build the envelope predicate, ownership masking included."""
        since = None
        if "since" in params:
            try:
                since = parse_since(params["since"])
            except ValueError as exc:
                raise _ApiError(400, codes.ERR_INVALID_REQUEST, str(exc)) from None
        sources = None
        if not identity.is_admin:
            # Same visibility rule as /v1/jobs: a tenant queries across the
            # jobs it owns and nothing else — including nothing that would
            # reveal whether other sources exist.
            sources = [
                job.job_id for job in self.service.queue.jobs(identity.name)
            ]
        return build_filter(
            scheme=params.get("scheme"),
            attack=params.get("attack"),
            suite=params.get("suite"),
            status=params.get("status"),
            target=params.get("target"),
            since=since,
            sources=sources,
        )

    def _warehouse_query(self, identity: TokenInfo) -> Tuple[int, Dict[str, object]]:
        params = self._query()
        self.service.refresh_warehouse()
        where = self._warehouse_filter(identity, params)
        warehouse = self.service.warehouse
        if params.get("aggregate") in ("1", "true", "yes"):
            group_by = tuple(
                field.strip()
                for field in params.get("group_by", "scheme,suite,technology").split(",")
                if field.strip()
            )
            if not group_by:
                raise _ApiError(
                    400, codes.ERR_INVALID_REQUEST, "empty group_by"
                )
            return 200, {
                "groups": aggregate_stream(
                    warehouse.iter_records(where), group_by=group_by
                ),
                "group_by": list(group_by),
            }
        try:
            limit = int(params.get("limit", 1000))
        except ValueError:
            raise _ApiError(
                400, codes.ERR_INVALID_REQUEST, "limit must be an integer"
            ) from None
        if limit <= 0:
            raise _ApiError(
                400, codes.ERR_INVALID_REQUEST, "limit must be positive"
            )
        records: List[Dict[str, object]] = []
        truncated = False
        for record in warehouse.iter_records(where):
            if len(records) >= limit:
                truncated = True
                break
            records.append(record)
        return 200, {
            "records": records,
            "count": len(records),
            "truncated": truncated,
        }

    def _warehouse_usage(self, identity: TokenInfo) -> Tuple[int, Dict[str, object]]:
        self.service.refresh_warehouse()
        counts = self.service.warehouse.records_by_source()
        usage: Dict[str, Dict[str, object]] = {}
        for job in self.service.queue.jobs(None):
            for owner in job.owners or ["anonymous"]:
                row = usage.setdefault(
                    owner,
                    {
                        "jobs": 0,
                        "records": 0,
                        "tasks_done": 0,
                        "tasks_wall_s": 0.0,
                    },
                )
                row["jobs"] = int(row["jobs"]) + 1
                row["records"] = int(row["records"]) + counts.get(job.job_id, 0)
                row["tasks_done"] = int(row["tasks_done"]) + job.tasks_done
                row["tasks_wall_s"] = float(row["tasks_wall_s"]) + job.tasks_wall_s
        if not identity.is_admin:
            usage = {
                owner: row for owner, row in usage.items()
                if owner == identity.name
            }
        return 200, {"usage": usage}

    # ------------------------------------------------------------------
    # Fleet: lease lifecycle
    def _require_worker(self, identity: TokenInfo) -> None:
        if not identity.is_worker:
            raise _ApiError(
                403,
                codes.ERR_FORBIDDEN,
                "fleet endpoints require a worker or admin token",
            )

    def _fleet(self):
        fleet = self.service.fleet
        if fleet is None:
            raise _ApiError(
                404,
                codes.ERR_NOT_FOUND,
                "fleet mode is disabled (start the service with --fleet)",
            )
        return fleet

    def _json_body(self) -> Dict[str, object]:
        try:
            payload = json.loads(self._body.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _ApiError(
                400,
                codes.ERR_INVALID_REQUEST,
                f"request body is not valid JSON: {exc}",
            ) from None
        if not isinstance(payload, dict):
            raise _ApiError(
                400, codes.ERR_INVALID_REQUEST, "request body must be a JSON object"
            )
        return payload

    def _task_route(self, method: str, tail: str) -> Tuple[int, Dict[str, object]]:
        identity = self._identity()
        self._require_worker(identity)
        fleet = self._fleet()
        if method != "POST":
            raise _ApiError(
                405,
                codes.ERR_METHOD_NOT_ALLOWED,
                f"{method} not allowed on /v1/tasks/{tail}",
            )
        payload = self._json_body()
        worker = payload.get("worker")
        if not isinstance(worker, str) or not worker:
            raise _ApiError(
                400, codes.ERR_INVALID_REQUEST, "'worker' must be a non-empty string"
            )
        if tail == "lease":
            limit = payload.get("limit", 1)
            if isinstance(limit, bool) or not isinstance(limit, int) or limit < 1:
                raise _ApiError(
                    400, codes.ERR_INVALID_REQUEST, "'limit' must be a positive integer"
                )
            ttl_s = payload.get("ttl_s")
            if ttl_s is not None and (
                isinstance(ttl_s, bool)
                or not isinstance(ttl_s, (int, float))
                or ttl_s <= 0
            ):
                raise _ApiError(
                    400, codes.ERR_INVALID_REQUEST, "'ttl_s' must be a positive number"
                )
            leases = fleet.claim_leases(worker, limit=limit, ttl_s=ttl_s)
            return 200, {"leases": leases}
        parts = tail.split("/")
        if len(parts) != 2 or parts[1] not in ("heartbeat", "complete", "release"):
            raise _ApiError(
                404, codes.ERR_NOT_FOUND, f"no route {method} /v1/tasks/{tail}"
            )
        lease_id, action = parts
        try:
            if action == "heartbeat":
                return 200, {"lease": fleet.heartbeat(lease_id, worker)}
            if action == "release":
                return 200, {"lease": fleet.release(lease_id, worker)}
            result = payload.get("result")
            if not isinstance(result, dict):
                raise _ApiError(
                    400, codes.ERR_INVALID_REQUEST, "'result' must be a JSON object"
                )
            try:
                return 200, fleet.complete(lease_id, worker, result)
            except ValueError as exc:
                raise _ApiError(
                    400, codes.ERR_INVALID_REQUEST, str(exc)
                ) from None
        except LeaseError as exc:
            raise _ApiError(*self._lease_error(exc)) from None

    @staticmethod
    def _lease_error(exc: LeaseError) -> Tuple[int, str, str]:
        if exc.code == "not_owner":
            return 403, codes.ERR_FORBIDDEN, str(exc)
        if exc.code == "lease_expired":
            return 410, codes.ERR_LEASE_EXPIRED, str(exc)
        return 404, codes.ERR_NOT_FOUND, str(exc)

    # ------------------------------------------------------------------
    # Fleet: artifact object store
    @staticmethod
    def _artifact_coords(tail: str) -> Tuple[str, str]:
        parts = tail.split("/")
        if len(parts) != 2:
            raise _ApiError(
                404, codes.ERR_NOT_FOUND, "artifact routes are /v1/artifacts/<kind>/<key>"
            )
        kind, key = parts
        if not (0 < len(kind) <= 64) or not all(
            c.isalnum() or c in "_-" for c in kind
        ):
            raise _ApiError(400, codes.ERR_INVALID_REQUEST, f"invalid kind {kind!r}")
        if not (8 <= len(key) <= 128) or not all(
            c in "0123456789abcdef" for c in key
        ):
            raise _ApiError(
                400, codes.ERR_INVALID_REQUEST, "key must be a lowercase hex digest"
            )
        return kind, key

    def _artifact_route(self, method: str, tail: str) -> Tuple:
        identity = self._identity()
        self._require_worker(identity)
        kind, key = self._artifact_coords(tail)
        cache = self.service.artifact_cache
        path = cache.path_for(kind, key) if cache.enabled else None
        if path is None:
            raise _ApiError(
                404, codes.ERR_NOT_FOUND, "artifact store disabled (--no-cache)"
            )
        if method == "GET":
            return self._artifact_get(cache, kind, key, path)
        if method == "PUT":
            return self._artifact_put(cache, kind, key, path)
        raise _ApiError(
            405,
            codes.ERR_METHOD_NOT_ALLOWED,
            f"{method} not allowed on /v1/artifacts/{tail}",
        )

    def _artifact_get(self, cache, kind: str, key: str, path) -> Tuple:
        # Shared lock: gc's exclusive scan cannot unlink the file while we
        # read it, so the digest always matches the bytes we ship.
        with cache.lock_guard(shared=True):
            try:
                data = path.read_bytes()
            except OSError:
                self.service.metrics.inc(
                    "repro_fleet_artifact_transfers_total",
                    direction="download",
                    outcome="miss",
                )
                raise _ApiError(
                    404, codes.ERR_NOT_FOUND, f"no {kind} artifact {key[:16]}..."
                ) from None
        self._extra_headers["X-Repro-Digest"] = hashlib.sha256(data).hexdigest()
        self.service.metrics.inc(
            "repro_fleet_artifact_transfers_total",
            direction="download",
            outcome="ok",
        )
        return 200, data, "application/octet-stream"

    def _artifact_put(self, cache, kind: str, key: str, path) -> Tuple:
        expected = (self.headers.get("X-Repro-Digest") or "").strip().lower()
        if not expected or len(expected) != 64 or not all(
            c in "0123456789abcdef" for c in expected
        ):
            self.close_connection = True  # body left unread
            raise _ApiError(
                400,
                codes.ERR_INVALID_REQUEST,
                "artifact uploads require an X-Repro-Digest: <sha256 hex> header",
            )
        try:
            length = int(self.headers.get("Content-Length") or -1)
        except ValueError:
            self.close_connection = True
            raise _ApiError(
                400, codes.ERR_INVALID_REQUEST, "invalid Content-Length"
            ) from None
        if length < 0:
            self.close_connection = True
            raise _ApiError(
                400, codes.ERR_INVALID_REQUEST, "artifact uploads require Content-Length"
            )
        cap = self.service.artifact_max_bytes
        if length > cap:
            self.close_connection = True
            raise _ApiError(
                413,
                codes.ERR_PAYLOAD_TOO_LARGE,
                f"artifact of {length} bytes exceeds the {cap}-byte limit",
            )
        # Stream to a temp file in the destination directory, hashing as we
        # go; only a digest-verified body is renamed into place (atomic,
        # same idempotent last-writer-wins contract as ArtifactCache.put).
        path.parent.mkdir(parents=True, exist_ok=True)
        digest = hashlib.sha256()
        handle, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".upload-", suffix=".tmp"
        )
        received = 0
        try:
            with os.fdopen(handle, "wb") as tmp:
                while received < length:
                    chunk = self.rfile.read(min(_ARTIFACT_CHUNK, length - received))
                    if not chunk:
                        break
                    digest.update(chunk)
                    tmp.write(chunk)
                    received += len(chunk)
            if received != length:
                self.close_connection = True
                raise _ApiError(
                    400, codes.ERR_INVALID_REQUEST, "artifact body truncated"
                )
            if digest.hexdigest() != expected:
                self.service.metrics.inc(
                    "repro_fleet_artifact_transfers_total",
                    direction="upload",
                    outcome="integrity_error",
                )
                raise _ApiError(
                    422,
                    codes.ERR_INTEGRITY,
                    f"artifact body digest {digest.hexdigest()[:16]}... does not "
                    f"match X-Repro-Digest {expected[:16]}...",
                )
            with cache.lock_guard(shared=True):
                os.replace(tmp_name, path)
        finally:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass  # renamed into place (the success path)
        self.service.metrics.inc(
            "repro_fleet_artifact_transfers_total",
            direction="upload",
            outcome="ok",
        )
        return 201, {"stored": True, "kind": kind, "key": key, "bytes": received}

    def _job_route(self, method: str, tail: str) -> Tuple[int, Dict[str, object]]:
        identity = self._identity()
        parts = tail.split("/")
        job_id, action = parts[0], "/".join(parts[1:])
        if action == "spec" and method == "GET" and identity.role == "worker":
            # Drainers hold leases on jobs they do not own; the spec route
            # is how they recover the task objects behind those leases.
            job = self.service.queue.get(job_id)
            if job is None:
                raise _ApiError(404, codes.ERR_NOT_FOUND, f"unknown job {job_id!r}")
        else:
            job = self._visible_job(job_id, identity)
        if method == "DELETE" and not action:
            self.service.queue.cancel(job_id)
            return 200, {"job": self._snapshot_for(job, identity)}
        if method == "POST" and action == "cancel":
            self.service.queue.cancel(job_id)
            return 200, {"job": self._snapshot_for(job, identity)}
        if method != "GET":
            raise _ApiError(
                405,
                codes.ERR_METHOD_NOT_ALLOWED,
                f"{method} not allowed on /v1/jobs/{tail}",
            )
        if not action:
            return 200, {"job": self._snapshot_for(job, identity)}
        if action == "spec":
            return 200, {
                "job_id": job.job_id,
                "spec": job.spec.to_json_dict(),
                "intra_workers": (
                    self.service.fleet.intra_workers
                    if self.service.fleet is not None
                    else 1
                ),
            }
        if action == "stream":
            return self._stream(job, identity)
        store = ResultStore(job.store_path)
        if action == "report":
            style = self._query().get("style", "paper")
            records = list(store.latest().values())
            if style == "matrix":
                from ..runner.matrix import render_matrix_report

                report = render_matrix_report(records)
            elif style == "paper":
                report = render_report(records)
            else:
                raise _ApiError(
                    400,
                    codes.ERR_INVALID_REQUEST,
                    f"unknown report style {style!r}; choose paper or matrix",
                )
            return 200, {
                "job_id": job.job_id,
                "status": job.status,
                "style": style,
                "report": report,
            }
        if action == "records":
            return 200, {"job_id": job.job_id, "records": store.load()}
        raise _ApiError(404, codes.ERR_NOT_FOUND, f"no route GET /v1/jobs/{tail}")

    def _stream(
        self, job: Job, identity: TokenInfo
    ) -> Tuple[int, Dict[str, object]]:
        query = self._query()
        try:
            since = int(query.get("since", 0))
            timeout = float(query.get("timeout", 25.0))
        except ValueError:
            raise _ApiError(
                400,
                codes.ERR_INVALID_REQUEST,
                "stream parameters 'since' and 'timeout' must be numbers",
            ) from None
        timeout = min(max(0.0, timeout), self.service.stream_max_wait_s)
        waited = self.service.queue.wait_events(job.job_id, since=since, timeout=timeout)
        if waited is None:  # job vanished between lookup and wait (impossible today)
            raise _ApiError(404, codes.ERR_NOT_FOUND, f"unknown job {job.job_id!r}")
        events, next_cursor, _ = waited
        return 200, {
            "job": self._snapshot_for(job, identity),
            "events": events,
            "next": next_cursor,
        }

    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise _ApiError(
                400, codes.ERR_INVALID_REQUEST, "invalid Content-Length"
            ) from None
        if length > MAX_BODY_BYTES:
            # Refuse before buffering a single byte.  The unread body makes
            # the connection unusable for keep-alive, so drop it.
            self.close_connection = True
            raise _ApiError(
                413,
                codes.ERR_PAYLOAD_TOO_LARGE,
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
            )
        return self.rfile.read(length) if length > 0 else b""

    def _submit(self, identity: TokenInfo) -> Tuple[int, Dict[str, object]]:
        if identity.role == "worker":
            # Worker tokens execute other tenants' jobs; letting them also
            # submit would collapse the role separation the tokens file
            # draws (a leaked drainer credential must not enqueue work).
            raise _ApiError(
                403, codes.ERR_FORBIDDEN, "worker tokens may not submit jobs"
            )
        retry_after = self.service.throttle_submit(identity)
        if retry_after is not None:
            self.service.metrics.inc(
                "repro_service_throttled_total",
                reason="rate",
                principal=identity.name,
            )
            raise _ApiError(
                429,
                codes.ERR_RATE_LIMITED,
                f"submit rate limit exceeded for {identity.name!r}; "
                f"retry in {retry_after:.2f}s",
                retry_after_s=retry_after,
            )
        try:
            payload = json.loads(self._body.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _ApiError(
                400,
                codes.ERR_INVALID_REQUEST,
                f"request body is not valid JSON: {exc}",
            ) from None
        if isinstance(payload, dict) and "spec" in payload:
            payload = payload["spec"]
        max_queued, max_active = self.service.quota_for(identity)
        try:
            spec = CampaignSpec.from_json_dict(payload)
        except (TypeError, ValueError) as exc:
            raise _ApiError(
                400, codes.ERR_INVALID_SPEC, f"invalid campaign spec: {exc}"
            ) from None
        cap = self.service.priority_cap_for(identity)
        if (
            cap is not None
            and isinstance(spec.priority, int)
            and not isinstance(spec.priority, bool)
            and spec.priority > cap
        ):
            raise _ApiError(
                403,
                codes.ERR_FORBIDDEN,
                f"priority {spec.priority} exceeds the cap {cap} "
                f"for {identity.name!r}",
            )
        try:
            job, created = self.service.queue.submit(
                spec,
                owner=identity.name,
                max_queued=max_queued,
                max_active=max_active,
            )
        except QuotaError as exc:
            self.service.metrics.inc(
                "repro_service_throttled_total",
                reason="quota",
                principal=identity.name,
            )
            raise _ApiError(
                429,
                codes.ERR_QUOTA_EXCEEDED,
                str(exc),
                retry_after_s=exc.retry_after_s,
            ) from None
        except (TypeError, ValueError) as exc:
            # from_json_dict only shape-checks; submit()'s validate() is
            # where bad field values (unknown benchmarks, mistyped config)
            # surface.  Both are client errors, not server faults.
            raise _ApiError(
                400, codes.ERR_INVALID_SPEC, f"invalid campaign spec: {exc}"
            ) from None
        return (201 if created else 200), {
            "job": self._snapshot_for(job, identity),
            "created": created,
        }


class _ServiceServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, service: "CampaignService"):
        super().__init__(address, handler)
        self.service = service


class CampaignService:
    """The long-lived campaign service: queue + workers + HTTP server.

    ``port=0`` binds an ephemeral port (useful for tests); the bound address
    is available as :attr:`url` after :meth:`start`.  Usable as a context
    manager::

        with CampaignService("runs/service", port=0) as service:
            client = ServiceClient(service.url)
            ...

    Traffic shaping:

    * ``tokens_file`` switches on bearer-token auth (see
      :mod:`repro.service.auth` for the file format).  Without it the
      service is open and every request acts as an anonymous admin.
    * ``submit_rate`` / ``submit_burst`` are the default token bucket on
      POST ``/v1/jobs`` per principal; a token entry's own
      ``submit_rate``/``submit_burst`` override them.
    * ``max_queued_per_owner`` / ``max_active_per_owner`` are the default
      per-principal job quotas, likewise overridable per token.
    """

    def __init__(
        self,
        state_dir: os.PathLike,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        job_slots: int = 1,
        task_workers: Optional[int] = None,
        intra_workers: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
        use_cache: bool = True,
        cache_max_bytes: Optional[int] = None,
        cache_max_age_s: Optional[float] = None,
        tokens_file: Optional[os.PathLike] = None,
        submit_rate: Optional[float] = None,
        submit_burst: Optional[int] = None,
        max_queued_per_owner: Optional[int] = None,
        max_active_per_owner: Optional[int] = None,
        max_priority_per_owner: Optional[int] = None,
        stream_max_wait_s: float = STREAM_MAX_WAIT_S,
        fleet: bool = False,
        lease_ttl_s: float = 30.0,
        warehouse_dir: Optional[os.PathLike] = None,
        warehouse_compact_interval_s: float = 60.0,
        warehouse_compact_min_superseded: int = 512,
        echo: Optional[Callable[[str], None]] = None,
    ):
        self.echo = echo if echo is not None else (lambda message: None)
        self.host = host
        self._requested_port = port
        self.auth = (
            None
            if tokens_file is None
            else TokenRegistry(tokens_file, on_error=self.echo)
        )
        #: The grant unauthenticated requests run under when auth is off.
        self.anonymous = TokenInfo(name="anonymous", role="admin")
        self.submit_rate = submit_rate
        self.submit_burst = submit_burst
        self.max_queued_per_owner = max_queued_per_owner
        self.max_active_per_owner = max_active_per_owner
        self.max_priority_per_owner = max_priority_per_owner
        self.stream_max_wait_s = float(stream_max_wait_s)
        #: (principal, rate, burst) -> bucket; see throttle_submit.
        self._buckets: Dict[
            Tuple[str, float, Optional[int]], TokenBucket
        ] = {}
        self._buckets_lock = threading.Lock()
        #: One registry shared by queue, workers and HTTP handlers; the
        #: ``/metricsz`` endpoint renders it (see :meth:`render_metrics`).
        self.metrics = MetricsRegistry()
        self.queue = JobQueue(state_dir, metrics=self.metrics)
        self.recovered: List[str] = self.queue.recover()
        #: Cross-campaign result warehouse.  Finished jobs are ingested by
        #: the worker/coordinator post-finish hook; the query endpoints also
        #: tail every job store lazily, so a state dir predating the
        #: warehouse migrates on first query.
        self.warehouse = Warehouse(
            warehouse_dir
            if warehouse_dir is not None
            else self.queue.state_dir / "warehouse"
        )
        self._warehouse_ingest_lock = threading.Lock()
        self._compactor = CompactionThread(
            self.warehouse,
            interval_s=warehouse_compact_interval_s,
            min_superseded=warehouse_compact_min_superseded,
        )
        resolved_cache_dir = cache_dir if cache_dir is not None else default_cache_dir()
        #: Backing store of the /v1/artifacts object-store endpoints (and,
        #: in fleet mode, of the coordinator's between-job gc).
        self.artifact_cache = ArtifactCache(
            resolved_cache_dir if use_cache else None
        )
        self.artifact_max_bytes = parse_size(
            os.environ.get(ARTIFACT_MAX_BYTES_ENV) or str(DEFAULT_ARTIFACT_MAX_BYTES)
        )
        if fleet:
            # Imported lazily: the coordinator pulls in the runner stack,
            # and repro.fleet's heavy modules import this module back.
            from ..fleet.coordinator import FleetCoordinator

            self.worker = FleetCoordinator(
                self.queue,
                lease_ttl_s=lease_ttl_s,
                intra_workers=intra_workers if intra_workers is not None else 1,
                max_active_jobs=job_slots,
                cache_dir=resolved_cache_dir,
                use_cache=use_cache,
                cache_max_bytes=cache_max_bytes,
                cache_max_age_s=cache_max_age_s,
                echo=self.echo,
                metrics=self.metrics,
                on_job_finished=self._ingest_finished_job,
            )
            self.fleet = self.worker
        else:
            self.worker = JobWorker(
                self.queue,
                job_slots=job_slots,
                task_workers=task_workers,
                intra_workers=intra_workers,
                cache_dir=resolved_cache_dir,
                use_cache=use_cache,
                cache_max_bytes=cache_max_bytes,
                cache_max_age_s=cache_max_age_s,
                echo=self.echo,
                metrics=self.metrics,
                on_job_finished=self._ingest_finished_job,
            )
            self.fleet = None
        self._httpd: Optional[_ServiceServer] = None
        self._http_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Warehouse ingest.

    def _ingest_finished_job(self, job: Job) -> None:
        """Post-finish hook: tail the finished job's store into the warehouse."""
        self.ingest_job_store(job.job_id)

    def ingest_job_store(self, job_id: str) -> int:
        """Ingest one job store's un-ingested tail; returns records added."""
        path = self.queue.stores_dir / f"{job_id}.jsonl"
        with self._warehouse_ingest_lock:
            added = ingest_store(self.warehouse, path, source=job_id)
        if added:
            self.metrics.inc("repro_warehouse_ingested_records_total", added)
        return added

    def refresh_warehouse(self) -> Dict[str, int]:
        """Tail every job store (lazy migration of pre-warehouse state dirs).

        Cheap when nothing changed: each source's byte cursor is compared to
        the store file's size and only appended tails are read.
        """
        added: Dict[str, int] = {}
        with self._warehouse_ingest_lock:
            for path in sorted(self.queue.stores_dir.glob("*.jsonl")):
                count = ingest_store(self.warehouse, path, source=path.stem)
                if count:
                    added[path.stem] = count
        total = sum(added.values())
        if total:
            self.metrics.inc("repro_warehouse_ingested_records_total", total)
        return added

    # ------------------------------------------------------------------
    # Traffic shaping.

    def quota_for(self, identity: TokenInfo) -> Tuple[Optional[int], Optional[int]]:
        """Effective ``(max_queued, max_active)`` for a principal."""
        max_queued = (
            identity.max_queued
            if identity.max_queued is not None
            else self.max_queued_per_owner
        )
        max_active = (
            identity.max_active
            if identity.max_active is not None
            else self.max_active_per_owner
        )
        return max_queued, max_active

    def priority_cap_for(self, identity: TokenInfo) -> Optional[int]:
        """Highest priority a principal may request (None = uncapped).

        A token's explicit ``max_priority`` always wins; otherwise admins
        are uncapped and everyone else gets the service-wide default —
        without a cap, one tenant could pin its whole backlog above every
        other tenant's jobs while staying inside its job-count quotas.
        """
        if identity.max_priority is not None:
            return identity.max_priority
        if identity.is_admin:
            return None
        return self.max_priority_per_owner

    def throttle_submit(self, identity: TokenInfo) -> Optional[float]:
        """Spend one submit token; returns seconds-until-retry when empty."""
        rate = (
            identity.submit_rate
            if identity.submit_rate is not None
            else self.submit_rate
        )
        if rate is None:
            return None
        burst = (
            identity.submit_burst
            if identity.submit_burst is not None
            else self.submit_burst
        )
        # Keyed by principal AND parameters: tokens-file edits take effect
        # without a restart (a new key = a fresh bucket), while two
        # same-name tokens with different rates (mid-rotation) each drain
        # their own bucket instead of resetting a shared one to full burst
        # on every alternation.  Stale buckets are bounded by the number of
        # distinct configurations ever served and cost ~100 bytes each.
        key = (identity.name, rate, burst)
        with self._buckets_lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = TokenBucket(rate, burst)
                self._buckets[key] = bucket
        return bucket.acquire()

    # ------------------------------------------------------------------
    def render_metrics(self) -> str:
        """Prometheus text rendering of the service telemetry plane.

        Counters and histograms accumulate live (submits, claims, finishes,
        throttles, HTTP requests, queue-wait/run-time); point-in-time gauges
        (jobs by state — every state, so absent ones scrape as 0 — and the
        event-feed depth) are refreshed at scrape time.
        """
        counts = self.queue.counts()
        for state in ("queued", "running", "done", "failed", "cancelled"):
            self.metrics.set_gauge(
                "repro_service_jobs", float(counts.get(state, 0)), state=state
            )
        self.metrics.set_gauge(
            "repro_service_event_feed_depth", float(self.queue.feed_depth())
        )
        # Worker utilisation: busy is maintained live by the worker loop
        # (the +0 materialises the series so an idle service scrapes 0).
        self.metrics.add_gauge("repro_service_workers_busy", 0.0)
        self.metrics.set_gauge(
            "repro_service_worker_slots", float(self.worker.job_slots)
        )
        if self.fleet is not None:
            gauges = self.fleet.fleet_gauges()
            self.metrics.set_gauge(
                "repro_fleet_tasks_pending", float(gauges["tasks_pending"])
            )
            self.metrics.set_gauge(
                "repro_fleet_leases_active", float(gauges["leases_active"])
            )
            self.metrics.set_gauge(
                "repro_fleet_workers_seen", float(gauges["workers_seen"])
            )
            for name, count in gauges["worker_active"].items():
                self.metrics.set_gauge(
                    "repro_fleet_worker_active_leases", float(count), worker=name
                )
        warehouse_stats = self.warehouse.stats()
        for gauge in ("records", "superseded", "corrupt_lines", "shards", "bytes"):
            self.metrics.set_gauge(
                f"repro_warehouse_{gauge}", float(warehouse_stats[gauge])
            )
        return self.metrics.render_prometheus()

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "CampaignService":
        if self._httpd is not None:
            return self
        self.worker.start()
        self._compactor.start()
        self._httpd = _ServiceServer(
            (self.host, self._requested_port), _ServiceHandler, self
        )
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-service-http", daemon=True
        )
        self._http_thread.start()
        if self.recovered:
            emit(
                self.echo,
                f"recovered {len(self.recovered)} unfinished job(s)",
                component="service",
                recovered=len(self.recovered),
            )
        if self.auth is not None:
            emit(
                self.echo,
                f"auth: {len(self.auth)} token(s) loaded",
                component="service",
            )
        emit(self.echo, f"serving on {self.url}", component="service", url=self.url)
        return self

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._http_thread is not None:
            self._http_thread.join(timeout)
            self._http_thread = None
        self._compactor.stop()
        self.worker.stop(timeout)
        self.warehouse.flush()

    def __enter__(self) -> "CampaignService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
