"""JSONL result store and paper-table aggregation.

Every finished task appends one flat JSON record; the helpers below turn a
pile of records back into the paper's table shapes (Table IV/V per-class
breakdowns, Table VI-style averages) and into campaign progress summaries.
The store is append-only, so re-running a campaign keeps history;
:meth:`ResultStore.latest` deduplicates by task fingerprint, last write wins.
"""

from __future__ import annotations

import json
import time
from collections import defaultdict
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

try:  # POSIX only; appends degrade gracefully elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from ..core.reporting import format_percent, format_table
from ..obs import get_registry

__all__ = [
    "AGGREGATE_METRIC_FIELDS",
    "ResultStore",
    "aggregate",
    "campaign_table",
    "h_tech_table",
    "paper_table",
    "render_report",
]


class ResultStore:
    """Append-only JSONL store of task records."""

    def __init__(self, path):
        self.path = Path(path)
        #: Unparseable lines seen by the most recent :meth:`load` call.
        self.last_corrupt_lines = 0

    def append(self, record: Mapping[str, object]) -> None:
        payload = dict(record)
        payload.setdefault("recorded_at", time.time())
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Serialise first, then hand the kernel one pre-built line under an
        # exclusive flock: concurrent writers (fleet coordinator + service
        # worker sharing a state dir) cannot interleave partial lines, and a
        # crash mid-append leaves at most one truncated tail line.
        data = (json.dumps(payload, sort_keys=True, default=str) + "\n").encode(
            "utf-8"
        )
        with open(self.path, "ab", buffering=0) as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                view = memoryview(data)
                while view:
                    written = handle.write(view)
                    view = view[written:]
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def load(self) -> List[Dict[str, object]]:
        """All records, oldest first.

        Unparseable lines are skipped but *counted*: the tally lands in
        :attr:`last_corrupt_lines` and on the
        ``repro_store_corrupt_lines_total`` counter so a truncated store
        shows up in reports and on ``/metricsz`` instead of silently
        under-reporting.
        """
        self.last_corrupt_lines = 0
        if not self.path.is_file():
            return []
        records: List[Dict[str, object]] = []
        corrupt = 0
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    corrupt += 1
        self.last_corrupt_lines = corrupt
        if corrupt:
            get_registry().inc("repro_store_corrupt_lines_total", corrupt)
        return records

    def latest(self) -> Dict[str, Dict[str, object]]:
        """Most recent record per task fingerprint.

        Records carrying neither a ``fingerprint`` nor a ``task_id`` (foreign
        or hand-written lines) stay distinct under a synthetic per-line key
        instead of all collapsing onto one entry.
        """
        latest: Dict[str, Dict[str, object]] = {}
        for index, record in enumerate(self.load()):
            key = record.get("fingerprint") or record.get("task_id")
            latest[str(key) if key else f"#record{index}"] = record
        return latest

    def clear(self) -> None:
        if self.path.is_file():
            self.path.unlink()


# ----------------------------------------------------------------------
def _ok(records: Iterable[Mapping]) -> List[Mapping]:
    return [r for r in records if r.get("status", "ok") == "ok"]


def paper_table(
    records: Iterable[Mapping],
    class_order: Optional[Sequence[str]] = None,
    *,
    mn_header: str = "#MN",
) -> str:
    """Render Table IV/V-shaped per-benchmark results from task records.

    Columns: GNN accuracy, then precision / recall / F1 per class in
    ``class_order`` (default: the union of classes observed across all
    records, in first-seen order — mixed-scheme piles keep every class
    aligned instead of borrowing the first record's set), the
    misclassified-node breakdown and the removal success rate.
    """
    rows = []
    records = _ok(records)
    if class_order is None and records:
        seen: List[str] = []
        for record in records:
            for cls in record.get("class_names", []):
                if cls and cls not in seen:
                    seen.append(cls)
        class_order = seen
    class_order = list(class_order or [])
    for record in records:
        per_class = record.get("gnn_report", {}).get("per_class", {})
        row = [
            record.get("target", "?"),
            record.get("n_instances", 0),
            format_percent(float(record.get("gnn_accuracy", 0.0))),
        ]
        for metric in ("precision", "recall", "f1"):
            for cls in class_order:
                metrics = per_class.get(cls, {})
                row.append(format_percent(float(metrics.get(metric, 0.0))))
        row.append(
            record.get("gnn_report", {}).get("misclassification_summary", "-")
        )
        row.append(format_percent(float(record.get("removal_success_rate", 0.0))))
        rows.append(row)

    headers = ["Test", "#TestGraphs", "GNN Acc. (%)"]
    for metric in ("Prec", "Rec", "F1"):
        for cls in class_order:
            headers.append(f"{metric} {cls} (%)")
    headers += [mn_header, "Removal Success (%)"]
    return format_table(headers, rows)


#: Headline metrics averaged by :func:`aggregate`, in output order.  The
#: warehouse's streaming aggregation replays the same fields in the same
#: addition order so its floats are byte-identical to this function's.
AGGREGATE_METRIC_FIELDS: Tuple[str, ...] = (
    "gnn_accuracy",
    "post_accuracy",
    "gnn_macro_precision",
    "gnn_macro_recall",
    "gnn_macro_f1",
    "removal_success_rate",
    "train_time_s",
)


def aggregate(
    records: Iterable[Mapping],
    group_by: Sequence[str] = ("scheme", "suite", "technology"),
) -> List[Dict[str, object]]:
    """Average the headline metrics over record groups (Table VI flavour).

    Each metric is averaged only over the records that actually carry the
    field — a baseline record without ``gnn_accuracy`` no longer drags the
    group mean toward zero — and ``metric_n`` reports how many records
    backed each per-metric average.
    """
    groups: Dict[Tuple, List[Mapping]] = defaultdict(list)
    for record in _ok(records):
        key = tuple(record.get(field) for field in group_by)
        groups[key].append(record)

    def mean_and_n(items: List[Mapping], field: str) -> Tuple[float, int]:
        values = [
            float(r[field]) for r in items if r.get(field) is not None
        ]
        if not values:
            return 0.0, 0
        return sum(values) / len(values), len(values)

    summary: List[Dict[str, object]] = []
    for key in sorted(groups, key=str):
        items = groups[key]
        entry: Dict[str, object] = dict(zip(group_by, key))
        entry["n_tasks"] = len(items)
        entry["n_instances"] = int(
            sum(int(r.get("n_instances", 0)) for r in items)
        )
        metric_n: Dict[str, int] = {}
        for field in AGGREGATE_METRIC_FIELDS:
            entry[field], metric_n[field] = mean_and_n(items, field)
        entry["metric_n"] = metric_n
        summary.append(entry)
    return summary


# ----------------------------------------------------------------------
_SCHEME_LABELS = {"antisat": "Anti-SAT", "ttlock": "TTLock", "xor": "XOR"}
_TECH_LABELS = {"BENCH8": "bench", "GEN65": "65nm", "GEN45": "45nm"}


def _dataset_label(entry: Mapping) -> str:
    """Paper-style row label, e.g. ``SFLL-HD2 / ISCAS-85 / 65nm``."""
    scheme = str(entry.get("scheme", "?"))
    h = entry.get("h")
    name = _SCHEME_LABELS.get(scheme)
    if name is None:
        # Schemes without a pinned paper label (SARLock, cyclic, future
        # registrations) borrow their registry display name.
        from ..locking import find_scheme

        info = find_scheme(scheme)
        name = info.display_name if info is not None else scheme
    if scheme == "sfll":
        name = f"SFLL-HD{h}" if h is not None else "SFLL-HD"
    parts = [name]
    if entry.get("suite"):
        parts.append(str(entry["suite"]))
    tech = entry.get("technology")
    if tech:
        parts.append(_TECH_LABELS.get(str(tech), str(tech)))
    return " / ".join(parts)


def h_tech_table(
    records: Iterable[Mapping],
    group_by: Sequence[str] = ("scheme", "h", "technology", "suite"),
) -> str:
    """Render Table VI: per-dataset averages over h values and technologies.

    Each row is one ``aggregate()`` group — by default one (scheme, h,
    technology, suite) dataset — averaging GNN accuracy, the macro-averaged
    precision / recall / F1, the removal success rate and the training time
    over every attacked benchmark of the group.
    """
    rows = []
    for entry in aggregate(records, group_by=group_by):
        rows.append(
            [
                _dataset_label(entry),
                format_percent(float(entry["gnn_accuracy"])),
                format_percent(float(entry["gnn_macro_precision"])),
                format_percent(float(entry["gnn_macro_recall"])),
                format_percent(float(entry["gnn_macro_f1"])),
                format_percent(float(entry["removal_success_rate"])),
                f"{float(entry['train_time_s']):.1f}",
            ]
        )
    return format_table(
        ["Dataset", "GNN Acc. (%)", "Avg. Prec. (%)", "Avg. Rec. (%)",
         "Avg. F1 (%)", "Removal Success (%)", "Avg. TR Time (s)"],
        rows,
    )


def render_report(records: Iterable[Mapping]) -> str:
    """The campaign service's job report: status counts + the paper table.

    Deliberately restricted to *deterministic* record fields (no wall-clock
    or training times), so the report fetched from a service job is
    byte-identical to the report rendered from an offline
    :func:`~repro.runner.executor.run_campaign` of the same spec on the same
    stream.  Used by the ``/v1/jobs/<id>/report`` endpoint, ``repro fetch``
    and ``repro report --service-style``.
    """
    records = list(records)
    counts: Dict[str, int] = defaultdict(int)
    for record in records:
        counts[str(record.get("status", "ok"))] += 1
    header = f"{len(records)} task(s)"
    if counts:
        header += ": " + ", ".join(
            f"{counts[status]} {status}" for status in sorted(counts)
        )
    return header + "\n\n" + paper_table(records)


def campaign_table(records: Iterable[Mapping]) -> str:
    """Per-task campaign summary including failures and cache provenance."""
    rows = []
    for record in records:
        cache = record.get("cache", {})
        cache_note = (
            ",".join(f"{kind}:{event}" for kind, event in sorted(cache.items()))
            if cache
            else "-"
        )
        status = record.get("status", "ok")
        done = status in ("ok", "skipped")
        if done and "gnn_accuracy" in record:
            headline = (
                f"acc {format_percent(float(record['gnn_accuracy']))} / "
                f"removal {format_percent(float(record['removal_success_rate']))}"
            )
        elif done and "baseline_success_rate" in record:
            headline = (
                f"success {format_percent(float(record['baseline_success_rate']))}"
            )
        elif done and "n_nodes" in record:
            headline = f"{record['n_nodes']} nodes"
            if "n_circuits" in record:
                headline += f" / {record['n_circuits']} circuits"
        else:
            headline = str(record.get("error", "-"))[:60]
        rows.append(
            [
                record.get("task_id", "?"),
                status,
                f"{float(record.get('wall_time_s', 0.0)):.2f}",
                cache_note,
                headline,
            ]
        )
    return format_table(
        ["Task", "Status", "Time (s)", "Cache", "Result"], rows
    )
