"""Campaign orchestration: parallel attack execution with artifact caching.

The runner turns the one-design-at-a-time attack loop into a declarative,
parallel, cached system:

* :mod:`~repro.runner.campaign` — :class:`CampaignSpec` grids expand into
  independent, deterministically seeded :class:`AttackTask` units.
* :mod:`~repro.runner.executor` — process-pool execution with per-task crash
  isolation, timeouts, and ordered structured results.
* :mod:`~repro.runner.cache` — content-addressed on-disk cache for generated
  locked datasets and trained GNN models.
* :mod:`~repro.runner.store` — append-only JSONL result store plus the
  aggregation helpers that reproduce the paper-table summaries.
* :mod:`~repro.runner.matrix` — the standing attack × defense capability
  matrix with trend deltas against the previous sweep.
* :mod:`~repro.runner.cli` — the ``python -m repro`` command line.
"""

from .cache import (
    ArtifactCache,
    CACHE_VERSION,
    CacheEntry,
    CacheStats,
    default_cache_dir,
    fingerprint,
)
from .campaign import (
    AttackTask,
    BASELINE_ATTACKS,
    CampaignSpec,
    DatasetSpec,
    PROFILES,
    SchemeSpec,
    config_from_dict,
    config_to_dict,
    parse_scheme_spec,
    profile_campaign,
    profile_config,
    profile_suites,
    registered_attacks,
)
from .executor import (
    TaskResult,
    campaign_cache_stats,
    execute_task,
    outcome_record,
    run_campaign,
)
from .matrix import (
    MatrixHistory,
    WarehouseMatrixHistory,
    build_matrix,
    matrix_campaign,
    matrix_scheme_entries,
    render_matrix_report,
    trend_deltas,
)
from .store import (
    ResultStore,
    aggregate,
    campaign_table,
    h_tech_table,
    paper_table,
    render_report,
)

__all__ = [
    "ArtifactCache",
    "AttackTask",
    "BASELINE_ATTACKS",
    "CACHE_VERSION",
    "CacheEntry",
    "CacheStats",
    "CampaignSpec",
    "DatasetSpec",
    "MatrixHistory",
    "WarehouseMatrixHistory",
    "PROFILES",
    "ResultStore",
    "SchemeSpec",
    "TaskResult",
    "aggregate",
    "build_matrix",
    "campaign_cache_stats",
    "campaign_table",
    "config_from_dict",
    "config_to_dict",
    "default_cache_dir",
    "execute_task",
    "fingerprint",
    "h_tech_table",
    "matrix_campaign",
    "matrix_scheme_entries",
    "outcome_record",
    "paper_table",
    "parse_scheme_spec",
    "profile_campaign",
    "profile_config",
    "profile_suites",
    "registered_attacks",
    "render_matrix_report",
    "render_report",
    "run_campaign",
    "trend_deltas",
]
