"""Capability matrix: the standing attack × defense trend campaign.

``repro matrix`` expands **every registered attack × every registered locking
scheme × a key-size sweep** into one :class:`~repro.runner.campaign.CampaignSpec`
and runs it through the ordinary runner/service machinery — content-addressed
dedupe and ``resume`` make the nightly re-sweep incremental, so only cells
whose inputs changed are recomputed.

The stored records are folded into a capability matrix: one cell per
``(scheme, key size, attack)`` with its headline metric (post-processed GNN
accuracy for GNNUnlock, success rate for the baselines), and each sweep's
cells are appended to a :class:`MatrixHistory` JSONL so the next sweep can
render trend deltas (improved / regressed / new / gone) against it.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..locking import SCHEMES
from .campaign import CampaignSpec, profile_config, registered_attacks

__all__ = [
    "MatrixHistory",
    "WarehouseMatrixHistory",
    "build_matrix",
    "matrix_campaign",
    "matrix_scheme_entries",
    "render_matrix_report",
    "trend_deltas",
]

#: Key sizes of the default size sweep (one dataset per size).
DEFAULT_MATRIX_KEY_SIZES: Tuple[int, ...] = (8, 16)

#: Cells moving less than this are reported as unchanged.
TREND_EPSILON = 1e-9

#: DIP budget for the oracle-guided SAT baseline inside the matrix.  The
#: SAT-resistant families (Anti-SAT, SARLock) force one DIP per wrong key and
#: every DIP grows the incremental formula by two circuit copies, so an
#: unbounded run is quadratic in 2^k; a small budget keeps those cells cheap
#: while still separating them from XOR locking (broken in a few DIPs).
MATRIX_SAT_ITERATIONS = 16


def matrix_scheme_entries() -> List[str]:
    """One ``scheme[:h]`` grid entry per registered scheme, sorted by name.

    Schemes whose parameter schema includes ``h`` use the value their
    registration declared in ``matrix_params``.
    """
    entries = []
    for info in SCHEMES:
        entry = info.name
        if info.uses_h:
            h = info.matrix_params.get("h")
            if h is None:
                raise ValueError(
                    f"scheme {info.name!r} uses h but declares no matrix_params['h']"
                )
            entry += f":{h}"
        entries.append(entry)
    return entries


def matrix_campaign(
    *,
    name: str = "capability-matrix",
    suite: str = "ISCAS-85",
    key_sizes: Sequence[int] = DEFAULT_MATRIX_KEY_SIZES,
    schemes: Optional[Sequence[str]] = None,
    attacks: Optional[Sequence[str]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    targets: Optional[Sequence[str]] = None,
    overrides: Optional[Sequence[Mapping[str, object]]] = None,
    config=None,
    timeout_s: Optional[float] = None,
    sat_iterations: Optional[int] = MATRIX_SAT_ITERATIONS,
) -> CampaignSpec:
    """The standing capability-matrix campaign.

    Defaults to every registered scheme × every registered attack on the
    small (ISCAS-85) suite with one key-size group per size — a grid a
    nightly job can finish, while still exercising each (attack, defense)
    pair.  Each keyword narrows or widens one axis.
    """
    spec = CampaignSpec(
        name=name,
        schemes=tuple(schemes) if schemes is not None else tuple(matrix_scheme_entries()),
        suites=(suite,),
        key_size_groups=tuple((int(k),) for k in key_sizes),
        benchmarks=tuple(benchmarks) if benchmarks is not None else None,
        targets=tuple(targets) if targets is not None else None,
        attacks=tuple(attacks) if attacks is not None else registered_attacks(),
        config=config if config is not None else profile_config("quick"),
        timeout_s=timeout_s,
        attack_params=(
            {"sat": {"max_iterations": int(sat_iterations)}}
            if sat_iterations is not None
            else {}
        ),
    )
    if overrides is not None:
        spec.overrides = tuple(dict(o) for o in overrides)
    return spec


# ----------------------------------------------------------------------
# Folding stored records into matrix cells.


def _cell_key(record: Mapping[str, object]) -> Optional[str]:
    """Stable cell identity of one stored record, or ``None`` if unkeyable."""
    scheme = record.get("scheme")
    attack = record.get("attack")
    if not scheme or not attack or attack == "dataset-summary":
        return None
    h = record.get("h")
    scheme_part = f"{scheme}:{h}" if h is not None else str(scheme)
    technology = record.get("technology") or ""
    keys = ".".join(str(k) for k in (record.get("key_sizes") or ()))
    return f"{scheme_part}@{technology}|k{keys}|{attack}"


def _headline(record: Mapping[str, object]) -> Optional[Tuple[str, float]]:
    """(metric name, value) of one ok record; ``None`` when it carries none."""
    for metric in ("post_accuracy", "gnn_accuracy", "baseline_success_rate"):
        value = record.get(metric)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return metric, float(value)
    return None


def build_matrix(records: Iterable[Mapping[str, object]]) -> Dict[str, Dict[str, object]]:
    """Fold stored records into capability-matrix cells.

    One cell per ``scheme[:h]@TECH | key sweep | attack``; multiple records
    per cell (several targets, several resumed runs) average their headline
    metric.  Failed records count into ``n_failed`` — a cell with no ok
    record renders as ``err``, which is itself a capability datum (e.g. an
    attack that cannot parse a scheme's netlists).
    """
    cells: Dict[str, Dict[str, object]] = {}
    for record in records:
        key = _cell_key(record)
        if key is None:
            continue
        cell = cells.setdefault(
            key,
            {
                "scheme": record.get("scheme"),
                "h": record.get("h"),
                "technology": record.get("technology"),
                "key_sizes": list(record.get("key_sizes") or ()),
                "attack": record.get("attack"),
                "metric": None,
                "value": None,
                "removal": None,
                "n_ok": 0,
                "n_failed": 0,
                "_values": [],
                "_removals": [],
            },
        )
        if record.get("status") == "ok":
            cell["n_ok"] = int(cell["n_ok"]) + 1
            headline = _headline(record)
            if headline is not None:
                metric, value = headline
                cell["metric"] = cell["metric"] or metric
                cell["_values"].append(value)
            removal = record.get("removal_success_rate")
            if isinstance(removal, (int, float)) and not isinstance(removal, bool):
                cell["_removals"].append(float(removal))
        else:
            cell["n_failed"] = int(cell["n_failed"]) + 1
    for cell in cells.values():
        values = cell.pop("_values")
        removals = cell.pop("_removals")
        if values:
            cell["value"] = round(sum(values) / len(values), 6)
        if removals:
            cell["removal"] = round(sum(removals) / len(removals), 6)
    return dict(sorted(cells.items()))


# ----------------------------------------------------------------------
# Trend history.


class MatrixHistory:
    """Append-only JSONL of capability-matrix sweeps.

    Each line is one sweep: ``{"recorded_at": ..., "cells": {...}}``.  The
    previous sweep's cells are what the trend section of the report diffs
    against; corrupt or truncated lines are skipped on read, mirroring
    :class:`~repro.runner.store.ResultStore`.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)

    def append(
        self,
        cells: Mapping[str, Mapping[str, object]],
        *,
        recorded_at: Optional[float] = None,
    ) -> None:
        snapshot = {
            "recorded_at": float(recorded_at if recorded_at is not None else time.time()),
            "cells": {key: dict(cell) for key, cell in cells.items()},
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(snapshot, sort_keys=True) + "\n")

    def sweeps(self) -> List[Dict[str, object]]:
        if not self.path.exists():
            return []
        sweeps: List[Dict[str, object]] = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(payload, dict) and isinstance(payload.get("cells"), dict):
                    sweeps.append(payload)
        return sweeps

    def latest(self) -> Optional[Dict[str, object]]:
        sweeps = self.sweeps()
        return sweeps[-1] if sweeps else None

    def __len__(self) -> int:
        return len(self.sweeps())


class WarehouseMatrixHistory:
    """Matrix sweep history backed by the result warehouse.

    Drop-in for :class:`MatrixHistory` (same ``append`` / ``sweeps`` /
    ``latest`` / ``__len__`` surface) with two storage differences: every
    sweep is one warehouse record under an archival key
    (``matrix:<name>:<n>``), and the most recent sweep is *also* written
    under a stable head key (``matrix:<name>``), so the nightly re-sweep's
    ``latest()`` is a single index seek — no JSONL scan, regardless of how
    many campaigns share the warehouse.  Superseded head records are folded
    away by ordinary compaction.
    """

    def __init__(self, warehouse, *, name: str = "capability-matrix") -> None:
        self.warehouse = warehouse
        self.name = str(name)

    @property
    def _head_key(self) -> str:
        return f"matrix:{self.name}"

    def append(
        self,
        cells: Mapping[str, Mapping[str, object]],
        *,
        recorded_at: Optional[float] = None,
    ) -> None:
        head = self.warehouse.get(self._head_key)
        sweep = int(head.get("sweep", 0)) + 1 if head else 1
        snapshot = {
            "kind": "matrix_sweep",
            "matrix": self.name,
            "sweep": sweep,
            "recorded_at": float(
                recorded_at if recorded_at is not None else time.time()
            ),
            "cells": {key: dict(cell) for key, cell in cells.items()},
        }
        self.warehouse.append_many(
            [
                (f"{self._head_key}:{sweep}", snapshot),
                (self._head_key, snapshot),
            ],
            source=f"matrix:{self.name}",
        )
        self.warehouse.flush()

    def sweeps(self) -> List[Dict[str, object]]:
        head_key = self._head_key

        def is_archived_sweep(env: Mapping[str, object]) -> bool:
            if env.get("k") == head_key:
                return False
            record = env.get("r", {})
            return (
                isinstance(record, Mapping)
                and record.get("kind") == "matrix_sweep"
                and record.get("matrix") == self.name
                and isinstance(record.get("cells"), dict)
            )

        return list(self.warehouse.iter_records(is_archived_sweep))

    def latest(self) -> Optional[Dict[str, object]]:
        return self.warehouse.get(self._head_key)

    def __len__(self) -> int:
        head = self.warehouse.get(self._head_key)
        return int(head.get("sweep", 0)) if head else 0


def trend_deltas(
    cells: Mapping[str, Mapping[str, object]],
    previous: Optional[Mapping[str, Mapping[str, object]]],
) -> Dict[str, List[Tuple[str, Optional[float], Optional[float]]]]:
    """Classify each cell against the previous sweep.

    Returns ``{"improved": [...], "regressed": [...], "unchanged": [...],
    "new": [...], "gone": [...]}`` with ``(cell key, previous value, current
    value)`` triples, each bucket sorted by cell key.
    """
    previous = previous or {}
    buckets: Dict[str, List[Tuple[str, Optional[float], Optional[float]]]] = {
        "improved": [],
        "regressed": [],
        "unchanged": [],
        "new": [],
        "gone": [],
    }
    for key in sorted(set(cells) | set(previous)):
        now = cells.get(key)
        before = previous.get(key)
        now_value = now.get("value") if now else None
        before_value = before.get("value") if before else None
        if now is None:
            buckets["gone"].append((key, before_value, None))
        elif before is None:
            buckets["new"].append((key, None, now_value))
        elif now_value is None or before_value is None:
            bucket = "unchanged" if now_value == before_value else (
                "regressed" if now_value is None else "improved"
            )
            buckets[bucket].append((key, before_value, now_value))
        elif abs(now_value - before_value) <= TREND_EPSILON:
            buckets["unchanged"].append((key, before_value, now_value))
        elif now_value > before_value:
            buckets["improved"].append((key, before_value, now_value))
        else:
            buckets["regressed"].append((key, before_value, now_value))
    return buckets


# ----------------------------------------------------------------------
# Rendering.


def _format_value(cell: Mapping[str, object]) -> str:
    if cell["n_ok"] == 0:
        return "err" if cell["n_failed"] else "-"
    value = cell.get("value")
    return f"{value:.3f}" if value is not None else "ok"


def _format_opt(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.3f}"


def render_matrix_report(
    records: Iterable[Mapping[str, object]],
    *,
    previous: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> str:
    """Deterministic text rendering of the capability matrix.

    One row per (scheme, key sweep) pair, one column per attack; the trend
    section diffs against ``previous`` (the last stored sweep's cells) when
    given.  Output depends only on the records and ``previous`` — identical
    inputs render byte-identical reports.
    """
    cells = build_matrix(records)
    lines: List[str] = ["Capability matrix", "================="]
    if not cells:
        lines.append("(no attack records)")
        return "\n".join(lines) + "\n"

    rows = sorted({key.rsplit("|", 1)[0] for key in cells})
    attacks = sorted({str(cell["attack"]) for cell in cells.values()})
    row_width = max(len("scheme | keys"), *(len(r.replace("|", " | ")) for r in rows))
    col_widths = {attack: max(len(attack), 7) for attack in attacks}

    header = "scheme | keys".ljust(row_width) + "".join(
        "  " + attack.rjust(col_widths[attack]) for attack in attacks
    )
    lines += [header, "-" * len(header)]
    for row in rows:
        text = row.replace("|", " | ").ljust(row_width)
        for attack in attacks:
            cell = cells.get(f"{row}|{attack}")
            value = _format_value(cell) if cell is not None else "-"
            text += "  " + value.rjust(col_widths[attack])
        lines.append(text)

    gnn_rows = [
        (key, cell)
        for key, cell in sorted(cells.items())
        if cell.get("removal") is not None
    ]
    if gnn_rows:
        lines += ["", "Removal success (GNNUnlock)", "---------------------------"]
        for key, cell in gnn_rows:
            lines.append(f"{key.rsplit('|', 1)[0]}: {cell['removal']:.3f}")

    lines += ["", "Trend vs previous sweep", "-----------------------"]
    if previous is None:
        lines.append("(no previous sweep stored)")
    else:
        buckets = trend_deltas(cells, previous)
        summary = ", ".join(
            f"{len(buckets[name])} {name}"
            for name in ("improved", "regressed", "unchanged", "new", "gone")
        )
        lines.append(summary)
        for name in ("improved", "regressed", "new", "gone"):
            for key, before, now in buckets[name]:
                if name in ("improved", "regressed"):
                    delta = (now or 0.0) - (before or 0.0)
                    lines.append(
                        f"  {name[:4]} {key}: {_format_opt(before)} -> "
                        f"{_format_opt(now)} ({delta:+.3f})"
                    )
                else:
                    value = now if name == "new" else before
                    lines.append(f"  {name} {key}: {_format_opt(value)}")
    return "\n".join(lines) + "\n"
