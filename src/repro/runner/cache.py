"""Content-addressed on-disk artifact cache.

Campaigns repeatedly need two expensive artifact kinds: generated locked
datasets and trained GNN models.  Both are fully determined by a canonical
spec (the :meth:`~repro.runner.campaign.DatasetSpec.canonical` /
:meth:`~repro.runner.campaign.AttackTask.canonical` dictionaries), so the
cache key is the SHA-256 of that spec's canonical JSON — re-running a
campaign, or running a second campaign that shares a dataset, skips the work.

Layout: ``<root>/<kind>/<key[:2]>/<key>.pkl``.  Writes are atomic
(temp file + rename) so concurrent workers generating the same artifact
cannot corrupt each other; the operation is idempotent, the last writer
wins with identical bytes.

Lifecycle: every fingerprint embeds :data:`CACHE_VERSION`, so bumping the
version after an incompatible code change retires the whole cache cleanly
(old entries simply stop being addressed).  Stale bytes are reclaimed by
:meth:`ArtifactCache.gc`, which evicts least-recently-used entries first —
a cache hit refreshes the artifact's mtime, so mtime order is use order.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ..obs import get_registry, span

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "ArtifactCache",
    "CacheEntry",
    "CacheStats",
    "CACHE_MAX_AGE_ENV",
    "CACHE_MAX_BYTES_ENV",
    "CACHE_VERSION",
    "COUNTERS_FILENAME",
    "atomic_write",
    "cache_budget_from_env",
    "canonical_json",
    "default_cache_dir",
    "fingerprint",
    "parse_age",
    "parse_size",
]

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Automatic cache budget: when either is set, ``run_campaign`` garbage
#: collects the artifact cache after the campaign instead of waiting for an
#: operator to run ``repro cache gc``.
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"
CACHE_MAX_AGE_ENV = "REPRO_CACHE_MAX_AGE"

_SIZE_UNITS = {"k": 1024, "m": 1024**2, "g": 1024**3, "t": 1024**4}
_AGE_UNITS = {"s": 1, "m": 60, "h": 3600, "d": 86400, "w": 604800}


def parse_size(text: str) -> int:
    """``"500M"``, ``"2G"``, ``"1048576"`` -> bytes."""
    t = text.strip().lower()
    if t.endswith("b"):
        t = t[:-1]
    multiplier = 1
    if t and t[-1] in _SIZE_UNITS:
        multiplier = _SIZE_UNITS[t[-1]]
        t = t[:-1]
    return int(float(t) * multiplier)


def parse_age(text: str) -> float:
    """``"12h"``, ``"7d"``, ``"3600"`` -> seconds."""
    t = text.strip().lower()
    multiplier = 1
    if t and t[-1] in _AGE_UNITS:
        multiplier = _AGE_UNITS[t[-1]]
        t = t[:-1]
    return float(t) * multiplier


def cache_budget_from_env() -> Tuple[Optional[int], Optional[float]]:
    """The automatic ``(max_bytes, max_age_s)`` cache budget, if any is set.

    Malformed values are treated as unset rather than sinking a campaign
    over a housekeeping knob.
    """
    max_bytes: Optional[int] = None
    max_age: Optional[float] = None
    raw = os.environ.get(CACHE_MAX_BYTES_ENV, "").strip()
    if raw:
        try:
            max_bytes = parse_size(raw)
        except (ValueError, OverflowError):  # e.g. "lots", "inf"
            max_bytes = None
    raw = os.environ.get(CACHE_MAX_AGE_ENV, "").strip()
    if raw:
        try:
            max_age = parse_age(raw)
        except (ValueError, OverflowError):
            max_age = None
    return max_bytes, max_age

#: Artifact format version, hashed into every fingerprint.  Bump it whenever
#: dataset generation, training, or the pickled artifact layout changes in a
#: way that makes previously cached artifacts wrong to reuse.
CACHE_VERSION = 2

_MISSING = object()


def canonical_json(payload: Mapping) -> str:
    """Deterministic JSON rendering used for cache keys.

    Keys are sorted, separators minimal, and non-JSON scalars fall back to
    ``str`` — the rendering must be stable across processes and sessions.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def fingerprint(payload: Mapping) -> str:
    """SHA-256 hex digest of a canonicalized spec, stamped with CACHE_VERSION.

    The version stamp means a code change that bumps :data:`CACHE_VERSION`
    invalidates every previously cached artifact (and stored result record)
    without touching the files themselves.
    """
    stamped = {"cache_version": CACHE_VERSION, "spec": payload}
    return hashlib.sha256(canonical_json(stamped).encode()).hexdigest()


def atomic_write(path: Path, write) -> None:
    """Write a file atomically: temp file in the target directory + rename.

    ``write`` receives the open binary handle.  Concurrent writers cannot
    corrupt each other (the last rename wins whole) and a crash mid-write
    leaves the target untouched.  Shared by the artifact cache and the
    service's job-state persistence.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            write(handle)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-gnnunlock``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-gnnunlock"


@dataclass(frozen=True)
class CacheEntry:
    """One stored artifact: identity, size, and last-use time."""

    kind: str
    key: str
    size_bytes: int
    mtime: float
    path: Path


@dataclass
class CacheStats:
    """Hit/miss/write/eviction counters of one :class:`ArtifactCache` handle."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    per_kind: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def count(self, kind: str, event: str) -> None:
        setattr(self, event, getattr(self, event) + 1)
        bucket = self.per_kind.setdefault(
            kind, {"hits": 0, "misses": 0, "writes": 0, "evictions": 0}
        )
        bucket[event] += 1


#: Cache event -> :class:`CacheStats` counter field.
_EVENT_FIELDS = {
    "hit": "hits",
    "miss": "misses",
    "write": "writes",
    "evict": "evictions",
}

#: Lifetime counters persisted at the cache root for ``repro cache stats``.
COUNTERS_FILENAME = "counters.json"
_COUNTERS_LOCKNAME = "counters.lock"
#: Cross-process eviction lock: gc takes it exclusively, readers that must
#: not see an artifact vanish mid-read (the fleet artifact endpoints) take
#: it shared.  Distinct from ``counters.lock`` — gc itself flushes counters
#: under that lock, so sharing one file would self-deadlock.
_GC_LOCKNAME = "gc.lock"


class ArtifactCache:
    """Pickle-based content-addressed artifact store.

    ``root=None`` disables the cache: every ``get`` misses and ``put`` is a
    no-op, so call sites need no conditionals.
    """

    def __init__(self, root: Optional[os.PathLike] = None, *, enabled: bool = True):
        self.root: Optional[Path] = Path(root) if root is not None else None
        self.enabled = enabled and self.root is not None
        self.stats = CacheStats()
        # hit/miss/write/evict counts not yet folded into counters.json.
        self._pending: Dict[str, int] = {}

    def _count(self, kind: str, event: str) -> None:
        """Record one cache event in all three sinks.

        The handle's :class:`CacheStats` (campaign summaries), the current
        metrics registry (rollups, ``/metricsz``), and the pending lifetime
        counters flushed to ``counters.json`` for ``repro cache stats``.
        """
        self.stats.count(kind, _EVENT_FIELDS[event])
        get_registry().inc("repro_cache_events_total", kind=kind, event=event)
        if self.enabled:
            key = f"{kind}.{event}"
            self._pending[key] = self._pending.get(key, 0) + 1

    # ------------------------------------------------------------------
    def path_for(self, kind: str, key: str) -> Optional[Path]:
        if self.root is None:
            return None
        return self.root / kind / key[:2] / f"{key}.pkl"

    def get(self, kind: str, key: str, default: object = None) -> object:
        """Load a cached artifact, or ``default`` on a miss.

        An unreadable entry (truncated write from a killed process, version
        skew) counts as a miss and is deleted so it regenerates cleanly.
        """
        with span("cache", op="get", kind=kind) as handle:
            value = self._load(kind, key)
            if value is _MISSING:
                self._count(kind, "miss")
                handle.tag(event="miss")
                return default
            self._count(kind, "hit")
            handle.tag(event="hit")
            return value

    def has(self, kind: str, key: str) -> bool:
        """Whether an artifact exists, without loading it or counting stats."""
        path = self.path_for(kind, key)
        return self.enabled and path is not None and path.is_file()

    def put(self, kind: str, key: str, value: object) -> Optional[Path]:
        """Atomically persist an artifact; returns its path (None if disabled)."""
        path = self.path_for(kind, key)
        if not self.enabled or path is None:
            return None
        with span("cache", op="put", kind=kind):
            atomic_write(
                path,
                lambda handle: pickle.dump(
                    value, handle, protocol=pickle.HIGHEST_PROTOCOL
                ),
            )
        self._count(kind, "write")
        return path

    def _load(self, kind: str, key: str) -> object:
        path = self.path_for(kind, key)
        if not self.enabled or path is None or not path.is_file():
            return _MISSING
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except Exception:  # noqa: BLE001 - any unreadable entry is a miss
            try:
                path.unlink()
            except OSError:
                pass
            return _MISSING
        try:
            # A hit marks the artifact as recently used; gc() evicts by mtime.
            os.utime(path, None)
        except OSError:
            pass
        return value

    # ------------------------------------------------------------------
    def flush_counters(self) -> None:
        """Fold pending event counts into ``<root>/counters.json``.

        Lifetime counters survive processes and campaigns so ``repro cache
        stats`` can report hit/miss/evict history, not just current sizes.
        An ``fcntl`` lock (where available) serialises concurrent task
        workers so no increment is lost; persistence is best-effort — on
        failure the pending counts are kept for a later flush.
        """
        if not self.enabled or self.root is None or not self._pending:
            return
        pending, self._pending = self._pending, {}
        path = self.root / COUNTERS_FILENAME
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with (self.root / _COUNTERS_LOCKNAME).open("a+") as lock_handle:
                if fcntl is not None:
                    fcntl.flock(lock_handle.fileno(), fcntl.LOCK_EX)
                try:
                    try:
                        totals = json.loads(path.read_text(encoding="utf-8"))
                    except (OSError, json.JSONDecodeError):
                        totals = {}
                    for key, value in pending.items():
                        totals[key] = int(totals.get(key, 0)) + int(value)
                    text = json.dumps(totals, sort_keys=True)
                    atomic_write(path, lambda handle: handle.write(text.encode()))
                finally:
                    if fcntl is not None:
                        fcntl.flock(lock_handle.fileno(), fcntl.LOCK_UN)
        except OSError:
            for key, value in pending.items():
                self._pending[key] = self._pending.get(key, 0) + value

    def persistent_counters(self) -> Dict[str, Dict[str, int]]:
        """Lifetime per-kind counters: ``{kind: {hit, miss, write, evict}}``."""
        if self.root is None:
            return {}
        try:
            totals = json.loads(
                (self.root / COUNTERS_FILENAME).read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError):
            return {}
        counters: Dict[str, Dict[str, int]] = {}
        for key, value in sorted(totals.items()):
            kind, _, event = str(key).partition(".")
            if not event:
                continue
            try:
                counters.setdefault(kind, {})[event] = int(value)
            except (TypeError, ValueError):
                continue
        return counters

    # ------------------------------------------------------------------
    def scan(self, kind: Optional[str] = None) -> List[CacheEntry]:
        """Every stored artifact with its size and last-use (mtime) stamp."""
        if not self.enabled or self.root is None or not self.root.is_dir():
            return []
        kinds: Iterator[Path]
        if kind is not None:
            kinds = iter([self.root / kind])
        else:
            kinds = (p for p in sorted(self.root.iterdir()) if p.is_dir())
        found: List[CacheEntry] = []
        for kind_dir in kinds:
            if not kind_dir.is_dir():
                continue
            for path in sorted(kind_dir.glob("*/*.pkl")):
                try:
                    stat = path.stat()
                except OSError:  # raced with a concurrent gc/unlink
                    continue
                found.append(
                    CacheEntry(
                        kind=kind_dir.name,
                        key=path.stem,
                        size_bytes=stat.st_size,
                        mtime=stat.st_mtime,
                        path=path,
                    )
                )
        return found

    def entries(self, kind: Optional[str] = None) -> List[Tuple[str, str, int]]:
        """``(kind, key, size_bytes)`` for every stored artifact."""
        return [(e.kind, e.key, e.size_bytes) for e in self.scan(kind)]

    def size_bytes(self) -> int:
        return sum(size for _, _, size in self.entries())

    def kind_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-kind ``{count, bytes, oldest_mtime, newest_mtime}`` summary."""
        stats: Dict[str, Dict[str, float]] = {}
        for entry in self.scan():
            bucket = stats.setdefault(
                entry.kind,
                {
                    "count": 0,
                    "bytes": 0,
                    "oldest_mtime": entry.mtime,
                    "newest_mtime": entry.mtime,
                },
            )
            bucket["count"] += 1
            bucket["bytes"] += entry.size_bytes
            bucket["oldest_mtime"] = min(bucket["oldest_mtime"], entry.mtime)
            bucket["newest_mtime"] = max(bucket["newest_mtime"], entry.mtime)
        return stats

    # ------------------------------------------------------------------
    @contextmanager
    def lock_guard(self, *, shared: bool = False):
        """``flock`` the cache's eviction lock for the duration of the block.

        :meth:`gc` holds it exclusively across its scan+evict pass so two
        drainers sharing one cache dir cannot double-evict; readers that
        stream an artifact off disk (the service's ``/v1/artifacts``
        endpoints) hold it ``shared=True`` so gc cannot unlink the file
        under them mid-transfer.  No-op when the cache is disabled or the
        platform lacks ``fcntl``.
        """
        if not self.enabled or self.root is None or fcntl is None:
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        with (self.root / _GC_LOCKNAME).open("a+") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_SH if shared else fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def gc(
        self,
        *,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
        dry_run: bool = False,
        now: Optional[float] = None,
    ) -> List[CacheEntry]:
        """Evict artifacts least-recently-used first; returns what was evicted.

        ``max_age_s`` removes every entry unused for longer than that;
        ``max_bytes`` then removes the oldest remaining entries until the
        cache fits the budget.  A hit refreshes an artifact's mtime, so
        "oldest" means least recently *used*, not least recently written.
        ``dry_run`` reports the eviction set without deleting anything.

        The scan+evict pass runs under the exclusive cross-process
        :meth:`lock_guard` (shared for ``dry_run``), so concurrent drainers
        gc-ing one cache dir serialize instead of double-evicting.
        """
        if not self.enabled:
            return []
        with self.lock_guard(shared=dry_run):
            return self._gc_locked(
                max_bytes=max_bytes, max_age_s=max_age_s, dry_run=dry_run, now=now
            )

    def _gc_locked(
        self,
        *,
        max_bytes: Optional[int],
        max_age_s: Optional[float],
        dry_run: bool,
        now: Optional[float],
    ) -> List[CacheEntry]:
        now = time.time() if now is None else now
        entries = sorted(self.scan(), key=lambda e: (e.mtime, e.kind, e.key))
        remaining = sum(e.size_bytes for e in entries)
        evicted: List[CacheEntry] = []
        for entry in entries:
            expired = max_age_s is not None and now - entry.mtime > max_age_s
            over_budget = max_bytes is not None and remaining > max_bytes
            if not (expired or over_budget):
                continue
            if not dry_run:
                try:
                    entry.path.unlink()
                except OSError:
                    continue  # still present: its bytes still count
                try:
                    entry.path.parent.rmdir()  # prune the shard dir if now empty
                except OSError:
                    pass
                self._count(entry.kind, "evict")
            evicted.append(entry)
            remaining -= entry.size_bytes
        if not dry_run and evicted:
            self.flush_counters()
        return evicted
