"""Parallel campaign execution.

``run_campaign`` fans :class:`~repro.runner.campaign.AttackTask` units out
over a :class:`~concurrent.futures.ProcessPoolExecutor`.  Each worker runs
:func:`execute_task`, which is crash-isolated: every exception inside a task
is captured as a structured ``failed`` result with its traceback, so one
broken task never sinks the campaign.  Results come back in task order
regardless of completion order.

Determinism: dataset generation seeds from the dataset spec
(:meth:`AttackConfig.derive_seed` per instance) and GNN training seeds from
the task identity, never from execution order — a parallel run and a serial
run of the same campaign produce bit-identical records.

Intra-task parallelism: ``run_campaign(..., intra_workers=N)`` (or
``REPRO_INTRA_WORKERS``) is a *global* budget for the per-task worker pools
(:mod:`repro.parallel`).  The executor divides it by the number of campaign
worker processes before handing each task its share, so nested pools never
oversubscribe the machine; a share of one keeps the task on the legacy
serial hot path.

Housekeeping: when ``REPRO_CACHE_MAX_BYTES`` / ``REPRO_CACHE_MAX_AGE`` are
set, ``run_campaign`` garbage-collects the artifact cache after the campaign
(least-recently-used first) instead of relying on operators to run
``repro cache gc``.
"""

from __future__ import annotations

import os
import time
import traceback as traceback_module
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from contextlib import contextmanager
from dataclasses import dataclass, field
from importlib import import_module
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from ..core.attack import AttackOutcome, attack_design, train_attack_model
from ..obs import (
    MetricsRegistry,
    Tracer,
    emit_span,
    get_registry,
    get_tracer,
    merge_sidecars,
    obs_dir_for_store,
    obs_enabled,
    scoped_registry,
    scoped_tracer,
    span,
    tag_context,
    write_sidecar,
)
from ..parallel import intra_budget, intra_worker_budget, pool_from_budget
from .cache import (
    ArtifactCache,
    CacheStats,
    cache_budget_from_env,
    default_cache_dir,
)
from .campaign import BASELINE_ATTACKS, AttackTask

__all__ = [
    "TaskResult",
    "append_result",
    "campaign_cache_stats",
    "execute_task",
    "outcome_record",
    "run_campaign",
]


@dataclass
class TaskResult:
    """Structured outcome of one task, successful or not."""

    task_id: str
    fingerprint: str
    status: str  # "ok" | "failed" | "timeout"
    wall_time_s: float = 0.0
    #: Seconds the task spent queued between campaign submission and its
    #: actual start (0.0 when it ran immediately or the wait is unknowable).
    queue_wait_s: float = 0.0
    record: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    #: Per-artifact-kind cache outcome: "hit", "miss" or "off".
    cache_events: Dict[str, str] = field(default_factory=dict)
    pid: Optional[int] = None

    @property
    def ok(self) -> bool:
        # "skipped" is a resumed task whose ok record already exists.
        return self.status in ("ok", "skipped")


def outcome_record(outcome: AttackOutcome) -> Dict[str, object]:
    """Flatten an :class:`AttackOutcome` into a JSON-serializable record."""

    def report_dict(report) -> Dict[str, object]:
        return {
            "accuracy": float(report.accuracy),
            "per_class": {
                cls: {
                    "precision": float(m.precision),
                    "recall": float(m.recall),
                    "f1": float(m.f1),
                    "support": int(m.support),
                }
                for cls, m in report.per_class.items()
            },
            "n_misclassified": int(report.n_misclassified),
            "misclassification_summary": report.misclassification_summary(),
        }

    macro = outcome.gnn_report.macro_average()
    return {
        "target": outcome.target_benchmark,
        "validation": outcome.validation_benchmark,
        "scheme": outcome.scheme,
        "class_names": list(outcome.gnn_report.class_names),
        "n_instances": len(outcome.instances),
        "gnn_accuracy": float(outcome.gnn_accuracy),
        "post_accuracy": float(outcome.post_accuracy),
        "gnn_macro_precision": float(macro["precision"]),
        "gnn_macro_recall": float(macro["recall"]),
        "gnn_macro_f1": float(macro["f1"]),
        "removal_success_rate": float(outcome.removal_success_rate),
        "gnn_report": report_dict(outcome.gnn_report),
        "post_report": report_dict(outcome.post_report),
        "instances": [
            {
                "name": inst.name,
                "removal_success": bool(inst.removal_success),
                "removal_error": inst.removal_error,
            }
            for inst in outcome.instances
        ],
        "train_nodes": int(outcome.train_nodes),
        "val_nodes": int(outcome.val_nodes),
        "test_nodes": int(outcome.test_nodes),
        "epochs_run": int(outcome.history.epochs_run),
        "train_time_s": float(outcome.history.train_time_s),
        "attack_time_s": float(outcome.attack_time_s),
    }


def _task_metadata(task: AttackTask, *, pooled: bool = False) -> Dict[str, object]:
    ds = task.dataset
    return {
        "task_id": task.task_id,
        "fingerprint": task.fingerprint(pooled=pooled),
        "attack": task.attack,
        "target": task.target_benchmark,
        "scheme": ds.scheme,
        "h": ds.h,
        "technology": ds.technology,
        "suite": ds.suite,
        "key_sizes": list(ds.key_sizes),
        "seed": ds.seed,
        "apply_postprocessing": task.apply_postprocessing,
        "verify_removal": task.verify_removal,
        "dataset_fingerprint": ds.fingerprint(),
    }


def _resolve_baseline(name: str) -> Callable:
    dotted = BASELINE_ATTACKS[name]
    module_name, _, attr = dotted.rpartition(".")
    return getattr(import_module(module_name), attr)


@contextmanager
def _task_telemetry(
    task: AttackTask,
    cache: ArtifactCache,
    queue_wait_s: float,
    submitted_at: Optional[float],
    obs_dir: Optional[str],
) -> Iterator[None]:
    """Scope one task's telemetry and ship its delta on exit.

    With ``REPRO_OBS`` off this only flushes the cache's persistent
    hit/miss counters (those are always on — ``repro cache stats`` must
    work without telemetry).  With it on, the task runs under a fresh
    scoped registry + tracer tagged with its ids; on exit the delta is
    written to a sidecar (pool workers and driver-side campaign tasks —
    the campaign merges it into the rollup) or, when no ``obs_dir`` was
    provided (direct :func:`execute_task` calls), merged into the caller's
    ambient registry/tracer.  Best-effort throughout: telemetry failures
    must never turn a healthy task into a failed one.
    """
    if not obs_enabled():
        try:
            yield
        finally:
            try:
                cache.flush_counters()
            except Exception:  # noqa: BLE001 - telemetry is best-effort
                pass
        return
    registry = MetricsRegistry()
    tracer = Tracer()
    try:
        with scoped_registry(registry), scoped_tracer(tracer):
            with tag_context(task=task.task_id, target=task.target_benchmark):
                if submitted_at is not None:
                    emit_span(
                        "queue_wait",
                        ts=submitted_at,
                        dur=queue_wait_s,
                        scope="task",
                    )
                yield
    finally:
        try:
            cache.flush_counters()
        except Exception:  # noqa: BLE001 - telemetry is best-effort
            pass
        try:
            snapshot = registry.snapshot()
            events = tracer.drain()
            if obs_dir is not None:
                write_sidecar(obs_dir, task.fingerprint(), snapshot, events)
            else:
                get_registry().merge(snapshot)
                get_tracer().extend(events)
        except Exception:  # noqa: BLE001 - telemetry is best-effort
            pass


def execute_task(
    task: AttackTask,
    cache_dir: Optional[str] = None,
    intra_workers: Optional[int] = None,
    submitted_at: Optional[float] = None,
    obs_dir: Optional[str] = None,
    *,
    cache: Optional[ArtifactCache] = None,
) -> TaskResult:
    """Run one task, consulting/filling the artifact cache.

    ``intra_workers`` is this task's share of the global intra-task worker
    budget (``None`` = consult ``REPRO_INTRA_WORKERS``); a share above one
    builds a :mod:`repro.parallel` pool for the GNN sampler and the sharded
    equivalence checks, and is pinned into the environment for the task's
    duration so nested stages see the share, not the campaign-wide value.

    ``submitted_at`` is the wall-clock (``time.time()``) instant the campaign
    submitted the task; the gap to now is reported as ``queue_wait_s`` so
    ``wall_time_s`` can mean *runtime* alone.  ``obs_dir`` is where the
    task's telemetry sidecar lands when ``REPRO_OBS=1`` (see
    :mod:`repro.obs.rollup`).

    ``cache`` substitutes a ready-made :class:`ArtifactCache` (e.g. the
    fleet's remote-backed write-through cache) for the one this function
    would build from ``cache_dir``.  Keyword-only and unpicklable-friendly:
    pool call sites keep shipping positional picklable args and never set
    it; in-process callers (the fleet drainer) may.

    Never raises: any failure is captured as a ``failed`` result.  This is
    the function the process pool ships to workers, so it must stay
    module-level and picklable-argument-only.
    """
    started = time.perf_counter()
    queue_wait_s = (
        max(0.0, time.time() - submitted_at) if submitted_at is not None else 0.0
    )
    if cache is None:
        cache = ArtifactCache(cache_dir)
    events: Dict[str, str] = {}
    with _task_telemetry(task, cache, queue_wait_s, submitted_at, obs_dir):
        try:
            with intra_budget(intra_workers):
                budget = (
                    intra_worker_budget() if intra_workers is None else intra_workers
                )
                pooled = budget > 1
                pool = pool_from_budget(budget)
                instances = _load_or_generate_dataset(task, cache, events)
                if task.attack == "gnnunlock":
                    record = _run_gnnunlock(task, instances, cache, events, pool=pool)
                elif task.attack == "dataset-summary":
                    record = _run_dataset_summary(task, instances)
                elif task.attack in BASELINE_ATTACKS:
                    record = _run_baseline(task, instances, pool=pool)
                    events["model"] = "off"
                else:
                    raise ValueError(
                        f"unknown attack {task.attack!r}; choose 'gnnunlock', "
                        f"'dataset-summary' or one of {sorted(BASELINE_ATTACKS)}"
                    )
            record.update(_task_metadata(task, pooled=pooled))
            if pooled:
                # Pooled runs use identity-seeded parallel streams; keep that
                # visible in the record (legacy serial records stay byte-stable).
                record["intra_workers"] = int(budget)
            record["cache"] = dict(events)
            return TaskResult(
                task_id=task.task_id,
                fingerprint=task.fingerprint(pooled=pooled),
                status="ok",
                wall_time_s=time.perf_counter() - started,
                queue_wait_s=queue_wait_s,
                record=record,
                cache_events=events,
                pid=os.getpid(),
            )
        except Exception as exc:  # noqa: BLE001 - crash isolation is the contract
            return TaskResult(
                task_id=task.task_id,
                fingerprint=task.fingerprint(
                    pooled=(intra_workers or intra_worker_budget()) > 1
                ),
                status="failed",
                wall_time_s=time.perf_counter() - started,
                queue_wait_s=queue_wait_s,
                error=f"{type(exc).__name__}: {exc}",
                traceback=traceback_module.format_exc(),
                cache_events=events,
                pid=os.getpid(),
            )


def _load_or_generate_dataset(
    task: AttackTask, cache: ArtifactCache, events: Dict[str, str]
) -> list:
    if not cache.enabled:
        events["dataset"] = "off"
        with span("dataset_generate", scheme=task.dataset.scheme):
            return task.dataset.generate()
    key = task.dataset.fingerprint()
    instances = cache.get("dataset", key)
    if instances is not None:
        events["dataset"] = "hit"
        return instances
    events["dataset"] = "miss"
    with span("dataset_generate", scheme=task.dataset.scheme):
        instances = task.dataset.generate()
    cache.put("dataset", key, instances)
    return instances


def _run_gnnunlock(
    task: AttackTask,
    instances: list,
    cache: ArtifactCache,
    events: Dict[str, str],
    pool=None,
) -> Dict[str, object]:
    dataset = task.dataset.build(instances)
    model = history = None
    # Pooled and legacy training produce different (each deterministic)
    # weights; key the cache by the stream so they never cross-contaminate.
    model_key = task.model_fingerprint(pooled=pool is not None)
    if cache.enabled:
        cached = cache.get("model", model_key)
        if cached is not None:
            model, history = cached
            events["model"] = "hit"
        else:
            events["model"] = "miss"
    else:
        events["model"] = "off"
    if model is None:
        model, history, _ = train_attack_model(
            dataset,
            task.target_benchmark,
            config=task.config,
            validation_benchmark=task.validation_benchmark,
            pool=pool,
        )
        if cache.enabled:
            cache.put("model", model_key, (model, history))
    outcome = attack_design(
        dataset,
        task.target_benchmark,
        config=task.config,
        validation_benchmark=task.validation_benchmark,
        verify_removal=task.verify_removal,
        apply_postprocessing=task.apply_postprocessing,
        model=model,
        history=history,
        pool=pool,
    )
    return outcome_record(outcome)


def _run_dataset_summary(task: AttackTask, instances: list) -> Dict[str, object]:
    """Table III-style row: build the dataset and record its shape only."""
    dataset = task.dataset.build(instances)
    summary = dataset.summary()
    return {
        "target": task.target_benchmark,
        "n_instances": len(instances),
        "n_circuits": int(summary["#Circuits"]),
        "n_nodes": int(summary["#Nodes"]),
        "n_classes": int(summary["#Classes"]),
        "n_features": int(summary["|f|"]),
    }


def _run_baseline(task: AttackTask, instances: list, pool=None) -> Dict[str, object]:
    attack_fn = _resolve_baseline(task.attack)
    kwargs = dict(task.attack_params)
    results = []
    for inst in instances:
        if inst.benchmark != task.target_benchmark:
            continue
        baseline = attack_fn(inst.result, pool=pool, **kwargs)
        results.append(
            {
                "instance": inst.name,
                "success": bool(baseline.success),
                "reason": baseline.reason,
            }
        )
    if not results:
        raise ValueError(
            f"dataset has no instances of target {task.target_benchmark!r}"
        )
    n_success = sum(r["success"] for r in results)
    return {
        "target": task.target_benchmark,
        "n_instances": len(results),
        "baseline_success_rate": n_success / len(results),
        "baseline_success": n_success == len(results),
        "instances": results,
    }


# ----------------------------------------------------------------------
def campaign_cache_stats(results: Sequence) -> CacheStats:
    """Aggregate per-task cache events into one :class:`CacheStats`.

    Workers count hits/misses in their own processes, so the per-handle
    counters never reach the campaign driver; the structured
    ``TaskResult.cache_events`` do.  Accepts :class:`TaskResult` objects or
    stored record dicts (their ``"cache"`` field).  Skipped (resumed) tasks
    contribute nothing — no artifact was touched on their behalf.
    """
    stats = CacheStats()
    for result in results:
        events = (
            result.cache_events
            if hasattr(result, "cache_events")
            else (result.get("cache") or {})
        )
        for kind, event in sorted(events.items()):
            if event == "hit":
                stats.count(kind, "hits")
            elif event == "miss":
                stats.count(kind, "misses")
    return stats


def run_campaign(
    tasks: Sequence[AttackTask],
    *,
    workers: Optional[int] = None,
    cache_dir: Optional[os.PathLike] = None,
    use_cache: bool = True,
    serial: bool = False,
    store=None,
    resume: bool = False,
    intra_workers: Optional[int] = None,
    echo: Optional[Callable[[str], None]] = None,
    on_result: Optional[Callable[[int, int, TaskResult], None]] = None,
    cancel: Optional[Callable[[], bool]] = None,
) -> List[TaskResult]:
    """Run a campaign and return one :class:`TaskResult` per task, in order.

    ``serial=True`` (or a single task / ``workers=1``) executes inline in the
    calling process; otherwise tasks fan out over ``workers`` processes
    (default: one per CPU, capped by the task count).  ``store`` is an
    optional :class:`~repro.runner.store.ResultStore` that every finished
    task's record is appended to.

    ``resume=True`` (requires ``store``) skips every task whose fingerprint
    already has an ``ok`` record in the store: the stored record is returned
    as a ``skipped`` result and nothing is re-executed or re-appended, so an
    interrupted campaign picks up exactly where it stopped and the final
    store contents match an uninterrupted run.  Fingerprints are
    stream-aware: records produced under an intra-task pool carry a
    ``pooled`` stamp, so resuming with a different intra-worker share never
    splices legacy-serial and pooled results into one report — the tasks
    simply re-execute on the requested stream.

    ``intra_workers`` is the campaign-wide budget for *intra*-task worker
    pools (default: ``REPRO_INTRA_WORKERS``).  Tasks fanned out over ``W``
    processes each receive ``max(1, intra_workers // W)`` so the two levels
    of parallelism together never oversubscribe the machine; a serial
    campaign hands the whole budget to each task in turn.

    ``timeout_s`` is a campaign wall-clock budget per task, measured from
    campaign submission (per-task *runtime* cannot be observed from outside
    the worker).  An expired task that never started is reported as
    ``timeout`` with a "budget exhausted" error; one caught mid-run is
    reported as ``timeout`` and its worker process is terminated when the
    pool shuts down.  Serial mode cannot interrupt an in-flight task — the
    budget is only checked between tasks.

    Timing: each result's ``wall_time_s`` is the task's true runtime
    (measured inside the worker) and ``queue_wait_s`` the gap between
    campaign submission and task start; both are stored on the record but
    excluded from rendered reports.  A task stopped before it ever started
    reports ``wall_time_s=0`` with the whole elapsed window as queue wait;
    one abandoned mid-run keeps the elapsed window as a wall-clock upper
    bound, since its true runtime is unobservable from outside.

    With ``REPRO_OBS=1`` and a ``store``, per-task telemetry sidecars are
    merged after the campaign into ``<store stem>.obs/rollup.json`` and
    ``trace.jsonl`` next to the store (see :mod:`repro.obs`) — records,
    fingerprints and reports are untouched.

    ``on_result`` is a progress hook called once per task, in task order, as
    each result is finalised: ``on_result(index, total, result)``.  Skipped
    (resumed) tasks fire it too, so ``index + 1`` out of ``total`` is always
    a faithful completion count.  The campaign service streams job progress
    through this hook.

    ``cancel`` is a zero-argument callable polled between tasks and, in the
    pooled path, every ~100ms while waiting on an in-flight future; once it
    returns true, tasks that have not produced a result are reported with
    status ``"cancelled"`` instead of being executed — a task already
    running on a worker process is abandoned and its worker terminated,
    mirroring the timeout path.  Serial mode cannot interrupt an in-flight
    task: like the wall-clock budget, cancellation is honoured between
    tasks.  Cancelled tasks append a ``cancelled`` record to the store;
    resume treats them like failures and re-executes them.
    """
    echo = echo if echo is not None else (lambda message: None)
    cache_path = str(cache_dir if cache_dir is not None else default_cache_dir())
    if not use_cache:
        cache_path = None
    tasks = list(tasks)

    # One share for the whole campaign (divided over the task-level workers,
    # computed from the full grid so resume skips cannot change it): this is
    # what execute_task receives, so it is also the stream the resume lookup
    # must match.
    total_intra = (
        intra_worker_budget() if intra_workers is None else max(1, intra_workers)
    )
    if serial or workers == 1 or len(tasks) <= 1:
        intra_share = total_intra
    else:
        # Divide by the tasks that can actually run concurrently: an
        # oversized explicit --workers must not dilute the share to nothing.
        task_workers = min(workers, len(tasks)) if workers else min(
            len(tasks), os.cpu_count() or 2
        )
        intra_share = max(1, total_intra // max(1, task_workers))
    pooled = intra_share > 1

    completed: Dict[str, Dict[str, object]] = {}
    if resume:
        if store is None:
            raise ValueError("resume=True needs the campaign's result store")
        completed = {
            fp: record
            for fp, record in store.latest().items()
            if record.get("status") == "ok"
        }
    prior_records = [completed.get(task.fingerprint(pooled=pooled)) for task in tasks]
    pending = [task for task, prior in zip(tasks, prior_records) if prior is None]
    if resume:
        echo(
            f"resume: {len(tasks) - len(pending)} task(s) already complete, "
            f"{len(pending)} to run"
        )
    obs_dir: Optional[str] = None
    if store is not None and obs_enabled():
        obs_dir = str(obs_dir_for_store(store.path))
    executed = _run_pending(
        pending,
        workers=workers,
        cache_path=cache_path,
        serial=serial,
        store=store,
        intra_workers=intra_share,
        echo=echo,
        cancel=cancel,
        obs_dir=obs_dir,
    )
    results: List[TaskResult] = []
    try:
        for index, (task, prior) in enumerate(zip(tasks, prior_records)):
            if prior is not None:
                result = TaskResult(
                    task_id=task.task_id,
                    fingerprint=task.fingerprint(pooled=pooled),
                    status="skipped",
                    record=prior,
                )
            else:
                result = next(executed)
            results.append(result)
            if on_result is not None:
                on_result(index, len(tasks), result)
    finally:
        # Deterministic pool shutdown: the generator's cleanup must not wait
        # for garbage collection (and must run even if on_result raised).
        executed.close()
    if obs_dir is not None:
        # Fold the task sidecars (plus any driver-side spans, e.g. a service
        # job's queue wait) into the campaign rollup next to the store.
        try:
            merge_sidecars(obs_dir, extra_events=get_tracer().drain())
        except Exception:  # noqa: BLE001 - telemetry is best-effort
            pass
    _auto_cache_gc(cache_path, echo)
    return results


def _auto_cache_gc(cache_path: Optional[str], echo: Callable[[str], None]) -> None:
    """Opportunistic ``cache gc`` under the env-configured budget.

    Runs after every campaign when ``REPRO_CACHE_MAX_BYTES`` and/or
    ``REPRO_CACHE_MAX_AGE`` are set, so long-running installations keep the
    artifact cache bounded without a separate maintenance job.
    """
    if cache_path is None:
        return
    max_bytes, max_age_s = cache_budget_from_env()
    if max_bytes is None and max_age_s is None:
        return
    cache = ArtifactCache(cache_path)
    evicted = cache.gc(max_bytes=max_bytes, max_age_s=max_age_s)
    freed = sum(entry.size_bytes for entry in evicted)
    echo(
        f"cache gc: evicted {len(evicted)} artifact(s), {freed} bytes "
        f"(budget: max_bytes={max_bytes}, max_age_s={max_age_s})"
    )


#: How often an in-flight future wait re-checks the cancellation callable.
_CANCEL_POLL_S = 0.1


class _CancelledWait(Exception):
    """Internal: cancellation observed while waiting on a running future."""


def _wait_for_future(future, remaining: Optional[float], cancelled: Callable[[], bool]):
    """``future.result`` that honours cancellation while blocked.

    Waits in short slices so a cancel request lands within ~100ms even when
    the running task would take minutes (or hangs); raises
    :class:`_CancelledWait` in that case, or :class:`FutureTimeout` when the
    caller's ``remaining`` budget runs out first.
    """
    deadline = None if remaining is None else time.monotonic() + remaining
    while True:
        slice_s = _CANCEL_POLL_S
        if deadline is not None:
            slice_s = min(slice_s, max(0.0, deadline - time.monotonic()))
        try:
            return future.result(timeout=slice_s)
        except FutureTimeout:
            if cancelled() and not future.done():
                raise _CancelledWait() from None
            if deadline is not None and time.monotonic() >= deadline:
                raise


def _run_pending(
    tasks: List[AttackTask],
    *,
    workers: Optional[int],
    cache_path: Optional[str],
    serial: bool,
    store,
    intra_workers: int = 1,
    echo: Callable[[str], None],
    cancel: Optional[Callable[[], bool]] = None,
    obs_dir: Optional[str] = None,
) -> Iterator[TaskResult]:
    """Execute tasks (serially or over a process pool), yielding in task order.

    A generator so :func:`run_campaign` can stream each result to its
    progress hook as it lands instead of after the whole campaign.
    ``intra_workers`` is each task's final share of the global budget (the
    campaign-level division already happened in :func:`run_campaign`).
    """
    submitted = time.perf_counter()
    submitted_wall = time.time()
    pooled = intra_workers > 1
    cancelled = cancel if cancel is not None else (lambda: False)

    def stopped_result(
        task: AttackTask, status: str, error: str, *, started: bool = False
    ) -> TaskResult:
        # A task stopped before it ever ran spent the whole window queued
        # (wall_time_s=0); one abandoned mid-run keeps the elapsed window as
        # a runtime upper bound — its true split is unobservable from here.
        elapsed = time.perf_counter() - submitted
        return TaskResult(
            task_id=task.task_id,
            fingerprint=task.fingerprint(pooled=pooled),
            status=status,
            wall_time_s=elapsed if started else 0.0,
            queue_wait_s=0.0 if started else elapsed,
            error=error,
        )

    if serial or workers == 1 or len(tasks) <= 1:
        for index, task in enumerate(tasks):
            elapsed = time.perf_counter() - submitted
            if cancelled():
                result = stopped_result(
                    task, "cancelled", "campaign cancelled before the task started"
                )
            elif task.timeout_s is not None and elapsed >= task.timeout_s:
                result = stopped_result(
                    task,
                    "timeout",
                    f"campaign budget of {task.timeout_s}s exhausted before "
                    "the task started",
                )
            else:
                result = execute_task(
                    task, cache_path, intra_workers, submitted_wall, obs_dir
                )
            _report(echo, index, len(tasks), result)
            _append(store, task, result, pooled=pooled)
            yield result
        return

    workers = workers or min(len(tasks), os.cpu_count() or 2)
    pool = ProcessPoolExecutor(max_workers=workers)
    abandoned_worker = False
    produced = 0
    try:
        futures = [
            pool.submit(
                execute_task, task, cache_path, intra_workers, submitted_wall, obs_dir
            )
            for task in tasks
        ]
        for index, (task, future) in enumerate(zip(tasks, futures)):
            if cancelled() and not future.done():
                if future.cancel():
                    result = stopped_result(
                        task,
                        "cancelled",
                        "campaign cancelled before the task started",
                    )
                else:
                    abandoned_worker = True
                    result = stopped_result(
                        task,
                        "cancelled",
                        "campaign cancelled mid-task; worker terminated",
                        started=True,
                    )
                _report(echo, index, len(tasks), result)
                _append(store, task, result, pooled=pooled)
                yield result
                continue
            remaining: Optional[float] = None
            if task.timeout_s is not None:
                remaining = max(0.0, task.timeout_s - (time.perf_counter() - submitted))
            try:
                result = _wait_for_future(future, remaining, cancelled)
            except _CancelledWait:
                abandoned_worker = True
                result = stopped_result(
                    task,
                    "cancelled",
                    "campaign cancelled mid-task; worker terminated",
                    started=True,
                )
            except FutureTimeout:
                if future.cancel():
                    result = stopped_result(
                        task,
                        "timeout",
                        f"campaign budget of {task.timeout_s}s exhausted before "
                        "the task started",
                    )
                else:
                    abandoned_worker = True
                    result = stopped_result(
                        task,
                        "timeout",
                        f"exceeded {task.timeout_s}s budget; worker abandoned",
                        started=True,
                    )
            except Exception as exc:  # noqa: BLE001 - e.g. BrokenProcessPool
                result = TaskResult(
                    task_id=task.task_id,
                    fingerprint=task.fingerprint(pooled=pooled),
                    status="failed",
                    wall_time_s=time.perf_counter() - submitted,
                    error=f"{type(exc).__name__}: {exc}",
                )
            _report(echo, index, len(tasks), result)
            _append(store, task, result, pooled=pooled)
            produced += 1
            yield result
    finally:
        # The consumer close()s this generator right after the final yield,
        # so "every result delivered" — not loop fall-through — is what
        # distinguishes a clean finish from an early abort.
        if abandoned_worker or produced < len(tasks):
            # Abandoned worker: a hung task would make shutdown(wait=True)
            # block forever.  Early abort: the consumer bailed mid-stream
            # (progress hook raised, generator closed early), so running the
            # remaining futures to completion would only burn CPU on results
            # nobody will collect.  Either way, drop the queue and kill the
            # stragglers so control returns promptly.
            processes = list((getattr(pool, "_processes", None) or {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for process in processes:
                try:
                    process.terminate()
                except Exception:  # noqa: BLE001 - best-effort cleanup
                    pass
        else:
            pool.shutdown(wait=True)


def _report(echo: Callable[[str], None], index: int, total: int, result: TaskResult) -> None:
    cache_note = ", ".join(
        f"{kind} {event}" for kind, event in sorted(result.cache_events.items())
    )
    detail = f" ({cache_note})" if cache_note else ""
    error = f" — {result.error}" if result.error else ""
    echo(
        f"[{index + 1}/{total}] {result.status:7s} {result.task_id} "
        f"{result.wall_time_s:.2f}s{detail}{error}"
    )


def _append(store, task: AttackTask, result: TaskResult, *, pooled: bool = False) -> None:
    if store is None:
        return
    record = dict(result.record or _task_metadata(task, pooled=pooled))
    record["status"] = result.status
    record["wall_time_s"] = result.wall_time_s
    record["queue_wait_s"] = result.queue_wait_s
    record["cache"] = dict(result.cache_events)
    if result.error:
        record["error"] = result.error
    store.append(record)


def append_result(
    store, task: AttackTask, result: TaskResult, *, pooled: bool = False
) -> None:
    """Append one finished task's record to ``store``.

    Public seam for out-of-band executors (the fleet coordinator) that
    must write records with exactly the shape ``run_campaign`` writes —
    the report renderer's byte-identity guarantee depends on it.
    """
    _append(store, task, result, pooled=pooled)
