"""Parallel campaign execution.

``run_campaign`` fans :class:`~repro.runner.campaign.AttackTask` units out
over a :class:`~concurrent.futures.ProcessPoolExecutor`.  Each worker runs
:func:`execute_task`, which is crash-isolated: every exception inside a task
is captured as a structured ``failed`` result with its traceback, so one
broken task never sinks the campaign.  Results come back in task order
regardless of completion order.

Determinism: dataset generation seeds from the dataset spec
(:meth:`AttackConfig.derive_seed` per instance) and GNN training seeds from
the task identity, never from execution order — a parallel run and a serial
run of the same campaign produce bit-identical records.
"""

from __future__ import annotations

import os
import time
import traceback as traceback_module
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from importlib import import_module
from typing import Callable, Dict, List, Optional, Sequence

from ..core.attack import AttackOutcome, attack_design, train_attack_model
from .cache import ArtifactCache, CacheStats, default_cache_dir
from .campaign import BASELINE_ATTACKS, AttackTask

__all__ = [
    "TaskResult",
    "campaign_cache_stats",
    "execute_task",
    "outcome_record",
    "run_campaign",
]


@dataclass
class TaskResult:
    """Structured outcome of one task, successful or not."""

    task_id: str
    fingerprint: str
    status: str  # "ok" | "failed" | "timeout"
    wall_time_s: float = 0.0
    record: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    #: Per-artifact-kind cache outcome: "hit", "miss" or "off".
    cache_events: Dict[str, str] = field(default_factory=dict)
    pid: Optional[int] = None

    @property
    def ok(self) -> bool:
        # "skipped" is a resumed task whose ok record already exists.
        return self.status in ("ok", "skipped")


def outcome_record(outcome: AttackOutcome) -> Dict[str, object]:
    """Flatten an :class:`AttackOutcome` into a JSON-serializable record."""

    def report_dict(report) -> Dict[str, object]:
        return {
            "accuracy": float(report.accuracy),
            "per_class": {
                cls: {
                    "precision": float(m.precision),
                    "recall": float(m.recall),
                    "f1": float(m.f1),
                    "support": int(m.support),
                }
                for cls, m in report.per_class.items()
            },
            "n_misclassified": int(report.n_misclassified),
            "misclassification_summary": report.misclassification_summary(),
        }

    macro = outcome.gnn_report.macro_average()
    return {
        "target": outcome.target_benchmark,
        "validation": outcome.validation_benchmark,
        "scheme": outcome.scheme,
        "class_names": list(outcome.gnn_report.class_names),
        "n_instances": len(outcome.instances),
        "gnn_accuracy": float(outcome.gnn_accuracy),
        "post_accuracy": float(outcome.post_accuracy),
        "gnn_macro_precision": float(macro["precision"]),
        "gnn_macro_recall": float(macro["recall"]),
        "gnn_macro_f1": float(macro["f1"]),
        "removal_success_rate": float(outcome.removal_success_rate),
        "gnn_report": report_dict(outcome.gnn_report),
        "post_report": report_dict(outcome.post_report),
        "instances": [
            {
                "name": inst.name,
                "removal_success": bool(inst.removal_success),
                "removal_error": inst.removal_error,
            }
            for inst in outcome.instances
        ],
        "train_nodes": int(outcome.train_nodes),
        "val_nodes": int(outcome.val_nodes),
        "test_nodes": int(outcome.test_nodes),
        "epochs_run": int(outcome.history.epochs_run),
        "train_time_s": float(outcome.history.train_time_s),
        "attack_time_s": float(outcome.attack_time_s),
    }


def _task_metadata(task: AttackTask) -> Dict[str, object]:
    ds = task.dataset
    return {
        "task_id": task.task_id,
        "fingerprint": task.fingerprint(),
        "attack": task.attack,
        "target": task.target_benchmark,
        "scheme": ds.scheme,
        "h": ds.h,
        "technology": ds.technology,
        "suite": ds.suite,
        "key_sizes": list(ds.key_sizes),
        "seed": ds.seed,
        "apply_postprocessing": task.apply_postprocessing,
        "verify_removal": task.verify_removal,
        "dataset_fingerprint": ds.fingerprint(),
    }


def _resolve_baseline(name: str) -> Callable:
    dotted = BASELINE_ATTACKS[name]
    module_name, _, attr = dotted.rpartition(".")
    return getattr(import_module(module_name), attr)


def execute_task(task: AttackTask, cache_dir: Optional[str] = None) -> TaskResult:
    """Run one task, consulting/filling the artifact cache.

    Never raises: any failure is captured as a ``failed`` result.  This is
    the function the process pool ships to workers, so it must stay
    module-level and picklable-argument-only.
    """
    started = time.perf_counter()
    cache = ArtifactCache(cache_dir)
    events: Dict[str, str] = {}
    try:
        instances = _load_or_generate_dataset(task, cache, events)
        if task.attack == "gnnunlock":
            record = _run_gnnunlock(task, instances, cache, events)
        elif task.attack == "dataset-summary":
            record = _run_dataset_summary(task, instances)
        elif task.attack in BASELINE_ATTACKS:
            record = _run_baseline(task, instances)
            events["model"] = "off"
        else:
            raise ValueError(
                f"unknown attack {task.attack!r}; choose 'gnnunlock', "
                f"'dataset-summary' or one of {sorted(BASELINE_ATTACKS)}"
            )
        record.update(_task_metadata(task))
        record["cache"] = dict(events)
        return TaskResult(
            task_id=task.task_id,
            fingerprint=task.fingerprint(),
            status="ok",
            wall_time_s=time.perf_counter() - started,
            record=record,
            cache_events=events,
            pid=os.getpid(),
        )
    except Exception as exc:  # noqa: BLE001 - crash isolation is the contract
        return TaskResult(
            task_id=task.task_id,
            fingerprint=task.fingerprint(),
            status="failed",
            wall_time_s=time.perf_counter() - started,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback_module.format_exc(),
            cache_events=events,
            pid=os.getpid(),
        )


def _load_or_generate_dataset(
    task: AttackTask, cache: ArtifactCache, events: Dict[str, str]
) -> list:
    if not cache.enabled:
        events["dataset"] = "off"
        return task.dataset.generate()
    key = task.dataset.fingerprint()
    instances = cache.get("dataset", key)
    if instances is not None:
        events["dataset"] = "hit"
        return instances
    events["dataset"] = "miss"
    instances = task.dataset.generate()
    cache.put("dataset", key, instances)
    return instances


def _run_gnnunlock(
    task: AttackTask, instances: list, cache: ArtifactCache, events: Dict[str, str]
) -> Dict[str, object]:
    dataset = task.dataset.build(instances)
    model = history = None
    if cache.enabled:
        key = task.model_fingerprint()
        cached = cache.get("model", key)
        if cached is not None:
            model, history = cached
            events["model"] = "hit"
        else:
            events["model"] = "miss"
    else:
        events["model"] = "off"
    if model is None:
        model, history, _ = train_attack_model(
            dataset,
            task.target_benchmark,
            config=task.config,
            validation_benchmark=task.validation_benchmark,
        )
        if cache.enabled:
            cache.put("model", task.model_fingerprint(), (model, history))
    outcome = attack_design(
        dataset,
        task.target_benchmark,
        config=task.config,
        validation_benchmark=task.validation_benchmark,
        verify_removal=task.verify_removal,
        apply_postprocessing=task.apply_postprocessing,
        model=model,
        history=history,
    )
    return outcome_record(outcome)


def _run_dataset_summary(task: AttackTask, instances: list) -> Dict[str, object]:
    """Table III-style row: build the dataset and record its shape only."""
    dataset = task.dataset.build(instances)
    summary = dataset.summary()
    return {
        "target": task.target_benchmark,
        "n_instances": len(instances),
        "n_circuits": int(summary["#Circuits"]),
        "n_nodes": int(summary["#Nodes"]),
        "n_classes": int(summary["#Classes"]),
        "n_features": int(summary["|f|"]),
    }


def _run_baseline(task: AttackTask, instances: list) -> Dict[str, object]:
    attack_fn = _resolve_baseline(task.attack)
    kwargs = dict(task.attack_params)
    results = []
    for inst in instances:
        if inst.benchmark != task.target_benchmark:
            continue
        baseline = attack_fn(inst.result, **kwargs)
        results.append(
            {
                "instance": inst.name,
                "success": bool(baseline.success),
                "reason": baseline.reason,
            }
        )
    if not results:
        raise ValueError(
            f"dataset has no instances of target {task.target_benchmark!r}"
        )
    n_success = sum(r["success"] for r in results)
    return {
        "target": task.target_benchmark,
        "n_instances": len(results),
        "baseline_success_rate": n_success / len(results),
        "baseline_success": n_success == len(results),
        "instances": results,
    }


# ----------------------------------------------------------------------
def campaign_cache_stats(results: Sequence) -> CacheStats:
    """Aggregate per-task cache events into one :class:`CacheStats`.

    Workers count hits/misses in their own processes, so the per-handle
    counters never reach the campaign driver; the structured
    ``TaskResult.cache_events`` do.  Accepts :class:`TaskResult` objects or
    stored record dicts (their ``"cache"`` field).  Skipped (resumed) tasks
    contribute nothing — no artifact was touched on their behalf.
    """
    stats = CacheStats()
    for result in results:
        events = (
            result.cache_events
            if hasattr(result, "cache_events")
            else (result.get("cache") or {})
        )
        for kind, event in sorted(events.items()):
            if event == "hit":
                stats.count(kind, "hits")
            elif event == "miss":
                stats.count(kind, "misses")
    return stats


def run_campaign(
    tasks: Sequence[AttackTask],
    *,
    workers: Optional[int] = None,
    cache_dir: Optional[os.PathLike] = None,
    use_cache: bool = True,
    serial: bool = False,
    store=None,
    resume: bool = False,
    echo: Optional[Callable[[str], None]] = None,
) -> List[TaskResult]:
    """Run a campaign and return one :class:`TaskResult` per task, in order.

    ``serial=True`` (or a single task / ``workers=1``) executes inline in the
    calling process; otherwise tasks fan out over ``workers`` processes
    (default: one per CPU, capped by the task count).  ``store`` is an
    optional :class:`~repro.runner.store.ResultStore` that every finished
    task's record is appended to.

    ``resume=True`` (requires ``store``) skips every task whose fingerprint
    already has an ``ok`` record in the store: the stored record is returned
    as a ``skipped`` result and nothing is re-executed or re-appended, so an
    interrupted campaign picks up exactly where it stopped and the final
    store contents match an uninterrupted run.

    ``timeout_s`` is a campaign wall-clock budget per task, measured from
    campaign submission (per-task *runtime* cannot be observed from outside
    the worker).  An expired task that never started is reported as
    ``timeout`` with a "budget exhausted" error; one caught mid-run is
    reported as ``timeout`` and its worker process is terminated when the
    pool shuts down.  Serial mode cannot interrupt an in-flight task — the
    budget is only checked between tasks.
    """
    echo = echo if echo is not None else (lambda message: None)
    cache_path = str(cache_dir if cache_dir is not None else default_cache_dir())
    if not use_cache:
        cache_path = None
    tasks = list(tasks)

    completed: Dict[str, Dict[str, object]] = {}
    if resume:
        if store is None:
            raise ValueError("resume=True needs the campaign's result store")
        completed = {
            fp: record
            for fp, record in store.latest().items()
            if record.get("status") == "ok"
        }
    prior_records = [completed.get(task.fingerprint()) for task in tasks]
    pending = [task for task, prior in zip(tasks, prior_records) if prior is None]
    if resume:
        echo(
            f"resume: {len(tasks) - len(pending)} task(s) already complete, "
            f"{len(pending)} to run"
        )
    executed = iter(
        _run_pending(
            pending,
            workers=workers,
            cache_path=cache_path,
            serial=serial,
            store=store,
            echo=echo,
        )
    )
    results: List[TaskResult] = []
    for task, prior in zip(tasks, prior_records):
        if prior is not None:
            results.append(
                TaskResult(
                    task_id=task.task_id,
                    fingerprint=task.fingerprint(),
                    status="skipped",
                    record=prior,
                )
            )
        else:
            results.append(next(executed))
    return results


def _run_pending(
    tasks: List[AttackTask],
    *,
    workers: Optional[int],
    cache_path: Optional[str],
    serial: bool,
    store,
    echo: Callable[[str], None],
) -> List[TaskResult]:
    """Execute tasks (serially or over a process pool), in task order."""
    results: List[TaskResult] = []
    submitted = time.perf_counter()

    def timeout_result(task: AttackTask, error: str) -> TaskResult:
        return TaskResult(
            task_id=task.task_id,
            fingerprint=task.fingerprint(),
            status="timeout",
            wall_time_s=time.perf_counter() - submitted,
            error=error,
        )

    if serial or workers == 1 or len(tasks) <= 1:
        for index, task in enumerate(tasks):
            elapsed = time.perf_counter() - submitted
            if task.timeout_s is not None and elapsed >= task.timeout_s:
                result = timeout_result(
                    task,
                    f"campaign budget of {task.timeout_s}s exhausted before "
                    "the task started",
                )
            else:
                result = execute_task(task, cache_path)
            results.append(result)
            _report(echo, index, len(tasks), result)
            _append(store, task, result)
        return results

    workers = workers or min(len(tasks), os.cpu_count() or 2)
    pool = ProcessPoolExecutor(max_workers=workers)
    abandoned_worker = False
    try:
        futures = [pool.submit(execute_task, task, cache_path) for task in tasks]
        for index, (task, future) in enumerate(zip(tasks, futures)):
            remaining: Optional[float] = None
            if task.timeout_s is not None:
                remaining = max(0.0, task.timeout_s - (time.perf_counter() - submitted))
            try:
                result = future.result(timeout=remaining)
            except FutureTimeout:
                if future.cancel():
                    result = timeout_result(
                        task,
                        f"campaign budget of {task.timeout_s}s exhausted before "
                        "the task started",
                    )
                else:
                    abandoned_worker = True
                    result = timeout_result(
                        task,
                        f"exceeded {task.timeout_s}s budget; worker abandoned",
                    )
            except Exception as exc:  # noqa: BLE001 - e.g. BrokenProcessPool
                result = TaskResult(
                    task_id=task.task_id,
                    fingerprint=task.fingerprint(),
                    status="failed",
                    wall_time_s=time.perf_counter() - submitted,
                    error=f"{type(exc).__name__}: {exc}",
                )
            results.append(result)
            _report(echo, index, len(tasks), result)
            _append(store, task, result)
    finally:
        if abandoned_worker:
            # A hung task would make shutdown(wait=True) block forever; drop
            # the queue and kill the stragglers so the campaign returns.
            processes = list((getattr(pool, "_processes", None) or {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for process in processes:
                try:
                    process.terminate()
                except Exception:  # noqa: BLE001 - best-effort cleanup
                    pass
        else:
            pool.shutdown(wait=True)
    return results


def _report(echo: Callable[[str], None], index: int, total: int, result: TaskResult) -> None:
    cache_note = ", ".join(
        f"{kind} {event}" for kind, event in sorted(result.cache_events.items())
    )
    detail = f" ({cache_note})" if cache_note else ""
    error = f" — {result.error}" if result.error else ""
    echo(
        f"[{index + 1}/{total}] {result.status:7s} {result.task_id} "
        f"{result.wall_time_s:.2f}s{detail}{error}"
    )


def _append(store, task: AttackTask, result: TaskResult) -> None:
    if store is None:
        return
    record = dict(result.record or _task_metadata(task))
    record["status"] = result.status
    record["wall_time_s"] = result.wall_time_s
    record["cache"] = dict(result.cache_events)
    if result.error:
        record["error"] = result.error
    store.append(record)
