"""Declarative attack campaigns.

A :class:`CampaignSpec` describes a grid of
``{benchmark suite x locking scheme x key-size group x AttackConfig
overrides x attack}`` and expands it into independent, deterministically
seeded :class:`AttackTask` units.  One task = one attack on one target
benchmark; tasks that share a :class:`DatasetSpec` reuse the same generated
(and cached) locked dataset.

Scheme grid entries are compact strings::

    "antisat"            Anti-SAT, bench-format netlists
    "ttlock"             TTLock on the default GEN65 library
    "sfll:2"             SFLL-HD with h = 2
    "sfll:4@GEN45"       SFLL-HD4 mapped onto the 45nm-like library
    "xor"                random XOR/XNOR locking (baseline campaigns)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..benchgen.profiles import ALL_PROFILES, DEFAULT_SIZE_SCALE
from ..core.config import AttackConfig
from ..core.dataset import LockedInstance, NodeDataset, build_dataset
from ..core.generation import (
    generate_instances,
    required_key_inputs,
    suite_benchmarks,
    suite_key_sizes,
)
from .cache import fingerprint

__all__ = [
    "AttackTask",
    "BASELINE_ATTACKS",
    "CampaignSpec",
    "DatasetSpec",
    "PROFILES",
    "SchemeSpec",
    "parse_scheme_spec",
    "profile_campaign",
    "profile_config",
    "profile_suites",
]

#: Baseline attacks the runner can schedule besides GNNUnlock; values are the
#: dotted entry points resolved lazily inside the worker (keeps imports cheap).
BASELINE_ATTACKS: Dict[str, str] = {
    "sat": "repro.baselines.sat_attack",
    "sps": "repro.baselines.sps_attack",
    "fall": "repro.baselines.fall_attack",
    "sfll-hd-unlocked": "repro.baselines.sfll_hd_unlocked_attack",
}

#: Technology a scheme maps onto when the spec string names none (mirrors the
#: paper: Anti-SAT stays in the bench vocabulary, SFLL/TTLock are synthesised).
_DEFAULT_TECHNOLOGY: Dict[str, str] = {
    "antisat": "BENCH8",
    "ttlock": "GEN65",
    "sfll": "GEN65",
    "xor": "BENCH8",
}


@dataclass(frozen=True)
class SchemeSpec:
    """Parsed form of a ``scheme[:h][@TECH]`` grid entry."""

    scheme: str
    h: Optional[int] = None
    technology: str = "BENCH8"

    def __str__(self) -> str:
        text = self.scheme
        if self.h is not None:
            text += f":{self.h}"
        return f"{text}@{self.technology}"


def parse_scheme_spec(spec: str) -> SchemeSpec:
    """Parse ``"sfll:2@GEN65"``-style grid entries."""
    if isinstance(spec, SchemeSpec):
        return spec
    text = spec.strip()
    technology: Optional[str] = None
    if "@" in text:
        text, technology = text.split("@", 1)
    h: Optional[int] = None
    if ":" in text:
        text, h_text = text.split(":", 1)
        h = int(h_text)
    scheme = text.lower().replace("-", "").replace("_", "")
    if scheme not in _DEFAULT_TECHNOLOGY and scheme not in ("sfllhd", "randomxor"):
        raise ValueError(f"unknown locking scheme in grid entry {spec!r}")
    scheme = {"sfllhd": "sfll", "randomxor": "xor"}.get(scheme, scheme)
    if scheme == "sfll" and h is None:
        raise ValueError(f"SFLL grid entries need an h value, e.g. 'sfll:2' ({spec!r})")
    return SchemeSpec(
        scheme=scheme,
        h=h,
        technology=(technology or _DEFAULT_TECHNOLOGY[scheme]).upper(),
    )


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DatasetSpec:
    """Everything that determines one generated locked dataset.

    The fields are exactly the inputs of
    :func:`repro.core.generation.generate_instances` — two equal specs
    produce bit-identical datasets, which is what makes the content-addressed
    cache sound.
    """

    scheme: str
    suite: str
    benchmarks: Tuple[str, ...]
    key_sizes: Tuple[int, ...]
    h: Optional[int] = None
    technology: str = "BENCH8"
    locks_per_setting: int = 1
    size_scale: float = DEFAULT_SIZE_SCALE
    synthesis_effort: str = "medium"
    seed: int = 11

    def canonical(self) -> Dict[str, object]:
        payload = dataclasses.asdict(self)
        payload["kind"] = "dataset"
        return payload

    def fingerprint(self) -> str:
        return fingerprint(self.canonical())

    def to_config(self, base: Optional[AttackConfig] = None) -> AttackConfig:
        """AttackConfig whose generation-relevant fields match this spec."""
        base = base if base is not None else AttackConfig()
        return dataclasses.replace(
            base,
            locks_per_setting=self.locks_per_setting,
            size_scale=self.size_scale,
            synthesis_effort=self.synthesis_effort,
            seed=self.seed,
        )

    def generate(self) -> List[LockedInstance]:
        """Generate the locked instances this spec describes."""
        return generate_instances(
            self.scheme,
            self.benchmarks,
            key_sizes=self.key_sizes,
            h=self.h,
            config=self.to_config(),
            technology=self.technology,
        )

    def build(self, instances: Sequence[LockedInstance]) -> NodeDataset:
        return build_dataset(instances)


@dataclass(frozen=True)
class AttackTask:
    """One schedulable unit: one attack against one target benchmark."""

    task_id: str
    dataset: DatasetSpec
    target_benchmark: str
    attack: str = "gnnunlock"
    validation_benchmark: Optional[str] = None
    config: AttackConfig = field(default_factory=AttackConfig)
    verify_removal: bool = True
    apply_postprocessing: bool = True
    #: Extra kwargs for baseline attack functions, as a hashable item tuple.
    attack_params: Tuple[Tuple[str, object], ...] = ()
    #: Wall-clock budget measured from campaign submission (None = unlimited).
    timeout_s: Optional[float] = None

    def canonical(self, *, pooled: bool = False) -> Dict[str, object]:
        """Identity of the task *result* (excludes scheduling details).

        ``pooled`` marks results computed under an intra-task worker pool —
        a deliberately different (equally deterministic) RNG stream than the
        legacy serial path, so the two must never satisfy each other's
        resume lookups or share cached records.  Legacy identities are
        unchanged, keeping existing stores resumable.
        """
        payload = {
            "kind": "task",
            "dataset": self.dataset.canonical(),
            "target": self.target_benchmark,
            "attack": self.attack,
            "validation": self.validation_benchmark,
            "gnn": dict(self.config.gnn.__dict__),
            "verify_removal": self.verify_removal,
            "apply_postprocessing": self.apply_postprocessing,
            "attack_params": sorted(self.attack_params),
        }
        if pooled:
            payload["stream"] = "pooled"
        return payload

    def fingerprint(self, *, pooled: bool = False) -> str:
        return fingerprint(self.canonical(pooled=pooled))

    def model_canonical(self, *, pooled: bool = False) -> Dict[str, object]:
        """Identity of the trained model (prediction-stage knobs excluded).

        ``pooled`` marks models trained under an intra-task worker pool:
        the pooled normalisation stream deliberately differs from the legacy
        serial stream (see :mod:`repro.parallel`), so the two variants are
        distinct artifacts and must never share a cache entry.  Legacy keys
        are unchanged, keeping previously cached models addressable.
        """
        payload = {
            "kind": "model",
            "dataset": self.dataset.canonical(),
            "target": self.target_benchmark,
            "validation": self.validation_benchmark,
            "gnn": dict(self.config.gnn.__dict__),
        }
        if pooled:
            payload["stream"] = "pooled"
        return payload

    def model_fingerprint(self, *, pooled: bool = False) -> str:
        return fingerprint(self.model_canonical(pooled=pooled))


# ----------------------------------------------------------------------
def _lockable(scheme: str, benchmark: str, key_sizes: Sequence[int], size_scale: float) -> bool:
    """Whether at least one key size of the group fits the benchmark's PIs."""
    profile = ALL_PROFILES.get(benchmark)
    if profile is None:
        return True  # unknown names fail at generation time with a clear error
    n_inputs = profile.scaled(size_scale)[0]
    return any(n_inputs >= required_key_inputs(scheme, k) for k in key_sizes)


@dataclass
class CampaignSpec:
    """Declarative grid of attack tasks.

    ``expand()`` produces the cartesian product of suites, schemes, key-size
    groups, config overrides and attacks, one task per target benchmark.
    Targets whose stand-in has too few primary inputs for every key size of a
    group are skipped, mirroring :func:`generate_instances`.
    """

    name: str = "campaign"
    schemes: Sequence[str] = ("antisat",)
    suites: Sequence[str] = ("ISCAS-85",)
    #: Key-size groups; each group is the sweep of ONE dataset.  ``None``
    #: uses the suite's paper sweep from the config as a single group.
    key_size_groups: Optional[Sequence[Sequence[int]]] = None
    #: Benchmarks forming each dataset; ``None`` = the whole suite.
    benchmarks: Optional[Sequence[str]] = None
    #: Benchmarks to attack; ``None`` = every dataset benchmark.
    targets: Optional[Sequence[str]] = None
    #: AttackConfig override grid (see :meth:`AttackConfig.with_overrides`).
    overrides: Sequence[Mapping[str, object]] = field(default_factory=lambda: ({},))
    attacks: Sequence[str] = ("gnnunlock",)
    attack_params: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    #: Post-processing grid axis for GNNUnlock tasks; ``(True, False)`` runs
    #: every attack with and without rectification (the Section V ablation).
    #: Both variants share one trained model, so the ablation trains once.
    postprocessing: Sequence[bool] = (True,)
    config: AttackConfig = field(default_factory=AttackConfig)
    timeout_s: Optional[float] = None
    #: Derive a distinct GNN training seed per task from the task identity.
    #: Identity-based (not order-based), so serial and parallel runs agree.
    derive_gnn_seeds: bool = True

    def expand(self) -> List[AttackTask]:
        tasks: List[AttackTask] = []
        overrides = list(self.overrides) or [{}]
        for suite in self.suites:
            pool = tuple(self.benchmarks or suite_benchmarks(suite))
            for scheme_text in self.schemes:
                spec = parse_scheme_spec(scheme_text)
                for override_idx, override in enumerate(overrides):
                    config = self.config.with_overrides(override)
                    groups = self.key_size_groups or (
                        tuple(suite_key_sizes(suite, config)),
                    )
                    for group in groups:
                        group = tuple(int(k) for k in group)
                        dataset = DatasetSpec(
                            scheme=spec.scheme,
                            suite=suite,
                            benchmarks=pool,
                            key_sizes=group,
                            h=spec.h,
                            technology=spec.technology,
                            locks_per_setting=config.locks_per_setting,
                            size_scale=config.size_scale,
                            synthesis_effort=config.synthesis_effort,
                            seed=config.seed,
                        )
                        targets = tuple(self.targets or pool)
                        for attack in self.attacks:
                            for target in targets:
                                if target not in pool:
                                    raise ValueError(
                                        f"target {target!r} is not part of the "
                                        f"dataset benchmarks {pool}"
                                    )
                                if not _lockable(
                                    spec.scheme, target, group, config.size_scale
                                ):
                                    continue
                                pp_axis = (
                                    tuple(self.postprocessing) or (True,)
                                    if attack == "gnnunlock"
                                    else (True,)
                                )
                                for apply_pp in pp_axis:
                                    tasks.append(
                                        self._make_task(
                                            spec, suite, dataset, group,
                                            override_idx, len(overrides),
                                            attack, target, config,
                                            apply_postprocessing=apply_pp,
                                        )
                                    )
        return tasks

    def _make_task(
        self,
        spec: SchemeSpec,
        suite: str,
        dataset: DatasetSpec,
        group: Tuple[int, ...],
        override_idx: int,
        n_overrides: int,
        attack: str,
        target: str,
        config: AttackConfig,
        *,
        apply_postprocessing: bool = True,
    ) -> AttackTask:
        key_part = "k" + ".".join(str(k) for k in group)
        id_parts = [self.name, str(spec), suite, key_part]
        if n_overrides > 1:
            id_parts.append(f"ov{override_idx}")
        id_parts += [attack, target]
        if not apply_postprocessing:
            id_parts.append("raw")
        task_config = config
        if self.derive_gnn_seeds and attack == "gnnunlock":
            # The seed ignores the post-processing axis on purpose: both
            # ablation variants must share one trained (and cached) model.
            task_config = config.with_gnn(
                seed=config.derive_seed(
                    "gnn", str(spec), suite, key_part, override_idx, target
                )
                % (2**32)
            )
        params = tuple(sorted(self.attack_params.get(attack, {}).items()))
        return AttackTask(
            task_id="/".join(id_parts),
            dataset=dataset,
            target_benchmark=target,
            attack=attack,
            config=task_config,
            apply_postprocessing=apply_postprocessing,
            attack_params=params,
            timeout_s=self.timeout_s,
        )


# ----------------------------------------------------------------------
# Workload profiles (shared by the CLI and the benchmark harnesses).

PROFILES: Tuple[str, ...] = ("quick", "full")


def profile_config(profile: str = "quick") -> AttackConfig:
    """The AttackConfig of a named workload profile.

    * ``quick``  — ISCAS-only, one lock per setting, reduced key sweep;
      every paper table regenerates in well under a minute.
    * ``full``   — both suites, the paper's sweeps, two locks per setting;
      tens of minutes on a laptop CPU.
    """
    profile = profile.lower()
    if profile == "full":
        return AttackConfig(
            locks_per_setting=2,
            iscas_key_sizes=(8, 16, 32, 64),
            itc_key_sizes=(32, 64, 128),
            seed=11,
        ).with_gnn(hidden_dim=64, epochs=120, root_nodes=1500, eval_every=10)
    if profile == "quick":
        return AttackConfig(
            locks_per_setting=1,
            iscas_key_sizes=(8, 16, 32),
            itc_key_sizes=(32, 64),
            seed=11,
        ).with_gnn(hidden_dim=32, epochs=60, root_nodes=600, eval_every=5)
    raise ValueError(f"unknown profile {profile!r}; choose from {PROFILES}")


def profile_suites(profile: str = "quick") -> Tuple[str, ...]:
    """Benchmark suites a profile covers."""
    return ("ISCAS-85", "ITC-99") if profile.lower() == "full" else ("ISCAS-85",)


def profile_campaign(profile: str = "quick", **kwargs) -> CampaignSpec:
    """A ready-to-run campaign for a workload profile.

    Keyword arguments override any :class:`CampaignSpec` field, so callers
    can narrow the grid (``schemes=("antisat",), targets=("c2670",)``).
    """
    fields = {
        "name": f"{profile}-campaign",
        "schemes": ("antisat",),
        "suites": profile_suites(profile),
        "config": profile_config(profile),
    }
    fields.update(kwargs)
    return CampaignSpec(**fields)
