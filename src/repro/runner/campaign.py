"""Declarative attack campaigns.

A :class:`CampaignSpec` describes a grid of
``{benchmark suite x locking scheme x key-size group x AttackConfig
overrides x attack}`` and expands it into independent, deterministically
seeded :class:`AttackTask` units.  One task = one attack on one target
benchmark; tasks that share a :class:`DatasetSpec` reuse the same generated
(and cached) locked dataset.

Scheme grid entries are compact strings::

    "antisat"            Anti-SAT, bench-format netlists
    "ttlock"             TTLock on the default GEN65 library
    "sfll:2"             SFLL-HD with h = 2
    "sfll:4@GEN45"       SFLL-HD4 mapped onto the 45nm-like library
    "xor"                random XOR/XNOR locking (baseline campaigns)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..benchgen.profiles import ALL_PROFILES, DEFAULT_SIZE_SCALE
from ..core.config import AttackConfig
from ..core.dataset import LockedInstance, NodeDataset, build_dataset
from ..core.generation import (
    generate_instances,
    required_key_inputs,
    suite_benchmarks,
    suite_key_sizes,
)
from ..gnn.model import GnnConfig
from ..locking import available_schemes, find_scheme, get_scheme
from .cache import fingerprint

__all__ = [
    "AttackTask",
    "BASELINE_ATTACKS",
    "CampaignSpec",
    "DatasetSpec",
    "PROFILES",
    "SchemeSpec",
    "config_from_dict",
    "config_to_dict",
    "parse_scheme_spec",
    "registered_attacks",
    "profile_campaign",
    "profile_config",
    "profile_suites",
]

#: Baseline attacks the runner can schedule besides GNNUnlock; values are the
#: dotted entry points resolved lazily inside the worker (keeps imports cheap).
BASELINE_ATTACKS: Dict[str, str] = {
    "sat": "repro.baselines.sat_attack",
    "sps": "repro.baselines.sps_attack",
    "fall": "repro.baselines.fall_attack",
    "sfll-hd-unlocked": "repro.baselines.sfll_hd_unlocked_attack",
}

def registered_attacks(*, include_summary: bool = False) -> Tuple[str, ...]:
    """Every attack the runner can schedule, sorted.

    ``dataset-summary`` is a diagnostic rather than an attack; the capability
    matrix excludes it unless ``include_summary`` is set.
    """
    names = set(BASELINE_ATTACKS) | {"gnnunlock"}
    if include_summary:
        names.add("dataset-summary")
    return tuple(sorted(names))


@dataclass(frozen=True)
class SchemeSpec:
    """Parsed form of a ``scheme[:h][@TECH]`` grid entry."""

    scheme: str
    h: Optional[int] = None
    technology: str = "BENCH8"

    def __str__(self) -> str:
        text = self.scheme
        if self.h is not None:
            text += f":{self.h}"
        return f"{text}@{self.technology}"


def parse_scheme_spec(spec: str) -> SchemeSpec:
    """Parse ``"sfll:2@GEN65"``-style grid entries."""
    if isinstance(spec, SchemeSpec):
        return spec
    text = spec.strip()
    technology: Optional[str] = None
    if "@" in text:
        text, technology = text.split("@", 1)
    h: Optional[int] = None
    if ":" in text:
        text, h_text = text.split(":", 1)
        h = int(h_text)
    info = find_scheme(text)
    if info is None:
        raise ValueError(
            f"unknown locking scheme in grid entry {spec!r}; registered: "
            f"{', '.join(available_schemes())}"
        )
    if info.uses_h and h is None:
        raise ValueError(
            f"{info.display_name} grid entries need an h value, e.g. "
            f"'{info.name}:2' ({spec!r})"
        )
    if h is not None and not info.uses_h:
        raise ValueError(
            f"{info.display_name} does not take an h value ({spec!r})"
        )
    return SchemeSpec(
        scheme=info.name,
        h=h,
        technology=(technology or info.default_technology).upper(),
    )


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DatasetSpec:
    """Everything that determines one generated locked dataset.

    The fields are exactly the inputs of
    :func:`repro.core.generation.generate_instances` — two equal specs
    produce bit-identical datasets, which is what makes the content-addressed
    cache sound.
    """

    scheme: str
    suite: str
    benchmarks: Tuple[str, ...]
    key_sizes: Tuple[int, ...]
    h: Optional[int] = None
    technology: str = "BENCH8"
    locks_per_setting: int = 1
    size_scale: float = DEFAULT_SIZE_SCALE
    synthesis_effort: str = "medium"
    seed: int = 11

    def canonical(self) -> Dict[str, object]:
        payload = dataclasses.asdict(self)
        payload["kind"] = "dataset"
        return payload

    def fingerprint(self) -> str:
        return fingerprint(self.canonical())

    def to_config(self, base: Optional[AttackConfig] = None) -> AttackConfig:
        """AttackConfig whose generation-relevant fields match this spec."""
        base = base if base is not None else AttackConfig()
        return dataclasses.replace(
            base,
            locks_per_setting=self.locks_per_setting,
            size_scale=self.size_scale,
            synthesis_effort=self.synthesis_effort,
            seed=self.seed,
        )

    def generate(self) -> List[LockedInstance]:
        """Generate the locked instances this spec describes."""
        return generate_instances(
            self.scheme,
            self.benchmarks,
            key_sizes=self.key_sizes,
            h=self.h,
            config=self.to_config(),
            technology=self.technology,
        )

    def build(self, instances: Sequence[LockedInstance]) -> NodeDataset:
        return build_dataset(instances)


@dataclass(frozen=True)
class AttackTask:
    """One schedulable unit: one attack against one target benchmark."""

    task_id: str
    dataset: DatasetSpec
    target_benchmark: str
    attack: str = "gnnunlock"
    validation_benchmark: Optional[str] = None
    config: AttackConfig = field(default_factory=AttackConfig)
    verify_removal: bool = True
    apply_postprocessing: bool = True
    #: Extra kwargs for baseline attack functions, as a hashable item tuple.
    attack_params: Tuple[Tuple[str, object], ...] = ()
    #: Wall-clock budget measured from campaign submission (None = unlimited).
    timeout_s: Optional[float] = None

    def canonical(self, *, pooled: bool = False) -> Dict[str, object]:
        """Identity of the task *result* (excludes scheduling details).

        ``pooled`` marks results computed under an intra-task worker pool —
        a deliberately different (equally deterministic) RNG stream than the
        legacy serial path, so the two must never satisfy each other's
        resume lookups or share cached records.  Legacy identities are
        unchanged, keeping existing stores resumable.
        """
        payload = {
            "kind": "task",
            "dataset": self.dataset.canonical(),
            "target": self.target_benchmark,
            "attack": self.attack,
            "validation": self.validation_benchmark,
            "gnn": dict(self.config.gnn.__dict__),
            "verify_removal": self.verify_removal,
            "apply_postprocessing": self.apply_postprocessing,
            "attack_params": sorted(self.attack_params),
        }
        if pooled:
            payload["stream"] = "pooled"
        return payload

    def fingerprint(self, *, pooled: bool = False) -> str:
        return fingerprint(self.canonical(pooled=pooled))

    def model_canonical(self, *, pooled: bool = False) -> Dict[str, object]:
        """Identity of the trained model (prediction-stage knobs excluded).

        ``pooled`` marks models trained under an intra-task worker pool:
        the pooled normalisation stream deliberately differs from the legacy
        serial stream (see :mod:`repro.parallel`), so the two variants are
        distinct artifacts and must never share a cache entry.  Legacy keys
        are unchanged, keeping previously cached models addressable.
        """
        payload = {
            "kind": "model",
            "dataset": self.dataset.canonical(),
            "target": self.target_benchmark,
            "validation": self.validation_benchmark,
            "gnn": dict(self.config.gnn.__dict__),
        }
        if pooled:
            payload["stream"] = "pooled"
        return payload

    def model_fingerprint(self, *, pooled: bool = False) -> str:
        return fingerprint(self.model_canonical(pooled=pooled))


# ----------------------------------------------------------------------
# AttackConfig <-> JSON.  The service accepts campaign submissions over the
# wire, so specs need a faithful, validating round-trip through plain JSON.


def config_to_dict(config: AttackConfig) -> Dict[str, object]:
    """Flatten an :class:`AttackConfig` (nested GnnConfig included) to JSON."""
    return dataclasses.asdict(config)


def config_from_dict(payload: Mapping[str, object]) -> AttackConfig:
    """Rebuild an :class:`AttackConfig` from :func:`config_to_dict` output.

    Unknown fields raise :class:`ValueError` (a typo in a submitted spec must
    not silently fall back to a default), sequences are normalised to tuples
    so the config stays hashable, and the result is type-checked with
    :func:`validate_config`.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(f"config must be a JSON object, got {type(payload).__name__}")
    own_fields = {f.name for f in dataclasses.fields(AttackConfig)}
    unknown = sorted(set(payload) - own_fields)
    if unknown:
        raise ValueError(f"unknown AttackConfig field(s): {', '.join(unknown)}")
    data = dict(payload)
    gnn_payload = data.pop("gnn", None)
    gnn = GnnConfig()
    if gnn_payload is not None:
        if not isinstance(gnn_payload, Mapping):
            raise ValueError("config field 'gnn' must be a JSON object")
        gnn_fields = {f.name for f in dataclasses.fields(GnnConfig)}
        unknown = sorted(set(gnn_payload) - gnn_fields)
        if unknown:
            raise ValueError(f"unknown GnnConfig field(s): {', '.join(unknown)}")
        gnn = GnnConfig(**dict(gnn_payload))
    for key, value in data.items():
        if isinstance(value, (list, tuple)):
            data[key] = tuple(value)
    config = AttackConfig(gnn=gnn, **data)
    validate_config(config)
    return config


def validate_config(config: AttackConfig) -> None:
    """Type-check every config field against the dataclass defaults.

    Catches specs that would only explode deep inside a worker (e.g. a CLI
    override like ``gnn.epochs=abc`` or a JSON submission carrying a string
    where an int belongs) while they are still cheap to reject.
    """

    def check(obj: object, prefix: str) -> None:
        defaults = type(obj)()
        for spec_field in dataclasses.fields(obj):
            value = getattr(obj, spec_field.name)
            default = getattr(defaults, spec_field.name)
            name = f"{prefix}{spec_field.name}"
            if dataclasses.is_dataclass(default):
                check(value, f"{name}.")
                continue
            if isinstance(default, bool):
                ok = isinstance(value, bool)
            elif isinstance(default, int):
                ok = isinstance(value, int) and not isinstance(value, bool)
            elif isinstance(default, float):
                ok = isinstance(value, (int, float)) and not isinstance(value, bool)
            elif isinstance(default, str):
                ok = isinstance(value, str)
            elif isinstance(default, tuple):
                ok = isinstance(value, (list, tuple)) and all(
                    isinstance(item, int) and not isinstance(item, bool)
                    for item in value
                )
            else:
                continue
            if not ok:
                raise ValueError(
                    f"invalid value for {name}: {value!r} "
                    f"(expected {type(default).__name__})"
                )

    check(config, "")


#: Attacks schedulable besides the baselines (see :data:`BASELINE_ATTACKS`).
_BUILTIN_ATTACKS = ("gnnunlock", "dataset-summary")


# ----------------------------------------------------------------------
def _lockable(scheme: str, benchmark: str, key_sizes: Sequence[int], size_scale: float) -> bool:
    """Whether at least one key size of the group fits the benchmark's PIs."""
    profile = ALL_PROFILES.get(benchmark)
    if profile is None:
        return True  # unknown names fail at generation time with a clear error
    n_inputs = profile.scaled(size_scale)[0]
    return any(n_inputs >= required_key_inputs(scheme, k) for k in key_sizes)


@dataclass
class CampaignSpec:
    """Declarative grid of attack tasks.

    ``expand()`` produces the cartesian product of suites, schemes, key-size
    groups, config overrides and attacks, one task per target benchmark.
    Targets whose stand-in has too few primary inputs for every key size of a
    group are skipped, mirroring :func:`generate_instances`.
    """

    name: str = "campaign"
    schemes: Sequence[str] = ("antisat",)
    suites: Sequence[str] = ("ISCAS-85",)
    #: Key-size groups; each group is the sweep of ONE dataset.  ``None``
    #: uses the suite's paper sweep from the config as a single group.
    key_size_groups: Optional[Sequence[Sequence[int]]] = None
    #: Benchmarks forming each dataset; ``None`` = the whole suite.
    benchmarks: Optional[Sequence[str]] = None
    #: Benchmarks to attack; ``None`` = every dataset benchmark.
    targets: Optional[Sequence[str]] = None
    #: AttackConfig override grid (see :meth:`AttackConfig.with_overrides`).
    overrides: Sequence[Mapping[str, object]] = field(default_factory=lambda: ({},))
    attacks: Sequence[str] = ("gnnunlock",)
    attack_params: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    #: Post-processing grid axis for GNNUnlock tasks; ``(True, False)`` runs
    #: every attack with and without rectification (the Section V ablation).
    #: Both variants share one trained model, so the ablation trains once.
    postprocessing: Sequence[bool] = (True,)
    config: AttackConfig = field(default_factory=AttackConfig)
    timeout_s: Optional[float] = None
    #: Derive a distinct GNN training seed per task from the task identity.
    #: Identity-based (not order-based), so serial and parallel runs agree.
    derive_gnn_seeds: bool = True
    #: Scheduling class for the campaign service (higher runs first; FIFO
    #: within a class).  Pure scheduling metadata: it is excluded from the
    #: campaign fingerprint, so the same grid at a different priority still
    #: dedupes onto the existing job.
    priority: int = 0

    def expand(self) -> List[AttackTask]:
        tasks: List[AttackTask] = []
        overrides = list(self.overrides) or [{}]
        for suite in self.suites:
            pool = tuple(self.benchmarks or suite_benchmarks(suite))
            for scheme_text in self.schemes:
                spec = parse_scheme_spec(scheme_text)
                for override_idx, override in enumerate(overrides):
                    config = self.config.with_overrides(override)
                    groups = self.key_size_groups or (
                        tuple(suite_key_sizes(suite, config)),
                    )
                    for group in groups:
                        group = tuple(int(k) for k in group)
                        dataset = DatasetSpec(
                            scheme=spec.scheme,
                            suite=suite,
                            benchmarks=pool,
                            key_sizes=group,
                            h=spec.h,
                            technology=spec.technology,
                            locks_per_setting=config.locks_per_setting,
                            size_scale=config.size_scale,
                            synthesis_effort=config.synthesis_effort,
                            seed=config.seed,
                        )
                        targets = tuple(self.targets or pool)
                        for attack in self.attacks:
                            for target in targets:
                                if target not in pool:
                                    raise ValueError(
                                        f"target {target!r} is not part of the "
                                        f"dataset benchmarks {pool}"
                                    )
                                if not _lockable(
                                    spec.scheme, target, group, config.size_scale
                                ):
                                    continue
                                pp_axis = (
                                    tuple(self.postprocessing) or (True,)
                                    if attack == "gnnunlock"
                                    else (True,)
                                )
                                for apply_pp in pp_axis:
                                    tasks.append(
                                        self._make_task(
                                            spec, suite, dataset, group,
                                            override_idx, len(overrides),
                                            attack, target, config,
                                            apply_postprocessing=apply_pp,
                                        )
                                    )
        return tasks

    def _make_task(
        self,
        spec: SchemeSpec,
        suite: str,
        dataset: DatasetSpec,
        group: Tuple[int, ...],
        override_idx: int,
        n_overrides: int,
        attack: str,
        target: str,
        config: AttackConfig,
        *,
        apply_postprocessing: bool = True,
    ) -> AttackTask:
        key_part = "k" + ".".join(str(k) for k in group)
        id_parts = [self.name, str(spec), suite, key_part]
        if n_overrides > 1:
            id_parts.append(f"ov{override_idx}")
        id_parts += [attack, target]
        if not apply_postprocessing:
            id_parts.append("raw")
        task_config = config
        if self.derive_gnn_seeds and attack == "gnnunlock":
            # The seed ignores the post-processing axis on purpose: both
            # ablation variants must share one trained (and cached) model.
            task_config = config.with_gnn(
                seed=config.derive_seed(
                    "gnn", str(spec), suite, key_part, override_idx, target
                )
                % (2**32)
            )
        params = tuple(sorted(self.attack_params.get(attack, {}).items()))
        return AttackTask(
            task_id="/".join(id_parts),
            dataset=dataset,
            target_benchmark=target,
            attack=attack,
            config=task_config,
            apply_postprocessing=apply_postprocessing,
            attack_params=params,
            timeout_s=self.timeout_s,
        )

    # ------------------------------------------------------------------
    # JSON round-trip and validation (the campaign service's wire format).

    def to_json_dict(self) -> Dict[str, object]:
        """Plain-JSON rendering of the spec; inverse of :meth:`from_json_dict`.

        Tuples become lists and scheme entries become their compact string
        form, so the payload survives ``json.dumps``/``json.loads`` and two
        specs that expand identically serialise identically.
        """

        def names(values: Optional[Sequence[object]]) -> Optional[List[str]]:
            return None if values is None else [str(v) for v in values]

        payload: Dict[str, object] = {
            "name": str(self.name),
            "schemes": [str(parse_scheme_spec(s)) for s in self.schemes],
            "suites": [str(s) for s in self.suites],
            "key_size_groups": (
                None
                if self.key_size_groups is None
                else [[int(k) for k in group] for group in self.key_size_groups]
            ),
            "benchmarks": names(self.benchmarks),
            "targets": names(self.targets),
            "overrides": [dict(override) for override in self.overrides],
            "attacks": [str(a) for a in self.attacks],
            "attack_params": {
                str(attack): dict(params)
                for attack, params in self.attack_params.items()
            },
            "postprocessing": [bool(p) for p in self.postprocessing],
            "config": config_to_dict(self.config),
            "timeout_s": None if self.timeout_s is None else float(self.timeout_s),
            "derive_gnn_seeds": bool(self.derive_gnn_seeds),
        }
        # Emitted only when set: a default-priority spec keeps the exact
        # pre-priority wire shape, so it still submits to older servers
        # (whose from_json_dict rejects unknown fields).
        if self.priority != 0:
            payload["priority"] = int(self.priority)
        return payload

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, object]) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_json_dict` output (or hand-written
        JSON), rejecting unknown fields with a clear message."""
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"campaign spec must be a JSON object, got {type(payload).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown CampaignSpec field(s): {', '.join(unknown)}")

        def listy(key: str, value: object) -> list:
            if isinstance(value, (str, Mapping)) or not hasattr(value, "__iter__"):
                raise ValueError(f"campaign field {key!r} must be a JSON array")
            return list(value)

        data = dict(payload)
        kwargs: Dict[str, object] = {}
        if "config" in data:
            kwargs["config"] = config_from_dict(data.pop("config"))
        for key in ("schemes", "suites", "attacks"):
            if key in data and data[key] is not None:
                kwargs[key] = tuple(str(v) for v in listy(key, data.pop(key)))
        for key in ("benchmarks", "targets"):
            if key in data:
                value = data.pop(key)
                if value is not None:
                    kwargs[key] = tuple(str(v) for v in listy(key, value))
        if data.get("key_size_groups") is not None:
            groups = listy("key_size_groups", data.pop("key_size_groups"))
            try:
                kwargs["key_size_groups"] = tuple(
                    tuple(int(k) for k in listy("key_size_groups", group))
                    for group in groups
                )
            except (TypeError, ValueError):
                raise ValueError(
                    "campaign field 'key_size_groups' must be an array of "
                    "integer arrays, e.g. [[8, 16], [32]]"
                ) from None
        else:
            data.pop("key_size_groups", None)
        if "overrides" in data:
            overrides = listy("overrides", data.pop("overrides"))
            if not all(isinstance(o, Mapping) for o in overrides):
                raise ValueError(
                    "campaign field 'overrides' must be an array of objects, "
                    'e.g. [{}, {"gnn.epochs": 5}]'
                )
            kwargs["overrides"] = tuple(dict(o) for o in overrides)
        if "attack_params" in data:
            params_map = data.pop("attack_params")
            if not isinstance(params_map, Mapping) or not all(
                isinstance(p, Mapping) for p in params_map.values()
            ):
                raise ValueError(
                    "campaign field 'attack_params' must map attack names to "
                    'objects, e.g. {"sat": {"max_iterations": 12}}'
                )
            kwargs["attack_params"] = {
                str(attack): dict(params) for attack, params in params_map.items()
            }
        if "postprocessing" in data:
            kwargs["postprocessing"] = tuple(
                bool(p) for p in listy("postprocessing", data.pop("postprocessing"))
            )
        kwargs.update(data)  # name, timeout_s, derive_gnn_seeds, priority pass through
        return cls(**kwargs)

    def canonical(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"kind": "campaign"}
        payload.update(self.to_json_dict())
        # Priority is scheduling metadata, not workload identity: the same
        # grid submitted urgent or idle must hash to the same job.
        payload.pop("priority", None)
        return payload

    def fingerprint(self) -> str:
        """Content address of the whole campaign (used for job dedup)."""
        return fingerprint(self.canonical())

    def validate(self) -> List[AttackTask]:
        """Check the spec end to end and return its expanded tasks.

        Raises :class:`ValueError` — never a raw traceback from deep inside a
        worker — on an unknown scheme, suite, benchmark, target or attack and
        on config values of the wrong type.  Called by ``repro run`` before
        executing (or dry-run printing) anything and by the campaign service
        on every submission.
        """
        if not isinstance(self.name, str):
            raise ValueError(f"campaign name must be a string, got {self.name!r}")
        if self.timeout_s is not None and (
            isinstance(self.timeout_s, bool)
            or not isinstance(self.timeout_s, (int, float))
        ):
            raise ValueError(
                f"timeout_s must be a number of seconds or null, got "
                f"{self.timeout_s!r}"
            )
        for scheme in self.schemes:
            parse_scheme_spec(scheme)
        for suite in self.suites:
            suite_benchmarks(suite)
        for kind, values in (("benchmark", self.benchmarks), ("target", self.targets)):
            for name in values or ():
                if name not in ALL_PROFILES:
                    raise ValueError(
                        f"unknown {kind} {name!r}; choose from "
                        f"{', '.join(sorted(ALL_PROFILES))}"
                    )
        known_attacks = set(_BUILTIN_ATTACKS) | set(BASELINE_ATTACKS)
        for attack in self.attacks:
            if attack not in known_attacks:
                raise ValueError(
                    f"unknown attack {attack!r}; choose from {sorted(known_attacks)}"
                )
        for group in self.key_size_groups or ():
            for key_size in group:
                if int(key_size) <= 0:
                    raise ValueError(f"key sizes must be positive, got {key_size!r}")
        self._validate_scheme_params()
        if isinstance(self.priority, bool) or not isinstance(self.priority, int):
            raise ValueError(
                f"priority must be an integer, got {self.priority!r}"
            )
        validate_config(self.config)
        for override in self.overrides:
            validate_config(self.config.with_overrides(override))
        return self.expand()

    def _validate_scheme_params(self) -> None:
        """Typed scheme-parameter validation at spec time.

        Runs every (scheme, key size) combination the grid will expand to
        through the registry's parameter schema, so an out-of-range ``h`` or
        an invalid key size is rejected here (CLI exit 2 / HTTP 400) instead
        of raising deep inside dataset generation on a worker.
        """
        for scheme_text in self.schemes:
            spec = parse_scheme_spec(scheme_text)
            info = get_scheme(spec.scheme)
            key_sizes = set()
            for group in self.key_size_groups or ():
                key_sizes.update(int(k) for k in group)
            if self.key_size_groups is None:
                for suite in self.suites:
                    for override in list(self.overrides) or [{}]:
                        config = self.config.with_overrides(override)
                        key_sizes.update(
                            int(k) for k in suite_key_sizes(suite, config)
                        )
            for key_size in sorted(key_sizes):
                params: Dict[str, object] = {"key_size": key_size}
                if info.uses_h:
                    params["h"] = spec.h
                try:
                    info.validate_params(params)
                except ValueError as exc:
                    raise ValueError(
                        f"invalid parameters for scheme {scheme_text!r}: {exc}"
                    ) from None


# ----------------------------------------------------------------------
# Workload profiles (shared by the CLI and the benchmark harnesses).

PROFILES: Tuple[str, ...] = ("quick", "full")


def profile_config(profile: str = "quick") -> AttackConfig:
    """The AttackConfig of a named workload profile.

    * ``quick``  — ISCAS-only, one lock per setting, reduced key sweep;
      every paper table regenerates in well under a minute.
    * ``full``   — both suites, the paper's sweeps, two locks per setting;
      tens of minutes on a laptop CPU.
    """
    profile = profile.lower()
    if profile == "full":
        return AttackConfig(
            locks_per_setting=2,
            iscas_key_sizes=(8, 16, 32, 64),
            itc_key_sizes=(32, 64, 128),
            seed=11,
        ).with_gnn(hidden_dim=64, epochs=120, root_nodes=1500, eval_every=10)
    if profile == "quick":
        return AttackConfig(
            locks_per_setting=1,
            iscas_key_sizes=(8, 16, 32),
            itc_key_sizes=(32, 64),
            seed=11,
        ).with_gnn(hidden_dim=32, epochs=60, root_nodes=600, eval_every=5)
    raise ValueError(f"unknown profile {profile!r}; choose from {PROFILES}")


def profile_suites(profile: str = "quick") -> Tuple[str, ...]:
    """Benchmark suites a profile covers."""
    return ("ISCAS-85", "ITC-99") if profile.lower() == "full" else ("ISCAS-85",)


def profile_campaign(profile: str = "quick", **kwargs) -> CampaignSpec:
    """A ready-to-run campaign for a workload profile.

    Keyword arguments override any :class:`CampaignSpec` field, so callers
    can narrow the grid (``schemes=("antisat",), targets=("c2670",)``).
    """
    fields = {
        "name": f"{profile}-campaign",
        "schemes": ("antisat",),
        "suites": profile_suites(profile),
        "config": profile_config(profile),
    }
    fields.update(kwargs)
    return CampaignSpec(**fields)
