"""``python -m repro`` — campaign orchestration from the command line.

Subcommands::

    repro run      expand a campaign grid and execute it (parallel by default)
    repro list     show the expanded tasks and their cache status
    repro schemes  list every registered locking scheme and its parameters
    repro matrix   standing attack x defense capability matrix with trends
    repro report   aggregate a JSONL result store into paper-style tables
    repro trace    export a store's telemetry trace to Chrome trace format
    repro cache    artifact-cache maintenance (stats, gc)
    repro serve    start the long-lived campaign service (HTTP JSON API)
    repro work     run a fleet drainer against a `repro serve --fleet` service
    repro submit   submit a campaign grid to a running service
    repro status   poll a service job (or list every job)
    repro watch    stream a job's live progress events (long-poll, no busy-poll)
    repro fetch    fetch a job's rendered report or raw records
    repro cancel   cancel a queued or running service job

Service hardening: ``repro serve --tokens-file tokens.json`` turns on
bearer-token auth (``--token`` / ``REPRO_SERVICE_TOKEN`` client-side) with
per-token submit/admin roles, rate limits and job quotas; ``repro submit
--priority N`` schedules urgent campaigns ahead of the backlog.

Examples::

    python -m repro run --profile quick --targets c2670 c3540
    python -m repro run --scheme sfll:2@GEN65 --key-sizes 8,16 --workers 4
    python -m repro run --list-benchmarks
    python -m repro schemes --json
    python -m repro matrix --targets c2670 --key-sizes 8 --serial
    python -m repro matrix --dry-run
    python -m repro run --profile quick --dry-run
    python -m repro run --profile quick --resume   # skip tasks already done
    python -m repro list --profile quick
    python -m repro report --store runs/quick-campaign.jsonl
    python -m repro cache stats
    python -m repro cache gc --max-bytes 2G --max-age 30d
    python -m repro serve --port 8765 --state-dir runs/service
    python -m repro submit --profile quick --targets c2670 --wait
    python -m repro status 1b2c3d4e5f607182
    python -m repro fetch 1b2c3d4e5f607182 --report

Worker budgeting: ``--workers`` fans *tasks* over processes while
``--intra-workers`` (or ``REPRO_INTRA_WORKERS``) budgets the worker pools
*inside* each task (GraphSAINT normalisation walks, sharded SAT equivalence
shards; backend via ``REPRO_INTRA_BACKEND``).  The executor divides the
intra budget by the task-level worker count so the two never oversubscribe
the machine.  Setting ``REPRO_CACHE_MAX_BYTES`` / ``REPRO_CACHE_MAX_AGE``
makes every ``repro run`` finish with an automatic ``cache gc`` under that
budget.
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence
from urllib.error import URLError

from ..obs import (
    emit,
    load_rollup,
    obs_dir_for_store,
    read_events_jsonl,
    span_summary_table,
    to_chrome_trace,
    trace_path,
)
from ..service.client import (
    DEFAULT_SERVICE_URL,
    SERVICE_TOKEN_ENV,
    SERVICE_URL_ENV,
    ServiceClient,
    ServiceError,
)
from ..benchgen import SUITE_PROFILES
from ..locking import SCHEMES
from .cache import ArtifactCache, default_cache_dir, parse_age, parse_size
from .campaign import (
    BASELINE_ATTACKS,
    CampaignSpec,
    PROFILES,
    profile_campaign,
    registered_attacks,
)
from ..warehouse import (
    Warehouse,
    aggregate_stream,
    build_filter,
    ingest_store,
    parse_since,
)
from .executor import run_campaign
from .matrix import (
    MatrixHistory,
    WarehouseMatrixHistory,
    build_matrix,
    matrix_campaign,
    render_matrix_report,
)
from .store import ResultStore, aggregate, campaign_table, paper_table, render_report

__all__ = ["build_parser", "main"]


def _format_size(n_bytes: float) -> str:
    value = float(n_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            text = f"{value:.1f}" if unit != "B" else f"{int(value)}"
            return f"{text} {unit}"
        value /= 1024
    return f"{n_bytes} B"


def _parse_value(text: str) -> object:
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_assignment(text: str) -> tuple:
    if "=" not in text:
        raise ValueError(f"expected key=value, got {text!r} (e.g. gnn.epochs=40)")
    key, value = text.split("=", 1)
    return key.strip(), value


def _override_grid(
    sets: Sequence[str], sweeps: Sequence[str]
) -> List[Dict[str, object]]:
    """--set fixes a field for every task; --sweep adds a grid axis."""
    base: Dict[str, object] = {}
    for item in sets:
        key, value = _parse_assignment(item)
        base[key] = _parse_value(value)
    axes = []
    for item in sweeps:
        key, values = _parse_assignment(item)
        axes.append([(key, _parse_value(v)) for v in values.split(",")])
    if not axes:
        return [base]
    grid = []
    for combo in itertools.product(*axes):
        override = dict(base)
        override.update(combo)
        grid.append(override)
    return grid


def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    grid = parser.add_argument_group("campaign grid")
    grid.add_argument(
        "--profile", choices=PROFILES, default="quick",
        help="workload profile supplying the default config and suites",
    )
    grid.add_argument("--name", help="campaign name (default: <profile>-campaign)")
    grid.add_argument(
        "--scheme", action="append", dest="schemes", metavar="SPEC",
        help="locking scheme grid entry, e.g. antisat, ttlock, sfll:2@GEN65; "
        "repeatable (default: antisat)",
    )
    grid.add_argument(
        "--suite", action="append", dest="suites", metavar="SUITE",
        help="benchmark suite (ISCAS-85, ITC-99); repeatable "
        "(default: the profile's suites)",
    )
    grid.add_argument(
        "--key-sizes", action="append", dest="key_size_groups", metavar="K[,K...]",
        help="comma-separated key-size group forming one dataset sweep; "
        "repeatable (default: the suite's paper sweep)",
    )
    grid.add_argument(
        "--benchmarks", nargs="+", help="dataset benchmark pool (default: suite)"
    )
    grid.add_argument(
        "--targets", nargs="+", help="benchmarks to attack (default: all in pool)"
    )
    grid.add_argument(
        "--attack", action="append", dest="attacks", metavar="NAME",
        help=f"attack to schedule: gnnunlock or one of {sorted(BASELINE_ATTACKS)}; "
        "repeatable (default: gnnunlock)",
    )
    grid.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE",
        help="AttackConfig override applied to every task, e.g. gnn.epochs=40",
    )
    grid.add_argument(
        "--sweep", action="append", default=[], metavar="KEY=V1,V2",
        help="AttackConfig override axis; repeated sweeps form a grid",
    )
    grid.add_argument("--seed", type=int, help="base campaign seed")
    grid.add_argument("--timeout", type=float, help="per-task budget in seconds")


def _add_service_arguments(parser: argparse.ArgumentParser) -> None:
    service = parser.add_argument_group("campaign service")
    service.add_argument(
        "--url", default=None,
        help=f"service URL (default: ${SERVICE_URL_ENV} or {DEFAULT_SERVICE_URL})",
    )
    service.add_argument(
        "--token", default=None,
        help=f"bearer token for an auth-enabled service "
        f"(default: ${SERVICE_TOKEN_ENV})",
    )
    service.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the raw JSON response (machine-readable)",
    )


def _service_client(args: argparse.Namespace) -> ServiceClient:
    url = args.url or os.environ.get(SERVICE_URL_ENV) or DEFAULT_SERVICE_URL
    token = args.token or os.environ.get(SERVICE_TOKEN_ENV) or None
    return ServiceClient(url, token=token)


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    cache = parser.add_argument_group("artifact cache")
    cache.add_argument(
        "--cache-dir", type=Path, default=None,
        help=f"artifact cache directory (default: {default_cache_dir()})",
    )
    cache.add_argument(
        "--no-cache", action="store_true", help="disable the artifact cache"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GNNUnlock attack-campaign runner",
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="expand and execute a campaign")
    _add_grid_arguments(run)
    _add_cache_arguments(run)
    run.add_argument("--workers", type=int, help="process count (default: CPUs)")
    run.add_argument(
        "--intra-workers", type=int, default=None,
        help="global intra-task worker budget, divided across task workers "
        "(default: REPRO_INTRA_WORKERS, i.e. serial tasks)",
    )
    run.add_argument(
        "--serial", action="store_true", help="run in-process, one task at a time"
    )
    run.add_argument(
        "--store", type=Path, default=None,
        help="JSONL result store (default: runs/<campaign>.jsonl)",
    )
    run.add_argument(
        "--dry-run", action="store_true",
        help="print the expanded tasks without executing anything",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="skip tasks whose fingerprint already has an ok record in the "
        "store (pick an interrupted campaign back up)",
    )
    run.add_argument(
        "--list-benchmarks", action="store_true",
        help="list every registered benchmark profile by suite and exit",
    )

    schemes_cmd = sub.add_parser(
        "schemes", help="list registered locking schemes and their parameters"
    )
    schemes_cmd.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the machine-readable schema descriptions",
    )

    matrix = sub.add_parser(
        "matrix",
        help="run the standing attack x defense capability matrix "
        "(every registered attack x every registered scheme)",
    )
    matrix.add_argument("--name", default="capability-matrix", help="campaign name")
    matrix.add_argument(
        "--suite", default="ISCAS-85", help="benchmark suite to sweep"
    )
    matrix.add_argument(
        "--key-sizes", default=None, metavar="K[,K...]",
        help="key sizes, one dataset per size (default: 8,16)",
    )
    matrix.add_argument(
        "--scheme", action="append", dest="schemes", metavar="SPEC",
        help="restrict to these scheme grid entries "
        "(default: every registered scheme)",
    )
    matrix.add_argument(
        "--attack", action="append", dest="attacks", metavar="NAME",
        help="restrict to these attacks "
        f"(default: every registered attack: {', '.join(registered_attacks())})",
    )
    matrix.add_argument(
        "--targets", nargs="+", help="benchmarks to attack (default: whole suite)"
    )
    matrix.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE",
        help="AttackConfig override applied to every task, e.g. gnn.epochs=40",
    )
    matrix.add_argument(
        "--sweep", action="append", default=[], metavar="KEY=V1,V2",
        help="AttackConfig override axis; repeated sweeps form a grid",
    )
    matrix.add_argument("--timeout", type=float, help="per-task budget in seconds")
    matrix.add_argument("--workers", type=int, help="process count (default: CPUs)")
    matrix.add_argument(
        "--intra-workers", type=int, default=None,
        help="global intra-task worker budget (default: REPRO_INTRA_WORKERS)",
    )
    matrix.add_argument(
        "--serial", action="store_true", help="run in-process, one task at a time"
    )
    matrix.add_argument(
        "--store", type=Path, default=None,
        help="JSONL result store (default: runs/<name>.jsonl)",
    )
    matrix.add_argument(
        "--history", type=Path, default=None,
        help="sweep-history JSONL for trend deltas "
        "(default: <store>.history.jsonl)",
    )
    matrix.add_argument(
        "--warehouse", type=Path, default=None, metavar="DIR",
        help="record sweeps in this result warehouse instead of the "
        "history JSONL (trend reads become index seeks, no re-scan)",
    )
    matrix.add_argument(
        "--no-resume", action="store_true",
        help="recompute cells whose fingerprint already has an ok record "
        "(the matrix resumes incrementally by default)",
    )
    matrix.add_argument(
        "--no-history", action="store_true",
        help="render trends without appending this sweep to the history",
    )
    matrix.add_argument(
        "--dry-run", action="store_true",
        help="print the matrix axes and expanded tasks without executing",
    )
    _add_cache_arguments(matrix)

    list_cmd = sub.add_parser("list", help="show expanded tasks and cache status")
    _add_grid_arguments(list_cmd)
    _add_cache_arguments(list_cmd)
    list_cmd.add_argument(
        "--cache", action="store_true", dest="show_cache",
        help="list cached artifacts instead of campaign tasks",
    )

    cache_cmd = sub.add_parser("cache", help="artifact-cache maintenance")
    cache_sub = cache_cmd.add_subparsers(dest="cache_command", required=True)
    stats_cmd = cache_sub.add_parser(
        "stats", help="per-kind artifact counts and sizes"
    )
    gc_cmd = cache_sub.add_parser(
        "gc", help="evict artifacts least-recently-used first"
    )
    for sub_cmd in (stats_cmd, gc_cmd):
        sub_cmd.add_argument(
            "--cache-dir", type=Path, default=None,
            help=f"artifact cache directory (default: {default_cache_dir()})",
        )
    gc_cmd.add_argument(
        "--max-bytes", type=parse_size, default=None, metavar="SIZE",
        help="shrink the cache to at most this size (suffixes K/M/G/T)",
    )
    gc_cmd.add_argument(
        "--max-age", type=parse_age, default=None, metavar="AGE",
        help="evict artifacts unused for longer than this "
        "(seconds, or suffixed 30m/12h/7d/2w)",
    )
    gc_cmd.add_argument(
        "--dry-run", action="store_true",
        help="report what would be evicted without deleting anything",
    )

    report = sub.add_parser("report", help="aggregate a JSONL result store")
    report.add_argument("--store", type=Path, required=True, help="JSONL store path")
    report.add_argument(
        "--group-by", nargs="+", default=["scheme", "suite", "technology"],
        help="record fields to average over",
    )
    report.add_argument(
        "--paper", action="store_true",
        help="also print the Table IV/V-style per-benchmark breakdown",
    )
    report.add_argument(
        "--all", action="store_true", dest="show_all",
        help="use every record, not just the latest per task",
    )
    report.add_argument(
        "--service-style", action="store_true",
        help="print exactly the deterministic report a service job serves "
        "(status counts + paper table, no wall-clock columns)",
    )
    report.add_argument(
        "--timings", action="store_true",
        help="also print the per-phase span breakdown from the store's "
        "telemetry rollup (requires a campaign run with REPRO_OBS=1)",
    )

    warehouse = sub.add_parser(
        "warehouse",
        help="cross-campaign result warehouse (ingest / query / compact / stats)",
    )
    wh_sub = warehouse.add_subparsers(dest="warehouse_command", required=True)

    wh_ingest = wh_sub.add_parser(
        "ingest", help="tail JSONL result stores into a warehouse"
    )
    wh_ingest.add_argument(
        "--warehouse", type=Path, required=True, metavar="DIR",
        help="warehouse directory (created if missing)",
    )
    wh_ingest.add_argument(
        "--store", action="append", type=Path, default=[], dest="stores",
        metavar="FILE", help="JSONL store to ingest (repeatable)",
    )
    wh_ingest.add_argument(
        "--state-dir", type=Path, default=None, metavar="DIR",
        help="service state dir: ingest every stores/*.jsonl under it",
    )

    wh_query = wh_sub.add_parser(
        "query", help="cross-campaign record query (local dir or service)"
    )
    wh_query.add_argument(
        "--warehouse", type=Path, default=None, metavar="DIR",
        help="query this warehouse directory locally (omit to use --url)",
    )
    for flag in ("scheme", "attack", "suite", "status", "target"):
        wh_query.add_argument(f"--{flag}", default=None, help=f"filter by {flag}")
    wh_query.add_argument(
        "--since", default=None,
        help="only records recorded at/after this bound "
        "(epoch seconds, ISO date, or an age like 30d/12h)",
    )
    wh_query.add_argument(
        "--limit", type=int, default=1000, help="record cap for listings"
    )
    wh_query.add_argument(
        "--aggregate", action="store_true",
        help="print streamed group averages instead of records",
    )
    wh_query.add_argument(
        "--group-by", nargs="+", default=["scheme", "suite", "technology"],
        help="fields to group --aggregate by",
    )
    wh_query.add_argument(
        "--report", action="store_true",
        help="render the matching records as the deterministic service-style "
        "report instead of JSON lines",
    )
    _add_service_arguments(wh_query)

    wh_compact = wh_sub.add_parser(
        "compact", help="fold superseded records into fresh shards"
    )
    wh_compact.add_argument(
        "--warehouse", type=Path, default=None, metavar="DIR",
        help="warehouse directory (omit to compact via --url, admin only)",
    )
    _add_service_arguments(wh_compact)

    wh_stats = wh_sub.add_parser("stats", help="shard / index / source stats")
    wh_stats.add_argument(
        "--warehouse", type=Path, default=None, metavar="DIR",
        help="warehouse directory (omit to read via --url, admin only)",
    )
    _add_service_arguments(wh_stats)

    trace = sub.add_parser(
        "trace", help="export a store's span trace to Chrome trace-event JSON"
    )
    trace.add_argument(
        "--store", type=Path, required=True,
        help="JSONL store path whose <store>.obs/trace.jsonl to export",
    )
    trace.add_argument(
        "--out", type=Path, default=None,
        help="output path for the Chrome trace JSON "
        "(default: <store>.obs/trace.chrome.json; '-' for stdout)",
    )

    serve = sub.add_parser(
        "serve", help="start the long-lived campaign service (HTTP JSON API)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8765, help="bind port (0 = ephemeral)")
    serve.add_argument(
        "--state-dir", type=Path, default=Path("runs") / "service",
        help="directory holding job state and per-job result stores",
    )
    serve.add_argument(
        "--job-workers", type=int, default=1,
        help="campaign jobs run concurrently; worker budgets divide across them",
    )
    serve.add_argument(
        "--task-workers", type=int, default=None,
        help="task processes per job (default: CPUs // job-workers)",
    )
    serve.add_argument(
        "--intra-workers", type=int, default=None,
        help="global intra-task worker budget shared by every concurrent job "
        "(default: REPRO_INTRA_WORKERS)",
    )
    serve.add_argument(
        "--cache-max-bytes", type=parse_size, default=None, metavar="SIZE",
        help="gc the artifact cache to this size between jobs (suffixes K/M/G/T)",
    )
    serve.add_argument(
        "--cache-max-age", type=parse_age, default=None, metavar="AGE",
        help="evict artifacts unused longer than this between jobs (30m/12h/7d)",
    )
    traffic = serve.add_argument_group("traffic shaping")
    traffic.add_argument(
        "--tokens-file", type=Path, default=None,
        help="enable bearer-token auth from this JSON tokens file "
        '({"tokens": {"<secret>": {"name": ..., "role": "submit"|"admin", '
        '"max_queued": N, "max_active": N, "submit_rate": R}}}); '
        "edits (including revocations) are picked up without a restart",
    )
    traffic.add_argument(
        "--submit-rate", type=float, default=None, metavar="PER_SECOND",
        help="default sustained submissions/second per principal "
        "(token entries may override; default: unlimited)",
    )
    traffic.add_argument(
        "--submit-burst", type=int, default=None, metavar="N",
        help="default submit burst size per principal (default: the rate)",
    )
    traffic.add_argument(
        "--max-queued", type=int, default=None, metavar="N",
        help="default max queued jobs per principal (default: unlimited)",
    )
    traffic.add_argument(
        "--max-active", type=int, default=None, metavar="N",
        help="default max queued+running jobs per principal "
        "(default: unlimited)",
    )
    traffic.add_argument(
        "--max-priority", type=int, default=None, metavar="N",
        help="default cap on the job priority non-admin principals may "
        "request (token entries may override; default: uncapped)",
    )
    fleet = serve.add_argument_group("fleet")
    fleet.add_argument(
        "--fleet", action="store_true",
        help="run no in-process workers; expose tasks as HTTP leases for "
        "`repro work` drainer processes",
    )
    fleet.add_argument(
        "--lease-ttl", type=float, default=30.0, metavar="SECONDS",
        help="seconds a drainer may go without heartbeating before its "
        "task is reclaimed (default: 30)",
    )
    _add_cache_arguments(serve)

    work = sub.add_parser(
        "work", help="run a fleet drainer against a `repro serve --fleet` service"
    )
    _add_service_arguments(work)
    work.add_argument(
        "--name", default=None,
        help="worker name reported to the coordinator (default: <host>-<pid>)",
    )
    work.add_argument(
        "--batch", type=int, default=1, metavar="N",
        help="tasks to lease per request (default: 1)",
    )
    work.add_argument(
        "--poll", type=float, default=0.5, metavar="SECONDS",
        help="idle delay between lease requests (default: 0.5)",
    )
    work.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="requested lease TTL (default: the service's)",
    )
    work.add_argument(
        "--max-idle", type=float, default=None, metavar="SECONDS",
        help="exit after this long with no work (default: run until signalled)",
    )
    _add_cache_arguments(work)

    submit = sub.add_parser(
        "submit", help="submit a campaign grid to a running service"
    )
    _add_grid_arguments(submit)
    _add_service_arguments(submit)
    submit.add_argument(
        "--priority", type=int, default=None, metavar="N",
        help="scheduling priority (higher runs first, FIFO within a class; "
        "default 0; excluded from the job fingerprint)",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="poll until the job reaches a terminal status, then print its report",
    )
    submit.add_argument(
        "--wait-timeout", type=float, default=600.0, metavar="SECONDS",
        help="give up polling after this long (with --wait)",
    )

    status = sub.add_parser(
        "status", help="show one service job (or list all jobs)"
    )
    status.add_argument("job_id", nargs="?", help="job id (omit to list every job)")
    _add_service_arguments(status)
    status.add_argument(
        "--wait", action="store_true",
        help="poll until the job reaches a terminal status",
    )
    status.add_argument(
        "--wait-timeout", type=float, default=600.0, metavar="SECONDS",
        help="give up polling after this long (with --wait)",
    )

    fetch = sub.add_parser(
        "fetch", help="fetch a service job's rendered report or raw records"
    )
    fetch.add_argument("job_id", help="job id")
    _add_service_arguments(fetch)
    fetch.add_argument(
        "--report", action="store_true",
        help="print the rendered paper-table report (the default)",
    )
    fetch.add_argument(
        "--records", action="store_true",
        help="print the raw JSONL result-store records instead of the report",
    )
    fetch.add_argument(
        "--matrix", action="store_true",
        help="print the capability-matrix rendering of the job's records",
    )

    watch = sub.add_parser(
        "watch", help="stream a service job's progress events until it finishes"
    )
    watch.add_argument("job_id", help="job id")
    _add_service_arguments(watch)
    watch.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="give up after this long (default: watch until terminal)",
    )

    cancel = sub.add_parser("cancel", help="cancel a queued or running service job")
    cancel.add_argument("job_id", help="job id")
    _add_service_arguments(cancel)
    return parser


def _campaign_from_args(args: argparse.Namespace) -> CampaignSpec:
    kwargs: Dict[str, object] = {}
    if args.name:
        kwargs["name"] = args.name
    if args.schemes:
        kwargs["schemes"] = tuple(args.schemes)
    if args.suites:
        kwargs["suites"] = tuple(args.suites)
    if args.key_size_groups:
        kwargs["key_size_groups"] = tuple(
            tuple(int(k) for k in group.split(",")) for group in args.key_size_groups
        )
    if args.benchmarks:
        kwargs["benchmarks"] = tuple(args.benchmarks)
    if args.targets:
        kwargs["targets"] = tuple(args.targets)
    if args.attacks:
        kwargs["attacks"] = tuple(args.attacks)
    if args.timeout is not None:
        kwargs["timeout_s"] = args.timeout
    if getattr(args, "priority", None) is not None:  # submit-only flag
        kwargs["priority"] = args.priority
    kwargs["overrides"] = _override_grid(args.set, args.sweep)
    spec = profile_campaign(args.profile, **kwargs)
    if args.seed is not None:
        spec.config = spec.config.with_overrides({"seed": args.seed})
    return spec


def _print_tasks(
    spec: CampaignSpec, cache: ArtifactCache, tasks: Optional[List] = None
) -> None:
    tasks = spec.validate() if tasks is None else tasks
    print(f"campaign {spec.name!r}: {len(tasks)} task(s)")
    for task in tasks:
        notes = []
        if cache.enabled:
            notes.append(
                "dataset cached"
                if cache.has("dataset", task.dataset.fingerprint())
                else "dataset missing"
            )
            if task.attack == "gnnunlock":
                notes.append(
                    "model cached"
                    if cache.has("model", task.model_fingerprint())
                    else "model missing"
                )
        note = f"  [{', '.join(notes)}]" if notes else ""
        print(f"  {task.task_id}  ({task.fingerprint()[:12]}){note}")


def _print_benchmarks() -> None:
    for suite in sorted(SUITE_PROFILES):
        profiles = SUITE_PROFILES[suite]
        print(f"{suite}: {len(profiles)} benchmark(s)")
        for name in sorted(profiles):
            profile = profiles[name]
            n_inputs, n_outputs, n_gates = profile.scaled()
            print(
                f"  {name:8s} {n_gates:5d} gates  {n_inputs:3d} PIs  "
                f"{n_outputs:3d} POs  "
                f"(original: {profile.original_gates} gates, "
                f"{profile.original_inputs} PIs)"
            )


def _cmd_run(args: argparse.Namespace) -> int:
    if args.list_benchmarks:
        _print_benchmarks()
        return 0
    spec = _campaign_from_args(args)
    # Validate the whole spec up front (unknown benchmarks, mistyped config
    # overrides, ...) so both --dry-run and real runs fail with a clean
    # message instead of a traceback from deep inside a worker.
    tasks = spec.validate()
    cache_dir = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    if args.dry_run:
        cache = ArtifactCache(None if args.no_cache else cache_dir)
        _print_tasks(spec, cache, tasks)
        print("dry run: nothing executed")
        return 0
    if not tasks:
        print("campaign expanded to zero tasks", file=sys.stderr)
        return 1
    store_path = args.store if args.store else Path("runs") / f"{spec.name}.jsonl"
    store = ResultStore(store_path)
    print(f"campaign {spec.name!r}: {len(tasks)} task(s) -> {store_path}")
    results = run_campaign(
        tasks,
        workers=args.workers,
        cache_dir=cache_dir,
        use_cache=not args.no_cache,
        serial=args.serial,
        store=store,
        resume=args.resume,
        intra_workers=args.intra_workers,
        echo=print,
    )
    display = []
    for result in results:
        record = dict(result.record) if result.record else {"task_id": result.task_id}
        record["status"] = result.status
        record["wall_time_s"] = result.wall_time_s
        record["cache"] = result.cache_events
        if result.error:
            record["error"] = result.error
        display.append(record)
    print()
    print(campaign_table(display))
    failed = [r for r in results if not r.ok]
    if failed:
        print(f"\n{len(failed)} task(s) did not finish:", file=sys.stderr)
        for result in failed:
            print(f"  {result.task_id}: {result.error}", file=sys.stderr)
    return 0 if not failed else 2


def _cmd_schemes(args: argparse.Namespace) -> int:
    if args.as_json:
        print(json.dumps([info.describe() for info in SCHEMES], sort_keys=True))
        return 0
    print(f"{len(SCHEMES)} registered locking scheme(s)")
    for info in SCHEMES:
        names = [info.name, *info.aliases]
        print(f"\n{info.display_name}  ({', '.join(names)})")
        if info.description:
            print(f"  {info.description}")
        for spec in info.params:
            bounds = []
            if spec.minimum is not None:
                bounds.append(f">= {spec.minimum}")
            if spec.maximum is not None:
                bounds.append(f"<= {spec.maximum}")
            need = "required" if spec.required else f"default {spec.default}"
            extra = f", {' and '.join(bounds)}" if bounds else ""
            print(f"  param {spec.name}: {spec.type.__name__} ({need}{extra})")
        classes = ", ".join(
            f"{label}={idx}" for label, idx in sorted(
                info.class_map.items(), key=lambda item: item[1]
            )
        )
        print(f"  classes: {classes}")
        print(f"  default technology: {info.default_technology}")
    return 0


def _cmd_warehouse(args: argparse.Namespace) -> int:
    handlers = {
        "ingest": _warehouse_ingest,
        "query": _warehouse_query,
        "compact": _warehouse_compact,
        "stats": _warehouse_stats,
    }
    return handlers[args.warehouse_command](args)


def _warehouse_ingest(args: argparse.Namespace) -> int:
    if not args.stores and args.state_dir is None:
        raise ValueError("nothing to ingest: pass --store and/or --state-dir")
    warehouse = Warehouse(args.warehouse)
    total = 0
    sources: List[Path] = list(args.stores)
    if args.state_dir is not None:
        sources += sorted((args.state_dir / "stores").glob("*.jsonl"))
    for path in sources:
        if not path.is_file():
            raise ValueError(f"store not found: {path}")
        added = ingest_store(warehouse, path, source=path.stem)
        total += added
        print(f"{path.stem}: +{added} record(s)")
    warehouse.flush()
    stats = warehouse.stats()
    print(
        f"ingested {total} record(s); warehouse holds {stats['records']} "
        f"across {stats['shards']} shard(s)"
    )
    return 0


def _warehouse_query(args: argparse.Namespace) -> int:
    if args.warehouse is None:
        client = _service_client(args)
        if args.aggregate:
            payload = client.warehouse_query(
                scheme=args.scheme, attack=args.attack, suite=args.suite,
                status=args.status, target=args.target, since=args.since,
                aggregate=True, group_by=",".join(args.group_by),
            )
            print(json.dumps(payload["groups"], indent=None if args.as_json else 2))
            return 0
        payload = client.warehouse_query(
            scheme=args.scheme, attack=args.attack, suite=args.suite,
            status=args.status, target=args.target, since=args.since,
            limit=args.limit,
        )
        records = payload["records"]
        if args.report:
            print(render_report(records))
        else:
            for record in records:
                print(json.dumps(record, sort_keys=True))
        if payload.get("truncated"):
            print(
                f"(truncated at {args.limit} record(s); raise --limit)",
                file=sys.stderr,
            )
        return 0
    warehouse = Warehouse(args.warehouse)
    where = build_filter(
        scheme=args.scheme, attack=args.attack, suite=args.suite,
        status=args.status, target=args.target,
        since=parse_since(args.since) if args.since else None,
    )
    if args.aggregate:
        summary = aggregate_stream(
            warehouse.iter_records(where), group_by=tuple(args.group_by)
        )
        print(json.dumps(summary, indent=None if args.as_json else 2))
        return 0
    if args.report:
        # Same trailing newline as ``repro report --service-style`` so the
        # two renders diff clean in scripts.
        print(render_report(list(warehouse.iter_records(where))))
        return 0
    shown = 0
    for record in warehouse.iter_records(where):
        if shown >= args.limit:
            print(
                f"(truncated at {args.limit} record(s); raise --limit)",
                file=sys.stderr,
            )
            break
        print(json.dumps(record, sort_keys=True))
        shown += 1
    return 0


def _warehouse_compact(args: argparse.Namespace) -> int:
    if args.warehouse is None:
        result = _service_client(args).warehouse_compact()
    else:
        result = Warehouse(args.warehouse).compact()
    if args.as_json:
        print(json.dumps(result, sort_keys=True))
    elif result.get("compacted"):
        print(
            f"folded {result['folded']} superseded line(s); "
            f"{result['records']} record(s) in {result['shards']} shard(s)"
        )
    else:
        print("nothing to fold")
    return 0


def _warehouse_stats(args: argparse.Namespace) -> int:
    if args.warehouse is None:
        stats = _service_client(args).warehouse_stats()
    else:
        stats = Warehouse(args.warehouse).stats()
    print(json.dumps(stats, indent=None if args.as_json else 2, sort_keys=True))
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    key_sizes = (
        tuple(int(k) for k in args.key_sizes.split(","))
        if args.key_sizes
        else None
    )
    kwargs: Dict[str, object] = {
        "name": args.name,
        "suite": args.suite,
        "schemes": tuple(args.schemes) if args.schemes else None,
        "attacks": tuple(args.attacks) if args.attacks else None,
        "targets": tuple(args.targets) if args.targets else None,
        "overrides": _override_grid(args.set, args.sweep),
        "timeout_s": args.timeout,
    }
    if key_sizes is not None:
        kwargs["key_sizes"] = key_sizes
    spec = matrix_campaign(**kwargs)
    tasks = spec.validate()
    print(
        f"capability matrix {spec.name!r}: "
        f"{len(spec.schemes)} scheme(s) x {len(spec.attacks)} attack(s) x "
        f"{len(spec.key_size_groups or ())} key size(s) -> {len(tasks)} task(s)"
    )
    cache_dir = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    if args.dry_run:
        cache = ArtifactCache(None if args.no_cache else cache_dir)
        _print_tasks(spec, cache, tasks)
        print("dry run: nothing executed")
        return 0
    if not tasks:
        print("matrix expanded to zero tasks", file=sys.stderr)
        return 1
    store_path = args.store if args.store else Path("runs") / f"{spec.name}.jsonl"
    history_path = (
        args.history
        if args.history
        else store_path.with_name(store_path.stem + ".history.jsonl")
    )
    store = ResultStore(store_path)
    if args.warehouse is not None:
        history = WarehouseMatrixHistory(
            Warehouse(args.warehouse), name=args.name
        )
        history_path = args.warehouse
    else:
        history = MatrixHistory(history_path)
    previous = history.latest()
    results = run_campaign(
        tasks,
        workers=args.workers,
        cache_dir=cache_dir,
        use_cache=not args.no_cache,
        serial=args.serial,
        store=store,
        resume=not args.no_resume,
        intra_workers=args.intra_workers,
        echo=print,
    )
    records = list(store.latest().values())
    print()
    print(
        render_matrix_report(
            records,
            previous=previous.get("cells") if previous else None,
        ),
        end="",
    )
    if not args.no_history:
        history.append(build_matrix(records))
        print(f"\nsweep recorded in {history_path} ({len(history)} sweep(s))")
    failed = [r for r in results if not r.ok]
    if failed:
        # Failed cells are themselves capability data ("err" in the grid),
        # so the matrix still exits 0; the count goes to stderr for CI logs.
        print(f"{len(failed)} task(s) rendered as 'err' cells", file=sys.stderr)
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    cache = ArtifactCache(cache_dir)
    if args.show_cache:
        entries = cache.entries()
        if not entries:
            print(f"cache at {cache.root} is empty")
            return 0
        total = sum(size for _, _, size in entries)
        print(f"cache at {cache.root}: {len(entries)} artifact(s), {total} bytes")
        for kind, key, size in entries:
            print(f"  {kind:8s} {key[:16]}  {size} bytes")
        return 0
    _print_tasks(_campaign_from_args(args), cache)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache_dir = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    cache = ArtifactCache(cache_dir)
    if args.cache_command == "stats":
        stats = cache.kind_stats()
        counters = cache.persistent_counters()
        if not stats and not counters:
            print(f"cache at {cache.root} is empty")
            return 0
        now = time.time()
        total_count = int(sum(bucket["count"] for bucket in stats.values()))
        total_bytes = sum(bucket["bytes"] for bucket in stats.values())
        print(
            f"cache at {cache.root}: {total_count} artifact(s), "
            f"{_format_size(total_bytes)}"
        )
        for kind in sorted(stats):
            bucket = stats[kind]
            idle_s = max(0.0, now - bucket["newest_mtime"])
            print(
                f"  {kind:10s} {int(bucket['count']):5d} artifact(s)  "
                f"{_format_size(bucket['bytes']):>10s}  "
                f"last used {idle_s / 3600:.1f}h ago"
            )
        if counters:
            print("lifetime counters:")
            for kind in sorted(counters):
                events = counters[kind]
                hits = int(events.get("hit", 0))
                misses = int(events.get("miss", 0))
                lookups = hits + misses
                rate = f"{hits / lookups:.1%}" if lookups else "n/a"
                print(
                    f"  {kind:10s} {hits} hit(s), {misses} miss(es) "
                    f"({rate} hit rate), {int(events.get('write', 0))} write(s), "
                    f"{int(events.get('evict', 0))} eviction(s)"
                )
        return 0
    # gc
    if args.max_bytes is None and args.max_age is None:
        print("error: cache gc needs --max-bytes and/or --max-age", file=sys.stderr)
        return 2
    before = cache.size_bytes()
    evicted = cache.gc(
        max_bytes=args.max_bytes, max_age_s=args.max_age, dry_run=args.dry_run
    )
    freed = sum(entry.size_bytes for entry in evicted)
    verb = "would evict" if args.dry_run else "evicted"
    print(
        f"{verb} {len(evicted)} artifact(s), {_format_size(freed)} "
        f"(cache was {_format_size(before)})"
    )
    for entry in evicted:
        print(f"  {entry.kind:10s} {entry.key[:16]}  {_format_size(entry.size_bytes)}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    records = store.load() if args.show_all else list(store.latest().values())
    if store.last_corrupt_lines:
        print(
            f"warning: {store.last_corrupt_lines} unparseable line(s) in "
            f"{args.store} were dropped; the report under-counts records",
            file=sys.stderr,
        )
    if not records:
        print(f"no records in {args.store}", file=sys.stderr)
        return 1
    if args.service_style:
        # Exactly what the service's /report endpoint serves for these
        # records — deterministic, so it diffs cleanly across runs.
        print(render_report(records))
        return 0
    print(campaign_table(records))
    summary = aggregate(records, group_by=tuple(args.group_by))
    if summary:
        from ..core.reporting import format_percent, format_table

        rows = [
            [
                *(str(entry.get(field)) for field in args.group_by),
                entry["n_tasks"],
                entry["n_instances"],
                format_percent(entry["gnn_accuracy"]),
                format_percent(entry["post_accuracy"]),
                format_percent(entry["removal_success_rate"]),
                f"{entry['train_time_s']:.2f}",
            ]
            for entry in summary
        ]
        print()
        print(
            format_table(
                [*args.group_by, "#Tasks", "#Graphs", "GNN Acc. (%)",
                 "Post Acc. (%)", "Removal (%)", "Train (s)"],
                rows,
            )
        )
    if args.paper:
        print()
        print(paper_table(records))
    if args.timings:
        print()
        exit_code = _print_timings(args.store)
        if exit_code:
            return exit_code
    return 0


def _print_timings(store_path: Path) -> int:
    from ..core.reporting import format_table

    rollup = load_rollup(obs_dir_for_store(store_path))
    rows = span_summary_table(rollup) if rollup else []
    if not rows:
        print(
            f"no telemetry rollup next to {store_path} "
            "(run the campaign with REPRO_OBS=1)",
            file=sys.stderr,
        )
        return 1
    print(
        format_table(
            ["Phase", "Count", "Total (s)", "Mean (s)", "Max (s)", "Share (%)"],
            rows,
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    obs_dir = obs_dir_for_store(args.store)
    events = read_events_jsonl(trace_path(obs_dir))
    if not events:
        print(
            f"no trace events next to {args.store} "
            "(run the campaign with REPRO_OBS=1)",
            file=sys.stderr,
        )
        return 1
    payload = json.dumps(to_chrome_trace(events), sort_keys=True)
    if args.out is not None and str(args.out) == "-":
        print(payload)
        return 0
    out_path = args.out if args.out is not None else obs_dir / "trace.chrome.json"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(payload + "\n", encoding="utf-8")
    print(
        f"wrote {len(events)} span(s) to {out_path} "
        "(load via chrome://tracing or https://ui.perfetto.dev)"
    )
    return 0


def _format_job(snapshot: Dict[str, object]) -> str:
    progress = snapshot.get("progress", {})
    done = progress.get("tasks_done", 0)
    total = progress.get("tasks_total", 0)
    parts = [
        f"{snapshot.get('job_id')}",
        f"{snapshot.get('status'):9s}",
        f"{done}/{total} task(s)",
        str(snapshot.get("name", "?")),
    ]
    if snapshot.get("error"):
        parts.append(f"— {snapshot['error']}")
    return "  ".join(parts)


def _cmd_serve(args: argparse.Namespace) -> int:
    from ..service import CampaignService

    service = CampaignService(
        args.state_dir,
        host=args.host,
        port=args.port,
        job_slots=args.job_workers,
        task_workers=args.task_workers,
        intra_workers=args.intra_workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        cache_max_bytes=args.cache_max_bytes,
        cache_max_age_s=args.cache_max_age,
        tokens_file=args.tokens_file,
        submit_rate=args.submit_rate,
        submit_burst=args.submit_burst,
        max_queued_per_owner=args.max_queued,
        max_active_per_owner=args.max_active,
        max_priority_per_owner=args.max_priority,
        fleet=args.fleet,
        lease_ttl_s=args.lease_ttl,
        echo=print,
    )
    service.start()
    emit(
        print,
        f"repro service listening on {service.url} (state: {args.state_dir})",
        component="cli",
        url=service.url,
    )
    emit(print, "press Ctrl-C to stop", component="cli")
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        emit(print, "shutting down", component="cli")
    finally:
        service.stop()
    return 0


def _cmd_work(args: argparse.Namespace) -> int:
    from ..fleet import FleetWorker

    url = args.url or os.environ.get(SERVICE_URL_ENV) or DEFAULT_SERVICE_URL
    token = args.token or os.environ.get(SERVICE_TOKEN_ENV) or None
    worker = FleetWorker(
        url,
        token=token,
        name=args.name,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        batch=args.batch,
        poll_s=args.poll,
        lease_ttl_s=args.lease_ttl,
        max_idle_s=args.max_idle,
        echo=print,
    )
    worker.install_signal_handlers()
    executed = worker.run()
    if args.as_json:
        print(json.dumps({"worker": worker.name, "tasks_executed": executed}))
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    spec = _campaign_from_args(args)
    spec.validate()
    client = _service_client(args)
    response = client.submit(spec)
    job = response["job"]
    if args.as_json:
        print(json.dumps(response, sort_keys=True))
    else:
        verb = "submitted" if response.get("created") else "already known"
        print(f"job {job['job_id']} {verb} ({job['status']})")
    if not args.wait:
        return 0
    snapshot = client.wait(str(job["job_id"]), timeout=args.wait_timeout)
    if args.as_json:
        print(json.dumps({"job": snapshot}, sort_keys=True))
    else:
        print(_format_job(snapshot))
        print()
        print(client.report(str(job["job_id"])))
    return 0 if snapshot["status"] == "done" else 3


def _cmd_status(args: argparse.Namespace) -> int:
    client = _service_client(args)
    if not args.job_id:
        jobs = client.jobs()
        if args.as_json:
            print(json.dumps({"jobs": jobs}, sort_keys=True))
            return 0
        if not jobs:
            print("no jobs submitted")
            return 0
        for snapshot in jobs:
            print(_format_job(snapshot))
        return 0
    if args.wait:
        snapshot = client.wait(args.job_id, timeout=args.wait_timeout)
    else:
        snapshot = client.status(args.job_id)
    if args.as_json:
        print(json.dumps({"job": snapshot}, sort_keys=True))
    else:
        print(_format_job(snapshot))
    if snapshot["status"] in ("failed", "cancelled"):
        return 3
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    client = _service_client(args)
    if args.records:
        kind = "records"
    elif args.matrix:
        kind = "report?style=matrix"
    else:
        kind = "report"
    if args.as_json:
        print(json.dumps(client.fetch(args.job_id, kind), sort_keys=True))
        return 0
    if args.records:
        for record in client.records(args.job_id):
            print(json.dumps(record, sort_keys=True))
        return 0
    print(client.report(args.job_id, style="matrix" if args.matrix else None))
    return 0


def _format_event(event: Dict[str, object]) -> Optional[str]:
    kind = event.get("event")
    if kind == "status":
        line = f"status: {event.get('status')}"
        if event.get("recovered"):
            line += " (recovered after a service restart)"
        if event.get("error"):
            line += f" — {event['error']}"
        return line
    if kind == "task":
        done = event.get("tasks_done", "?")
        total = event.get("tasks_total", "?")
        return f"[{done}/{total}] {event.get('status'):9s} {event.get('task_id')}"
    if kind == "total":
        return f"expanded to {event.get('tasks_total')} task(s)"
    if kind == "priority":
        return f"escalated to priority {event.get('priority')}"
    if kind == "cancel_requested":
        return "cancellation requested"
    return None


def _cmd_watch(args: argparse.Namespace) -> int:
    client = _service_client(args)
    final_status = None
    for event in client.watch(args.job_id, timeout=args.timeout):
        if args.as_json:
            print(json.dumps({k: v for k, v in event.items() if k != "job"},
                             sort_keys=True), flush=True)
        else:
            line = _format_event(event)
            if line is not None:
                print(line, flush=True)
        final_status = event["job"]["status"]
    if final_status is None:
        # Terminal before we attached and the feed had nothing to replay.
        final_status = client.status(args.job_id)["status"]
    if not args.as_json:
        print(f"final: {final_status}")
    return 0 if final_status == "done" else 3


def _cmd_cancel(args: argparse.Namespace) -> int:
    client = _service_client(args)
    snapshot = client.cancel(args.job_id)
    if args.as_json:
        print(json.dumps({"job": snapshot}, sort_keys=True))
    else:
        print(_format_job(snapshot))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "list": _cmd_list,
        "schemes": _cmd_schemes,
        "matrix": _cmd_matrix,
        "warehouse": _cmd_warehouse,
        "report": _cmd_report,
        "trace": _cmd_trace,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
        "work": _cmd_work,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "watch": _cmd_watch,
        "fetch": _cmd_fetch,
        "cancel": _cmd_cancel,
    }
    try:
        return handlers[args.command](args)
    except ValueError as exc:
        # Grid/usage mistakes (unknown scheme, malformed sweep, bad override)
        # are user errors, not crashes.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except TimeoutError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 4
    except URLError as exc:
        print(
            f"error: cannot reach the campaign service ({exc.reason}); "
            "is `repro serve` running and --url/REPRO_SERVICE_URL correct?",
            file=sys.stderr,
        )
        return 2
    except BrokenPipeError:
        # Downstream pipe closed early (`repro ... | head`); not an error.
        # Point stdout at devnull so the interpreter's exit-time flush does
        # not raise a second time, and exit like a SIGPIPE'd process would.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
