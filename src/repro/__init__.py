"""GNNUnlock reproduction package.

Oracle-less, GNN-based attack on provably secure logic locking (Anti-SAT,
TTLock, SFLL-HD), plus every substrate it depends on: a gate-level netlist
library, locking transforms, a synthesis flow, a from-scratch GraphSAGE /
GraphSAINT implementation, a SAT-based equivalence checker, and the baseline
attacks the paper compares against.
"""

__version__ = "1.0.0"

from . import netlist  # noqa: F401

__all__ = ["netlist", "__version__"]
