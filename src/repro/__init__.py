"""GNNUnlock reproduction package.

Oracle-less, GNN-based attack on provably secure logic locking (Anti-SAT,
TTLock, SFLL-HD), plus every substrate it depends on: a gate-level netlist
library, locking transforms, a synthesis flow, a from-scratch GraphSAGE /
GraphSAINT implementation, a SAT-based equivalence checker, and the baseline
attacks the paper compares against.  ``repro.runner`` orchestrates whole
attack campaigns (parallel execution, artifact caching, ``python -m repro``)
and ``repro.parallel`` provides the intra-task worker pools (GraphSAINT
normalisation walks, sharded SAT equivalence) budgeted by
``REPRO_INTRA_WORKERS``.
"""

__version__ = "1.1.0"

from . import netlist  # noqa: F401

__all__ = ["netlist", "parallel", "runner", "service", "__version__"]


def __getattr__(name):
    # The runner pulls in the full attack stack; load it on first use so
    # ``import repro`` stays light for netlist-only consumers.
    if name == "runner":
        from . import runner

        return runner
    if name == "parallel":
        from . import parallel

        return parallel
    if name == "service":
        from . import service

        return service
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
