"""GNNUnlock reproduction package.

Oracle-less, GNN-based attack on provably secure logic locking (Anti-SAT,
TTLock, SFLL-HD), plus every substrate it depends on: a gate-level netlist
library, locking transforms, a synthesis flow, a from-scratch GraphSAGE /
GraphSAINT implementation, a SAT-based equivalence checker, and the baseline
attacks the paper compares against.  ``repro.runner`` orchestrates whole
attack campaigns (parallel execution, artifact caching, ``python -m repro``).
"""

__version__ = "1.1.0"

from . import netlist  # noqa: F401

__all__ = ["netlist", "runner", "__version__"]


def __getattr__(name):
    # The runner pulls in the full attack stack; load it on first use so
    # ``import repro`` stays light for netlist-only consumers.
    if name == "runner":
        from . import runner

        return runner
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
