"""Node-classification metrics: accuracy, per-class precision / recall / F1.

The paper reports, per attacked benchmark, the GNN accuracy, the non-averaged
precision / recall / F1-score of each class, the number of misclassified nodes
broken down as "<count> <true-label> as <predicted-label>", and the removal
success after post-processing.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = ["ClassMetrics", "ClassificationReport", "classification_report"]


@dataclass(frozen=True)
class ClassMetrics:
    """Precision / recall / F1 of a single class."""

    label: str
    precision: float
    recall: float
    f1: float
    support: int


@dataclass
class ClassificationReport:
    """Full evaluation of one set of node predictions."""

    accuracy: float
    per_class: Dict[str, ClassMetrics]
    confusion: np.ndarray
    class_names: Tuple[str, ...]
    misclassified: Dict[Tuple[str, str], int] = field(default_factory=dict)

    @property
    def n_misclassified(self) -> int:
        return int(sum(self.misclassified.values()))

    def misclassification_summary(self) -> str:
        """Human-readable breakdown, e.g. ``"2 DN as PN, 1 PN as RN"``."""
        if not self.misclassified:
            return "-"
        parts = [
            f"{count} {true} as {pred}"
            for (true, pred), count in sorted(self.misclassified.items())
        ]
        return ", ".join(parts)

    def macro_average(self) -> Dict[str, float]:
        """Macro-averaged precision / recall / F1 (Table VI reports these)."""
        if not self.per_class:
            return {"precision": 0.0, "recall": 0.0, "f1": 0.0}
        precision = float(np.mean([m.precision for m in self.per_class.values()]))
        recall = float(np.mean([m.recall for m in self.per_class.values()]))
        f1 = float(np.mean([m.f1 for m in self.per_class.values()]))
        return {"precision": precision, "recall": recall, "f1": f1}


def classification_report(
    true_classes: Sequence[int],
    predicted_classes: Sequence[int],
    class_names: Sequence[str],
) -> ClassificationReport:
    """Compute accuracy, per-class P/R/F1, confusion matrix and error breakdown."""
    true_arr = np.asarray(true_classes, dtype=np.int64)
    pred_arr = np.asarray(predicted_classes, dtype=np.int64)
    if true_arr.shape != pred_arr.shape:
        raise ValueError("true and predicted class arrays must have equal length")
    n_classes = len(class_names)
    confusion = np.zeros((n_classes, n_classes), dtype=np.int64)
    for t, p in zip(true_arr, pred_arr):
        confusion[t, p] += 1

    per_class: Dict[str, ClassMetrics] = {}
    for idx, name in enumerate(class_names):
        tp = confusion[idx, idx]
        fp = confusion[:, idx].sum() - tp
        fn = confusion[idx, :].sum() - tp
        support = int(confusion[idx, :].sum())
        precision = tp / (tp + fp) if (tp + fp) > 0 else (1.0 if support == 0 else 0.0)
        recall = tp / (tp + fn) if (tp + fn) > 0 else 1.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if (precision + recall) > 0
            else 0.0
        )
        per_class[name] = ClassMetrics(
            label=name,
            precision=float(precision),
            recall=float(recall),
            f1=float(f1),
            support=support,
        )

    misclassified: Dict[Tuple[str, str], int] = dict(
        Counter(
            (class_names[t], class_names[p])
            for t, p in zip(true_arr, pred_arr)
            if t != p
        )
    )
    accuracy = float((true_arr == pred_arr).mean()) if true_arr.size else 1.0
    return ClassificationReport(
        accuracy=accuracy,
        per_class=per_class,
        confusion=confusion,
        class_names=tuple(class_names),
        misclassified=misclassified,
    )
