"""Dataset assembly: locked circuits -> one block-diagonal GNN dataset.

A :class:`LockedInstance` is one locked benchmark (with ground truth); a
:class:`NodeDataset` stacks many instances into the block-diagonal adjacency /
feature matrix / label vector consumed by the GNN, keeping track of which node
belongs to which instance so leave-one-design-out splits and per-design
metrics remain possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from ..gnn.data import GraphData
from ..locking.base import LockingResult
from .features import extract_features
from .graph import CircuitGraph, block_diagonal, circuit_to_graph
from .labeling import class_map_for_scheme, labels_to_classes

__all__ = ["LockedInstance", "NodeDataset", "build_dataset"]


@dataclass
class LockedInstance:
    """One locked benchmark plus the metadata needed for reporting."""

    benchmark: str
    suite: str
    result: LockingResult
    key_size: int
    h: Optional[int] = None
    technology: str = "BENCH8"
    copy_index: int = 0

    @property
    def name(self) -> str:
        h_part = f"_h{self.h}" if self.h is not None else ""
        return (
            f"{self.benchmark}_{self.result.scheme.replace('-', '').lower()}"
            f"_k{self.key_size}{h_part}_c{self.copy_index}"
        )


@dataclass
class NodeDataset:
    """Block-diagonal dataset over many locked instances."""

    instances: List[LockedInstance]
    graphs: List[CircuitGraph]
    features: np.ndarray
    labels: np.ndarray
    adjacency: sp.csr_matrix
    node_names: List[str]
    instance_index: np.ndarray  # per-node index into ``instances``
    class_map: Dict[str, int]

    @property
    def n_nodes(self) -> int:
        return self.features.shape[0]

    @property
    def n_features(self) -> int:
        return self.features.shape[1]

    @property
    def n_classes(self) -> int:
        return len(self.class_map)

    def nodes_of_instance(self, index: int) -> np.ndarray:
        """Global node indices belonging to instance ``index``."""
        return np.flatnonzero(self.instance_index == index)

    def instances_of_benchmark(self, benchmark: str) -> List[int]:
        return [
            i for i, inst in enumerate(self.instances) if inst.benchmark == benchmark
        ]

    def benchmarks(self) -> List[str]:
        seen: List[str] = []
        for inst in self.instances:
            if inst.benchmark not in seen:
                seen.append(inst.benchmark)
        return seen

    def to_graph_data(
        self,
        train_mask: np.ndarray,
        val_mask: np.ndarray,
        test_mask: np.ndarray,
    ) -> GraphData:
        """Package the dataset with masks for the GNN trainer."""
        return GraphData(
            adjacency=self.adjacency,
            features=self.features,
            labels=self.labels,
            train_mask=np.asarray(train_mask, dtype=bool),
            val_mask=np.asarray(val_mask, dtype=bool),
            test_mask=np.asarray(test_mask, dtype=bool),
            node_names=self.node_names,
            graph_ids=self.instance_index,
        )

    def summary(self) -> Dict[str, object]:
        """Table III-style dataset summary."""
        return {
            "#Circuits": len(self.instances),
            "#Nodes": int(self.n_nodes),
            "#Classes": self.n_classes,
            "|f|": int(self.n_features),
        }


def build_dataset(instances: Sequence[LockedInstance]) -> NodeDataset:
    """Assemble locked instances into one GNN dataset.

    All instances must use the same locking family (same class map) and the
    same cell library (same feature length).
    """
    if not instances:
        raise ValueError("cannot build a dataset from zero instances")
    class_map = class_map_for_scheme(instances[0].result.scheme)
    for inst in instances:
        if class_map_for_scheme(inst.result.scheme) != class_map:
            raise ValueError(
                "all instances in a dataset must share the same classification "
                f"task; got {inst.result.scheme} vs {instances[0].result.scheme}"
            )

    graphs: List[CircuitGraph] = []
    feature_blocks: List[np.ndarray] = []
    label_blocks: List[np.ndarray] = []
    node_names: List[str] = []
    instance_index_parts: List[np.ndarray] = []

    for idx, inst in enumerate(instances):
        circuit = inst.result.locked
        graph = circuit_to_graph(circuit)
        graphs.append(graph)
        feature_blocks.append(extract_features(circuit, graph))
        label_blocks.append(labels_to_classes(inst.result, graph, class_map))
        node_names.extend(f"{inst.name}::{node}" for node in graph.nodes)
        instance_index_parts.append(np.full(graph.n_nodes, idx, dtype=np.int64))

    features = np.vstack(feature_blocks)
    if len({block.shape[1] for block in feature_blocks}) != 1:
        raise ValueError("instances use different cell libraries (|f| mismatch)")
    return NodeDataset(
        instances=list(instances),
        graphs=graphs,
        features=features,
        labels=np.concatenate(label_blocks),
        adjacency=block_diagonal(graphs),
        node_names=node_names,
        instance_index=np.concatenate(instance_index_parts),
        class_map=class_map,
    )
