"""Connectivity-analysis post-processing (Section IV-D, Fig. 3c/3d).

The GNN's per-node predictions are rectified using the circuit connectivity
and known structural properties of the protection logic:

Anti-SAT (Fig. 3c)
    * every Anti-SAT node has at least one key input in its fan-in cone and is
      controlled only by the block's own inputs (the selected PIs and the key
      inputs) — predictions violating this are dropped;
    * a predicted design node whose fan-in cone consists only of predicted
      Anti-SAT gates is reclassified as Anti-SAT;
    * the integration XOR (one input is the Anti-SAT output, the other the
      design signal it corrupts) is recovered if the GNN missed it.

TTLock / SFLL-HD (Fig. 3d)
    * the protected-input set ``X`` is recovered from the predicted restore
      nodes that read key inputs directly (the comparator layer);
    * a predicted restore node must have KIs in its fan-in cone and must be
      controlled only by ``X`` and KIs — otherwise it is re-examined as a
      perturb or design node;
    * a predicted perturb node must be controlled solely by protected inputs;
      a KI in its support moves it to the restore class, anything else to the
      design class (except the output-stripping XOR);
    * a predicted design node directly fed by verified perturb logic and
      controlled by ``X`` is a perturb node, and an XOR directly fed by both
      perturb and restore logic is the restoring XOR.

Compared to the paper's prose, the support-subset checks are applied to both
the restore and the Anti-SAT classes (the paper states them for the perturb
class); with a near-perfect GNN they never fire, but they keep isolated GNN
false positives deep inside (or downstream of) the design from breaking the
removal step.
"""

from __future__ import annotations

from typing import Dict, Mapping, Set, Tuple

from ..locking.base import ANTISAT, DESIGN, PERTURB, RESTORE
from ..netlist.circuit import Circuit
from ..netlist.traversal import (
    fanin_cone,
    key_inputs_in_fanin,
    primary_inputs_in_fanin,
    transitive_inputs,
)

__all__ = ["postprocess_antisat", "postprocess_sfll", "postprocess_predictions"]

_XOR_CELLS = ("XOR", "XNOR", "XOR2", "XNOR2", "XOR3", "XNOR3")


def postprocess_predictions(
    circuit: Circuit, predictions: Mapping[str, str]
) -> Dict[str, str]:
    """Dispatch to the right rectification algorithm based on the label set."""
    labels = set(predictions.values())
    if ANTISAT in labels or labels <= {DESIGN, ANTISAT}:
        return postprocess_antisat(circuit, predictions)
    if labels & {PERTURB, RESTORE}:
        return postprocess_sfll(circuit, predictions)
    # A label family with no registered rectifier (SARLock, cyclic, XOR key
    # gates): leave the raw GNN predictions untouched.
    return dict(predictions)


def _support_sets(circuit: Circuit, gate: str) -> Tuple[Set[str], Set[str]]:
    """(primary inputs, key inputs) in the structural support of ``gate``."""
    support = transitive_inputs(circuit, gate)
    pis = {n for n in support if circuit.is_input(n)}
    kis = {n for n in support if circuit.is_key_input(n)}
    return pis, kis


def _direct_pi_anchors(
    circuit: Circuit, predictions: Mapping[str, str], label: str
) -> Set[str]:
    """Protected-input estimate: PIs read directly by ``label`` gates that
    also read a key input directly.

    The first layer of both the restore unit and the Anti-SAT block combines
    each selected design input with a key bit, so those gates anchor the
    protected-input recovery even when deeper predictions are noisy.
    """
    anchors: Set[str] = set()
    for gate, lab in predictions.items():
        if lab != label:
            continue
        inputs = circuit.gate(gate).inputs
        if not any(circuit.is_key_input(net) for net in inputs):
            continue
        anchors |= {net for net in inputs if circuit.is_input(net)}
    return anchors


# ---------------------------------------------------------------------------
# Anti-SAT
# ---------------------------------------------------------------------------

def postprocess_antisat(
    circuit: Circuit, predictions: Mapping[str, str]
) -> Dict[str, str]:
    """Rectify Anti-SAT predictions (Fig. 3c)."""
    rectified: Dict[str, str] = dict(predictions)

    block_inputs = _direct_pi_anchors(circuit, predictions, ANTISAT)
    if not block_inputs:
        # Fall back to the support of every predicted Anti-SAT gate.
        for gate, label in predictions.items():
            if label == ANTISAT:
                block_inputs |= primary_inputs_in_fanin(circuit, gate)

    # Rule 1: an Anti-SAT node has KIs in its fan-in cone and is controlled
    # only by the block's own inputs; other Anti-SAT predictions are dropped.
    for gate, label in predictions.items():
        if label != ANTISAT:
            continue
        pis, kis = _support_sets(circuit, gate)
        if not kis:
            rectified[gate] = DESIGN
        elif pis and not pis <= block_inputs:
            rectified[gate] = DESIGN

    # Rule 2: a predicted design node whose fan-in cone gates are all
    # (predicted) Anti-SAT nodes belongs to the Anti-SAT block.  The first
    # key-XOR layer has an empty gate cone, so it qualifies whenever it reads
    # a KI and only block inputs.
    for gate, label in predictions.items():
        if label != DESIGN:
            continue
        if not key_inputs_in_fanin(circuit, gate):
            continue
        cone = fanin_cone(circuit, gate, include_start=False)
        if not all(rectified.get(g) == ANTISAT for g in cone):
            continue
        pis, _ = _support_sets(circuit, gate)
        if pis <= block_inputs:
            rectified[gate] = ANTISAT

    # Rule 3: recover a misclassified integration XOR.  The gate that splices
    # the Anti-SAT output into the design is an XOR with exactly one input
    # whose entire cone is Anti-SAT logic; if it ended up labelled as a design
    # node the removal would leave a dangling reference, so reclassify it.
    for gate, label in list(rectified.items()):
        if label != DESIGN:
            continue
        if circuit.gate(gate).cell.name not in _XOR_CELLS:
            continue
        antisat_inputs = 0
        design_inputs = 0
        for net in circuit.gate(gate).inputs:
            if rectified.get(net) == ANTISAT:
                cone = fanin_cone(circuit, net, include_start=True)
                if cone and all(rectified.get(g) == ANTISAT for g in cone):
                    antisat_inputs += 1
                    continue
            design_inputs += 1
        if antisat_inputs == 1 and design_inputs <= 1:
            rectified[gate] = ANTISAT
    return rectified


# ---------------------------------------------------------------------------
# TTLock / SFLL-HD
# ---------------------------------------------------------------------------

def postprocess_sfll(
    circuit: Circuit, predictions: Mapping[str, str]
) -> Dict[str, str]:
    """Rectify TTLock / SFLL-HD predictions (Fig. 3d)."""
    rectified: Dict[str, str] = dict(predictions)

    # Protected inputs X, anchored on restore-unit comparator gates: any gate
    # predicted as protection logic (restore or perturb) that reads a key
    # input directly belongs to the comparator layer, and the PIs it reads are
    # protected inputs.  Fall back to the full support of the predicted
    # restore logic if the GNN missed that whole layer.
    protected_inputs = _direct_pi_anchors(
        circuit, predictions, RESTORE
    ) | _direct_pi_anchors(circuit, predictions, PERTURB)
    if not protected_inputs:
        for gate, label in predictions.items():
            if label == RESTORE and key_inputs_in_fanin(circuit, gate):
                protected_inputs |= primary_inputs_in_fanin(circuit, gate)

    verified_restore: Set[str] = set()
    verified_perturb: Set[str] = set()

    def is_verified_restore(gate: str) -> bool:
        """Restore logic proper: support inside X plus at least one KI."""
        if gate in verified_restore:
            return True
        pis, kis = _support_sets(circuit, gate)
        if kis and pis <= protected_inputs:
            verified_restore.add(gate)
            return True
        return False

    def is_verified_perturb(gate: str) -> bool:
        """Perturb logic proper: support inside X, no KIs."""
        if gate in verified_perturb:
            return True
        pis, kis = _support_sets(circuit, gate)
        if pis and not kis and pis <= protected_inputs:
            verified_perturb.add(gate)
            return True
        return False

    def is_stripping_xor(gate: str) -> bool:
        """XOR combining exactly one design signal with verified perturb logic."""
        if circuit.gate(gate).cell.name not in _XOR_CELLS:
            return False
        design_like = 0
        perturb_like = 0
        for net in circuit.gate(gate).inputs:
            label = rectified.get(net)
            if label == PERTURB and is_verified_perturb(net):
                perturb_like += 1
            elif label in (RESTORE, ANTISAT, PERTURB):
                return False
            else:
                design_like += 1
        return perturb_like >= 1 and design_like <= 1

    def is_restoring_xor(gate: str) -> bool:
        """XOR merging the restore signal back into the stripped output."""
        if circuit.gate(gate).cell.name not in _XOR_CELLS:
            return False
        has_restore = False
        other_ok = True
        for net in circuit.gate(gate).inputs:
            label = rectified.get(net)
            if label == RESTORE and is_verified_restore(net):
                has_restore = True
            elif label == RESTORE:
                other_ok = False
        return has_restore and other_ok

    # Rule 1 (restore check): restore nodes have KIs in their fan-in cone and
    # are controlled only by X and KIs; the restoring XOR at the protected
    # output is the one exception (its support covers the design cone).
    for gate, label in predictions.items():
        if label != RESTORE:
            continue
        pis, kis = _support_sets(circuit, gate)
        if kis and pis <= protected_inputs:
            verified_restore.add(gate)
            continue
        if kis and is_restoring_xor(gate):
            continue
        if not kis and ((pis and pis <= protected_inputs) or is_stripping_xor(gate)):
            rectified[gate] = PERTURB
        else:
            rectified[gate] = DESIGN

    # Rule 2 (perturb check): perturb nodes are controlled solely by protected
    # inputs; a KI in the support moves the gate to the restore class, other
    # violations to the design class, except for the output-stripping XOR and
    # the restoring XOR (the two splice gates see the design cone as well).
    for gate, label in list(rectified.items()):
        if label != PERTURB:
            continue
        pis, kis = _support_sets(circuit, gate)
        if kis:
            if pis <= protected_inputs or is_restoring_xor(gate):
                rectified[gate] = RESTORE
            else:
                rectified[gate] = DESIGN
            continue
        if pis and pis <= protected_inputs:
            verified_perturb.add(gate)
            continue
        if is_stripping_xor(gate):
            continue
        rectified[gate] = DESIGN

    # Rule 3 (design check): promotions cascade along the stripping XOR ->
    # restoring XOR chain, so iterate to a fixpoint.
    changed = True
    while changed:
        changed = False
        for gate, label in list(rectified.items()):
            if label != DESIGN:
                continue
            inputs = circuit.gate(gate).inputs
            direct_labels = {rectified.get(net) for net in inputs}

            # Restoring XOR missed by the GNN.
            if (
                PERTURB in direct_labels
                and RESTORE in direct_labels
                and circuit.gate(gate).cell.name in _XOR_CELLS
            ):
                rectified[gate] = RESTORE
                changed = True
                continue

            # Interior perturb gates / stripping XOR missed by the GNN.
            if PERTURB in direct_labels:
                pis, kis = _support_sets(circuit, gate)
                if kis:
                    continue
                if (pis and pis <= protected_inputs) or is_stripping_xor(gate):
                    rectified[gate] = PERTURB
                    changed = True

    # Rule 4 (perturb pruning): every true perturb gate ultimately drives
    # other perturb logic or the splice XORs, never plain design logic.  An
    # isolated perturb-labelled gate surrounded by design gates is a GNN false
    # positive (e.g. a NOR-tree in the design whose support happens to sit
    # inside X) — drop it.  Iterate so chains of false positives unwind.
    fanout = circuit.fanout_map()
    changed = True
    while changed:
        changed = False
        for gate, label in list(rectified.items()):
            if label != PERTURB:
                continue
            sinks = fanout.get(gate, ())
            if not sinks:
                rectified[gate] = DESIGN
                changed = True
                continue
            if not any(rectified.get(sink) in (PERTURB, RESTORE) for sink in sinks):
                rectified[gate] = DESIGN
                changed = True
    return rectified
