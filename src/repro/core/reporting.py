"""Plain-text table rendering for the benchmark harnesses and examples."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["format_table", "format_percent", "format_report_row"]


def format_percent(value: float, *, decimals: int = 2) -> str:
    """Render a fraction in [0, 1] as a percentage string."""
    return f"{100.0 * value:.{decimals}f}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an ASCII table with column alignment."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "+".join("-" * (w + 2) for w in widths)
    line = f"+{line}+"

    def render_row(cells: Sequence[str]) -> str:
        padded = [f" {cell.ljust(widths[i])} " for i, cell in enumerate(cells)]
        return "|" + "|".join(padded) + "|"

    out: List[str] = [line, render_row(list(headers)), line]
    for row in rows:
        out.append(render_row(row))
    out.append(line)
    return "\n".join(out)


def format_report_row(outcome, class_order: Sequence[str]) -> Dict[str, str]:
    """Flatten an :class:`~repro.core.attack.AttackOutcome` into table cells."""
    row: Dict[str, str] = {
        "Test": outcome.target_benchmark,
        "#TestGraphs": str(len(outcome.instances)),
        "GNN Acc. (%)": format_percent(outcome.gnn_accuracy),
    }
    for cls in class_order:
        metrics = outcome.gnn_report.per_class.get(cls)
        if metrics is None:
            continue
        row[f"Prec {cls} (%)"] = format_percent(metrics.precision)
        row[f"Rec {cls} (%)"] = format_percent(metrics.recall)
        row[f"F1 {cls} (%)"] = format_percent(metrics.f1)
    row["#MN"] = outcome.gnn_report.misclassification_summary()
    row["Removal Success (%)"] = format_percent(outcome.removal_success_rate)
    return row
