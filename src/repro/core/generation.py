"""Dataset generation (Section IV-A / V-A of the paper).

Each benchmark is locked several times per key-size with freshly drawn random
keys, producing the per-scheme datasets of Table III.  SFLL / TTLock datasets
are synthesised onto a standard-cell-like library afterwards (the paper's
Design Compiler step); Anti-SAT datasets stay in the bench vocabulary because
the original Anti-SAT locking tool only handles bench files.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..benchgen.profiles import ALL_PROFILES
from ..benchgen.registry import get_benchmark
from ..locking.antisat import AntiSatLocking
from ..locking.base import LockingError, LockingScheme
from ..locking.sfll_hd import SfllHdLocking, TTLockLocking
from ..locking.xor_lock import RandomXorLocking
from ..synth.flow import SynthesisOptions, synthesize_locked
from .config import AttackConfig
from .dataset import LockedInstance, NodeDataset, build_dataset

__all__ = [
    "make_scheme",
    "generate_instances",
    "generate_dataset",
    "required_key_inputs",
    "suite_benchmarks",
    "suite_key_sizes",
]


def make_scheme(scheme: str, key_size: int, h: Optional[int] = None) -> LockingScheme:
    """Instantiate a locking scheme by name (``antisat``, ``ttlock``, ``sfll``)."""
    normalized = scheme.lower().replace("-", "").replace("_", "")
    if normalized in ("antisat",):
        return AntiSatLocking(key_size)
    if normalized in ("ttlock",):
        return TTLockLocking(key_size)
    if normalized in ("xor", "randomxor"):
        return RandomXorLocking(key_size)
    if normalized in ("sfll", "sfllhd"):
        if h is None:
            raise ValueError("SFLL-HD requires the Hamming distance h")
        if h == 0:
            return TTLockLocking(key_size)
        return SfllHdLocking(key_size, h)
    raise ValueError(f"unknown locking scheme {scheme!r}")


def suite_benchmarks(suite: str) -> List[str]:
    """Benchmark names of a suite (``"ISCAS-85"`` or ``"ITC-99"``)."""
    suite_norm = suite.upper().replace("_", "-")
    names = [
        name for name, prof in ALL_PROFILES.items() if prof.suite.upper() == suite_norm
    ]
    if not names:
        raise ValueError(f"unknown benchmark suite {suite!r}")
    return sorted(names)


def suite_key_sizes(suite: str, config: AttackConfig) -> Sequence[int]:
    """Key sizes the paper uses for a suite."""
    suite_norm = suite.upper().replace("_", "-")
    return (
        config.iscas_key_sizes if suite_norm == "ISCAS-85" else config.itc_key_sizes
    )


def required_key_inputs(scheme: str, key_size: int) -> int:
    """Primary-input count a benchmark needs to be lockable at ``key_size``."""
    normalized = scheme.lower().replace("-", "").replace("_", "")
    if normalized in ("xor", "randomxor"):
        return 0
    return key_size // 2 if normalized == "antisat" else key_size


def generate_instances(
    scheme: str,
    benchmarks: Iterable[str],
    *,
    key_sizes: Sequence[int],
    h: Optional[int] = None,
    config: AttackConfig = AttackConfig(),
    technology: Optional[str] = None,
) -> List[LockedInstance]:
    """Lock every benchmark ``locks_per_setting`` times for every key size.

    Benchmarks whose PI count cannot support a key size are skipped for that
    key size — this reproduces the paper's note that ``c3540`` is not locked
    with K = 64 "due to the limited number of PIs in the design".
    """
    technology = technology if technology is not None else config.technology
    instances: List[LockedInstance] = []
    for bench_name in benchmarks:
        profile = ALL_PROFILES[bench_name]
        circuit = get_benchmark(bench_name, size_scale=config.size_scale)
        for key_size in key_sizes:
            if len(circuit.inputs) < required_key_inputs(scheme, key_size):
                continue
            for copy_index in range(config.locks_per_setting):
                rng = np.random.default_rng(
                    config.derive_seed(scheme, bench_name, key_size, h, copy_index)
                )
                locker = make_scheme(scheme, key_size, h)
                result = locker.lock(circuit.copy(), rng=rng)
                if technology.upper() != "BENCH8":
                    result = synthesize_locked(
                        result,
                        SynthesisOptions(
                            technology=technology, effort=config.synthesis_effort
                        ),
                    )
                instances.append(
                    LockedInstance(
                        benchmark=bench_name,
                        suite=profile.suite,
                        result=result,
                        key_size=key_size,
                        h=h if locker.__class__ is not AntiSatLocking else None,
                        technology=technology.upper(),
                        copy_index=copy_index,
                    )
                )
    if not instances:
        raise LockingError(
            f"no benchmark could be locked with scheme {scheme} and key sizes "
            f"{list(key_sizes)}"
        )
    return instances


def generate_dataset(
    scheme: str,
    suite: str,
    *,
    h: Optional[int] = None,
    config: AttackConfig = AttackConfig(),
    technology: Optional[str] = None,
    key_sizes: Optional[Sequence[int]] = None,
) -> NodeDataset:
    """Generate one of the paper's datasets (Table III rows)."""
    benchmarks = suite_benchmarks(suite)
    key_sizes = key_sizes if key_sizes is not None else suite_key_sizes(suite, config)
    instances = generate_instances(
        scheme,
        benchmarks,
        key_sizes=key_sizes,
        h=h,
        config=config,
        technology=technology,
    )
    return build_dataset(instances)
