"""Dataset generation (Section IV-A / V-A of the paper).

Each benchmark is locked several times per key-size with freshly drawn random
keys, producing the per-scheme datasets of Table III.  SFLL / TTLock datasets
are synthesised onto a standard-cell-like library afterwards (the paper's
Design Compiler step); Anti-SAT datasets stay in the bench vocabulary because
the original Anti-SAT locking tool only handles bench files.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..benchgen.profiles import ALL_PROFILES
from ..benchgen.registry import get_benchmark
from ..locking import SCHEMES, find_scheme
from ..locking.base import LockingError, LockingScheme
from ..synth.flow import SynthesisOptions, synthesize_locked
from .config import AttackConfig
from .dataset import LockedInstance, NodeDataset, build_dataset

__all__ = [
    "make_scheme",
    "generate_instances",
    "generate_dataset",
    "required_key_inputs",
    "suite_benchmarks",
    "suite_key_sizes",
]


def make_scheme(scheme: str, key_size: int, h: Optional[int] = None) -> LockingScheme:
    """Instantiate a locking scheme by registered name (registry-backed shim).

    Kept for backwards compatibility; new code should call
    ``SCHEMES.create(name, **params)`` directly.  As in the legacy factory, a
    supplied ``h`` is silently ignored by schemes that do not take one.
    """
    info = SCHEMES.get(scheme)
    params: dict = {"key_size": key_size}
    if info.uses_h:
        if h is None:
            raise ValueError(
                f"{info.display_name} requires the Hamming distance h"
            )
        params["h"] = h
    return info.create(**params)


def suite_benchmarks(suite: str) -> List[str]:
    """Benchmark names of a suite (``"ISCAS-85"`` or ``"ITC-99"``)."""
    suite_norm = suite.upper().replace("_", "-")
    names = [
        name for name, prof in ALL_PROFILES.items() if prof.suite.upper() == suite_norm
    ]
    if not names:
        raise ValueError(f"unknown benchmark suite {suite!r}")
    return sorted(names)


def suite_key_sizes(suite: str, config: AttackConfig) -> Sequence[int]:
    """Key sizes the paper uses for a suite."""
    suite_norm = suite.upper().replace("_", "-")
    return (
        config.iscas_key_sizes if suite_norm == "ISCAS-85" else config.itc_key_sizes
    )


def required_key_inputs(scheme: str, key_size: int) -> int:
    """Primary-input count a benchmark needs to be lockable at ``key_size``.

    Registry-backed shim; unknown scheme names fall back to ``key_size``
    (the legacy behaviour — this helper never raised).
    """
    info = find_scheme(scheme)
    if info is None:
        return key_size
    return info.required_inputs(key_size)


def generate_instances(
    scheme: str,
    benchmarks: Iterable[str],
    *,
    key_sizes: Sequence[int],
    h: Optional[int] = None,
    config: AttackConfig = AttackConfig(),
    technology: Optional[str] = None,
) -> List[LockedInstance]:
    """Lock every benchmark ``locks_per_setting`` times for every key size.

    Benchmarks whose PI count cannot support a key size are skipped for that
    key size — this reproduces the paper's note that ``c3540`` is not locked
    with K = 64 "due to the limited number of PIs in the design".
    """
    technology = technology if technology is not None else config.technology
    scheme_info = find_scheme(scheme)
    # Legacy datasets record h = None for schemes that ignore the sweep-level
    # h (Anti-SAT); the registry flag keeps those fingerprints byte-identical.
    strip_h = scheme_info is not None and scheme_info.strip_instance_h
    instances: List[LockedInstance] = []
    for bench_name in benchmarks:
        profile = ALL_PROFILES[bench_name]
        circuit = get_benchmark(bench_name, size_scale=config.size_scale)
        for key_size in key_sizes:
            if len(circuit.inputs) < required_key_inputs(scheme, key_size):
                continue
            for copy_index in range(config.locks_per_setting):
                rng = np.random.default_rng(
                    config.derive_seed(scheme, bench_name, key_size, h, copy_index)
                )
                locker = make_scheme(scheme, key_size, h)
                result = locker.lock(circuit.copy(), rng=rng)
                if technology.upper() != "BENCH8":
                    result = synthesize_locked(
                        result,
                        SynthesisOptions(
                            technology=technology, effort=config.synthesis_effort
                        ),
                    )
                instances.append(
                    LockedInstance(
                        benchmark=bench_name,
                        suite=profile.suite,
                        result=result,
                        key_size=key_size,
                        h=None if strip_h else h,
                        technology=technology.upper(),
                        copy_index=copy_index,
                    )
                )
    if not instances:
        raise LockingError(
            f"no benchmark could be locked with scheme {scheme} and key sizes "
            f"{list(key_sizes)}"
        )
    return instances


def generate_dataset(
    scheme: str,
    suite: str,
    *,
    h: Optional[int] = None,
    config: AttackConfig = AttackConfig(),
    technology: Optional[str] = None,
    key_sizes: Optional[Sequence[int]] = None,
) -> NodeDataset:
    """Generate one of the paper's datasets (Table III rows)."""
    benchmarks = suite_benchmarks(suite)
    key_sizes = key_sizes if key_sizes is not None else suite_key_sizes(suite, config)
    instances = generate_instances(
        scheme,
        benchmarks,
        key_sizes=key_sizes,
        h=h,
        config=config,
        technology=technology,
    )
    return build_dataset(instances)
