"""GNNUnlock core: the paper's primary contribution."""

from .config import AttackConfig
from .graph import CircuitGraph, block_diagonal, circuit_to_graph
from .features import extract_features, feature_names
from .labeling import (
    ANTISAT_CLASSES,
    SFLL_CLASSES,
    class_map_for_scheme,
    classes_to_labels,
    labels_to_classes,
)
from .dataset import LockedInstance, NodeDataset, build_dataset
from .splits import SplitMasks, leave_one_design_out
from .generation import (
    generate_dataset,
    generate_instances,
    make_scheme,
    required_key_inputs,
    suite_benchmarks,
    suite_key_sizes,
)
from .metrics import ClassificationReport, ClassMetrics, classification_report
from .postprocess import postprocess_antisat, postprocess_predictions, postprocess_sfll
from .removal import RemovalError, remove_protection_logic
from .attack import (
    AttackOutcome,
    GnnUnlockAttack,
    InstanceOutcome,
    attack_design,
    train_attack_model,
)
from .reporting import format_percent, format_report_row, format_table

__all__ = [
    "AttackConfig",
    "CircuitGraph",
    "circuit_to_graph",
    "block_diagonal",
    "extract_features",
    "feature_names",
    "ANTISAT_CLASSES",
    "SFLL_CLASSES",
    "class_map_for_scheme",
    "classes_to_labels",
    "labels_to_classes",
    "LockedInstance",
    "NodeDataset",
    "build_dataset",
    "SplitMasks",
    "leave_one_design_out",
    "generate_dataset",
    "generate_instances",
    "make_scheme",
    "required_key_inputs",
    "suite_benchmarks",
    "suite_key_sizes",
    "ClassificationReport",
    "ClassMetrics",
    "classification_report",
    "postprocess_antisat",
    "postprocess_sfll",
    "postprocess_predictions",
    "RemovalError",
    "remove_protection_logic",
    "AttackOutcome",
    "GnnUnlockAttack",
    "InstanceOutcome",
    "attack_design",
    "train_attack_model",
    "format_table",
    "format_percent",
    "format_report_row",
]
