"""Netlist-to-graph transformation (Section IV-B of the paper).

A locked netlist is modelled as an *undirected* graph ``G(I, J)``: the node
set ``I`` contains all gates (PIs, KIs and POs are *not* nodes), the edge set
``J`` contains one edge per wire between two gates.  Connectivity to PIs, KIs
and POs is captured in the node feature vectors instead
(:mod:`repro.core.features`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..netlist.circuit import Circuit

__all__ = ["CircuitGraph", "circuit_to_graph", "block_diagonal"]


@dataclass
class CircuitGraph:
    """Graph view of one netlist: node ordering, adjacency and port flags."""

    circuit: Circuit
    nodes: Tuple[str, ...]
    adjacency: sp.csr_matrix

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def node_index(self, name: str) -> int:
        return self._index[name]

    def __post_init__(self) -> None:
        self._index: Dict[str, int] = {name: i for i, name in enumerate(self.nodes)}


def circuit_to_graph(circuit: Circuit) -> CircuitGraph:
    """Convert a netlist to its undirected gate-connectivity graph."""
    nodes = tuple(circuit.gate_names())
    index = {name: i for i, name in enumerate(nodes)}
    rows: List[int] = []
    cols: List[int] = []
    for name in nodes:
        gate = circuit.gate(name)
        i = index[name]
        for net in gate.inputs:
            j = index.get(net)
            if j is None:
                continue  # PI / KI: captured as a feature, not an edge
            rows.extend((i, j))
            cols.extend((j, i))
    n = len(nodes)
    if rows:
        data = np.ones(len(rows), dtype=np.float64)
        adjacency = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
        adjacency.data[:] = 1.0  # collapse duplicate edges
    else:
        adjacency = sp.csr_matrix((n, n))
    return CircuitGraph(circuit=circuit, nodes=nodes, adjacency=adjacency)


def block_diagonal(graphs: Sequence[CircuitGraph]) -> sp.csr_matrix:
    """Block-diagonal adjacency of several circuit graphs.

    This is how multiple locked designs of different sizes are fed to the GNN
    as one dataset (Section IV-B): each block is the adjacency of one locked
    design and there are no edges between designs.
    """
    if not graphs:
        return sp.csr_matrix((0, 0))
    return sp.block_diag([g.adjacency for g in graphs], format="csr")
