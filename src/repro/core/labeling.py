"""Node labelling: ground-truth classes per locking scheme.

For Anti-SAT the classification is binary (design vs. Anti-SAT block); for
TTLock / SFLL-HD it is ternary (design, restore, perturb), as in Table III.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..locking import find_scheme
from ..locking.base import ANTISAT, DESIGN, PERTURB, RESTORE, LockingResult
from .graph import CircuitGraph

__all__ = [
    "ANTISAT_CLASSES",
    "SFLL_CLASSES",
    "class_map_for_scheme",
    "labels_to_classes",
    "classes_to_labels",
]

#: Binary classification for Anti-SAT: 0 = design node, 1 = Anti-SAT node.
ANTISAT_CLASSES: Dict[str, int] = {DESIGN: 0, ANTISAT: 1}

#: Ternary classification for TTLock / SFLL-HD:
#: 0 = design node, 1 = restore node, 2 = perturb node.
SFLL_CLASSES: Dict[str, int] = {DESIGN: 0, RESTORE: 1, PERTURB: 2}


def class_map_for_scheme(scheme: str) -> Dict[str, int]:
    """Label-to-class mapping for a locking scheme name (registry shim).

    Resolves through the scheme registry first; the legacy substring
    fallback keeps decorated names like ``"Anti-SAT c2670"`` working.
    """
    info = find_scheme(scheme)
    if info is not None:
        return dict(info.class_map)
    normalized = scheme.lower().replace("_", "-")
    if "anti" in normalized:
        return dict(ANTISAT_CLASSES)
    if "ttlock" in normalized or "sfll" in normalized:
        return dict(SFLL_CLASSES)
    raise ValueError(f"unknown locking scheme {scheme!r}")


def labels_to_classes(
    result: LockingResult, graph: CircuitGraph, class_map: Dict[str, int]
) -> np.ndarray:
    """Integer class per graph node, following the graph's node ordering."""
    classes = np.zeros(graph.n_nodes, dtype=np.int64)
    for i, name in enumerate(graph.nodes):
        label = result.labels.get(name, DESIGN)
        if label not in class_map:
            raise ValueError(
                f"gate {name} has label {label!r} which the class map "
                f"{sorted(class_map)} does not cover"
            )
        classes[i] = class_map[label]
    return classes


def classes_to_labels(
    classes: Sequence[int], class_map: Dict[str, int]
) -> List[str]:
    """Map integer classes back to label strings (inverse of the class map)."""
    inverse = {v: k for k, v in class_map.items()}
    return [inverse[int(c)] for c in classes]
