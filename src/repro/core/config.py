"""Attack-wide configuration.

One object gathers every knob that controls dataset generation, GNN training
and the evaluation protocol so benchmark harnesses and examples stay short.
The defaults are the scaled-down "laptop" configuration; ``paper_scale()``
returns the configuration matching Table II of the paper.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Sequence, Tuple

from ..benchgen.profiles import DEFAULT_SIZE_SCALE
from ..gnn.model import GnnConfig
from ..parallel import derive_job_seed

__all__ = ["AttackConfig"]


@dataclass(frozen=True)
class AttackConfig:
    """Configuration of an end-to-end GNNUnlock run."""

    #: Number of times each benchmark is locked per (K, h) setting.
    locks_per_setting: int = 2
    #: Key sizes per suite (the paper: ISCAS {8,16,32,64}, ITC {32,64,128}).
    iscas_key_sizes: Tuple[int, ...] = (8, 16, 32, 64)
    itc_key_sizes: Tuple[int, ...] = (32, 64, 128)
    #: Benchmark scaling knob (see repro.benchgen.profiles).
    size_scale: float = DEFAULT_SIZE_SCALE
    #: Synthesis technology for SFLL/TTLock datasets ("BENCH8" = no mapping).
    technology: str = "BENCH8"
    synthesis_effort: str = "medium"
    #: GNN hyper-parameters (hidden width, epochs, sampler, ...).
    gnn: GnnConfig = field(default_factory=GnnConfig)
    #: Random seed for dataset generation (keys, target nets, ...).
    seed: int = 11

    def with_gnn(self, **kwargs) -> "AttackConfig":
        """Copy of the config with GNN hyper-parameters overridden."""
        return replace(self, gnn=replace(self.gnn, **kwargs))

    def with_overrides(self, overrides: Mapping[str, object]) -> "AttackConfig":
        """Copy of the config with dotted-key overrides applied.

        Keys are either :class:`AttackConfig` field names (``seed``,
        ``locks_per_setting``, ...) or ``gnn.``-prefixed
        :class:`~repro.gnn.model.GnnConfig` field names (``gnn.epochs``).
        As a convenience, a bare GnnConfig field name (``epochs``) is also
        accepted — but AttackConfig takes precedence for names present in
        both, so ``seed`` always means the campaign/dataset seed; use
        ``gnn.seed`` to override the training seed.  Sequence-valued fields
        accept any sequence and are normalised to tuples so configs stay
        hashable.
        """
        own_fields = {f.name for f in dataclasses.fields(AttackConfig)}
        gnn_fields = {f.name for f in dataclasses.fields(GnnConfig)}
        own: Dict[str, object] = {}
        gnn: Dict[str, object] = {}
        for key, value in overrides.items():
            if key.startswith("gnn."):
                name = key[len("gnn."):]
                if name not in gnn_fields:
                    raise ValueError(f"unknown GnnConfig field {name!r}")
                gnn[name] = value
            elif key in own_fields:
                if key == "gnn":
                    raise ValueError("override GNN fields with 'gnn.<field>' keys")
                if isinstance(value, (list, tuple)):
                    value = tuple(value)
                own[key] = value
            elif key in gnn_fields:
                gnn[key] = value
            else:
                raise ValueError(
                    f"unknown AttackConfig override {key!r}; use a field name or "
                    "a 'gnn.'-prefixed GnnConfig field name"
                )
        config = replace(self, **own) if own else self
        return config.with_gnn(**gnn) if gnn else config

    def derive_seed(self, *parts: object) -> int:
        """Stable seed derived from the base seed and an identity tuple.

        Every randomised stage (locking one instance, training one model)
        seeds its generator from the *identity* of the work item rather than
        from execution order, so serial and parallel campaign runs produce
        bit-identical artifacts.  Shares its digest with
        :func:`repro.parallel.derive_job_seed`, the per-job variant used by
        intra-task worker pools.
        """
        return derive_job_seed(self.seed, *parts)

    def scaled_down(self) -> "AttackConfig":
        """A configuration small enough for unit tests (seconds per attack)."""
        return replace(
            self,
            locks_per_setting=1,
            iscas_key_sizes=(8,),
            itc_key_sizes=(32,),
            gnn=replace(self.gnn, hidden_dim=24, epochs=40, root_nodes=400),
        )

    def paper_scale(self) -> "AttackConfig":
        """The configuration reported in Table II (512 hidden, 2000 epochs)."""
        return replace(
            self,
            locks_per_setting=3,
            gnn=replace(
                self.gnn,
                hidden_dim=512,
                epochs=2000,
                patience=2000,
                root_nodes=3000,
            ),
        )
