"""Attack-wide configuration.

One object gathers every knob that controls dataset generation, GNN training
and the evaluation protocol so benchmark harnesses and examples stay short.
The defaults are the scaled-down "laptop" configuration; ``paper_scale()``
returns the configuration matching Table II of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

from ..benchgen.profiles import DEFAULT_SIZE_SCALE
from ..gnn.model import GnnConfig

__all__ = ["AttackConfig"]


@dataclass(frozen=True)
class AttackConfig:
    """Configuration of an end-to-end GNNUnlock run."""

    #: Number of times each benchmark is locked per (K, h) setting.
    locks_per_setting: int = 2
    #: Key sizes per suite (the paper: ISCAS {8,16,32,64}, ITC {32,64,128}).
    iscas_key_sizes: Tuple[int, ...] = (8, 16, 32, 64)
    itc_key_sizes: Tuple[int, ...] = (32, 64, 128)
    #: Benchmark scaling knob (see repro.benchgen.profiles).
    size_scale: float = DEFAULT_SIZE_SCALE
    #: Synthesis technology for SFLL/TTLock datasets ("BENCH8" = no mapping).
    technology: str = "BENCH8"
    synthesis_effort: str = "medium"
    #: GNN hyper-parameters (hidden width, epochs, sampler, ...).
    gnn: GnnConfig = field(default_factory=GnnConfig)
    #: Random seed for dataset generation (keys, target nets, ...).
    seed: int = 11

    def with_gnn(self, **kwargs) -> "AttackConfig":
        """Copy of the config with GNN hyper-parameters overridden."""
        return replace(self, gnn=replace(self.gnn, **kwargs))

    def scaled_down(self) -> "AttackConfig":
        """A configuration small enough for unit tests (seconds per attack)."""
        return replace(
            self,
            locks_per_setting=1,
            iscas_key_sizes=(8,),
            itc_key_sizes=(32,),
            gnn=replace(self.gnn, hidden_dim=24, epochs=40, root_nodes=400),
        )

    def paper_scale(self) -> "AttackConfig":
        """The configuration reported in Table II (512 hidden, 2000 epochs)."""
        return replace(
            self,
            locks_per_setting=3,
            gnn=replace(
                self.gnn,
                hidden_dim=512,
                epochs=2000,
                patience=2000,
                root_nodes=3000,
            ),
        )
