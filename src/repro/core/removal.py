"""Protection-logic removal and design recovery.

Once every gate carries a final label (GNN prediction + post-processing), the
protection logic is deleted and the netlist repaired:

* all gates labelled AN / PN / RN are removed, together with the key inputs;
* any surviving gate (or primary output) that referenced a removed net is
  re-wired by *resolving through* the removed integration XORs: an XOR that
  combined a design signal with a protection signal is bypassed to the design
  signal.  This is exactly the repair the paper performs when it removes the
  identified protection logic to "retrieve the original design".
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set

from ..locking.base import DESIGN
from ..netlist.circuit import Circuit, CircuitError

__all__ = ["RemovalError", "remove_protection_logic"]

_PASS_THROUGH_CELLS = frozenset(
    {"XOR", "XNOR", "XOR2", "XNOR2", "XOR3", "XNOR3", "BUF", "NOT", "INV"}
)


class RemovalError(CircuitError):
    """Raised when the predicted protection logic cannot be cleanly removed."""


def remove_protection_logic(
    locked: Circuit,
    final_labels: Mapping[str, str],
    *,
    strict: bool = True,
) -> Circuit:
    """Remove every gate not labelled as a design node and repair the netlist.

    Parameters
    ----------
    locked:
        The locked (possibly synthesised) netlist under attack.
    final_labels:
        Mapping from gate name to final label; gates missing from the mapping
        are treated as design gates.
    strict:
        When true, an unresolvable dangling reference raises
        :class:`RemovalError`; otherwise the offending sink keeps reading the
        (now undriven) net and the caller can inspect the damage.
    """
    removed: Set[str] = {
        gate for gate, label in final_labels.items() if label != DESIGN
    }
    removed &= set(locked.gate_names())

    resolution_cache: Dict[str, Optional[str]] = {}

    def resolve(net: str, visiting: Set[str]) -> Optional[str]:
        """Find the design net a removed net passes through, if unambiguous."""
        if net not in removed:
            if locked.is_key_input(net):
                return None
            return net
        if net in resolution_cache:
            return resolution_cache[net]
        if net in visiting:
            return None
        gate = locked.gate(net)
        if gate.cell.name not in _PASS_THROUGH_CELLS:
            resolution_cache[net] = None
            return None
        visiting = visiting | {net}
        candidates: Set[str] = set()
        for source in gate.inputs:
            resolved = resolve(source, visiting)
            if resolved is not None:
                candidates.add(resolved)
        result = candidates.pop() if len(candidates) == 1 else None
        resolution_cache[net] = result
        return result

    recovered = Circuit(locked.name, locked.library)
    for net in locked.inputs:
        recovered.add_input(net)
    # Key inputs are dropped: the recovered design is the unlocked original.

    for name in locked.topological_order():
        if name in removed:
            continue
        gate = locked.gate(name)
        new_inputs: List[str] = []
        for net in gate.inputs:
            if net in removed or locked.is_key_input(net):
                replacement = resolve(net, set())
                if replacement is None:
                    if strict:
                        raise RemovalError(
                            f"gate {name} reads protection net {net} that cannot "
                            "be resolved to a design signal"
                        )
                    replacement = net
                new_inputs.append(replacement)
            else:
                new_inputs.append(net)
        recovered.add_gate(name, gate.cell, tuple(new_inputs))

    for po in locked.outputs:
        driver = po
        if po in removed:
            replacement = resolve(po, set())
            if replacement is None:
                if strict:
                    raise RemovalError(
                        f"primary output {po} is driven by protection logic that "
                        "cannot be resolved to a design signal"
                    )
                replacement = po
            driver = replacement
        if driver == po:
            recovered.add_output(po)
        else:
            # The PO's driver was removed; give the design signal the PO name
            # so the recovered netlist keeps the original interface.
            if recovered.has_gate(po) or recovered.is_input(po):
                recovered.add_output(po)
            else:
                recovered.rename_net(driver, po)
                recovered.add_output(po)
    return recovered
