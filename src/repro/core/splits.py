"""Leave-one-design-out train / validation / test splits.

The paper's protocol (Section IV-A / V-A3): to attack one benchmark, its
graphs are used exclusively as the test set, the graphs of one other benchmark
form the validation set, and the graphs of all remaining benchmarks form the
training set.  The attacked design therefore never influences training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .dataset import NodeDataset

__all__ = ["SplitMasks", "leave_one_design_out"]


@dataclass
class SplitMasks:
    """Boolean node masks for one leave-one-design-out split."""

    train: np.ndarray
    val: np.ndarray
    test: np.ndarray
    target_benchmark: str
    validation_benchmark: str

    def counts(self) -> Dict[str, int]:
        return {
            "train": int(self.train.sum()),
            "val": int(self.val.sum()),
            "test": int(self.test.sum()),
        }


def leave_one_design_out(
    dataset: NodeDataset,
    target_benchmark: str,
    *,
    validation_benchmark: Optional[str] = None,
) -> SplitMasks:
    """Split a dataset for an attack on ``target_benchmark``.

    ``validation_benchmark`` defaults to the next benchmark (alphabetically)
    that is not the target, mirroring the paper's example of validating on
    ``b22_C`` while attacking ``b17_C``.
    """
    benchmarks = dataset.benchmarks()
    if target_benchmark not in benchmarks:
        raise ValueError(
            f"benchmark {target_benchmark!r} is not in the dataset "
            f"(available: {benchmarks})"
        )
    others = [b for b in benchmarks if b != target_benchmark]
    if not others:
        raise ValueError("leave-one-design-out needs at least two benchmarks")
    if validation_benchmark is None:
        validation_benchmark = sorted(others)[-1]
    if validation_benchmark == target_benchmark:
        raise ValueError("validation benchmark must differ from the target")
    if validation_benchmark not in benchmarks:
        raise ValueError(
            f"validation benchmark {validation_benchmark!r} is not in the dataset"
        )

    n = dataset.n_nodes
    train = np.zeros(n, dtype=bool)
    val = np.zeros(n, dtype=bool)
    test = np.zeros(n, dtype=bool)
    for idx, inst in enumerate(dataset.instances):
        nodes = dataset.nodes_of_instance(idx)
        if inst.benchmark == target_benchmark:
            test[nodes] = True
        elif inst.benchmark == validation_benchmark:
            val[nodes] = True
        else:
            train[nodes] = True
    if not train.any():
        raise ValueError(
            "split has an empty training set; add more benchmarks or pick a "
            "different validation benchmark"
        )
    return SplitMasks(
        train=train,
        val=val,
        test=test,
        target_benchmark=target_benchmark,
        validation_benchmark=validation_benchmark,
    )
