"""Per-node feature extraction (Section IV-B of the paper).

Each gate's feature vector ``f`` contains:

* whether the gate is connected to a primary input (PI),
* whether the gate is connected to a key input (KI),
* whether the gate drives a primary output (PO),
* its in-degree ``IN`` and out-degree ``OUT``,
* one count per library cell type: how many gates of that type appear in the
  node's two-hop neighbourhood.

The vector length is therefore ``5 + len(library)``: 13 for the bench-format
(8-cell) vocabulary, 34 for the 65nm-like library and 18 for the 45nm-like
library — matching Table III of the paper.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import scipy.sparse as sp

from ..netlist.circuit import Circuit
from .graph import CircuitGraph, circuit_to_graph

__all__ = ["feature_names", "extract_features", "FEATURE_STRUCTURAL"]

#: The five structural features preceding the per-cell neighbourhood counts.
FEATURE_STRUCTURAL: Tuple[str, ...] = ("PI", "KI", "PO", "IN", "OUT")


def feature_names(circuit_or_library) -> List[str]:
    """Names of the feature-vector entries for a circuit (or its library)."""
    library = getattr(circuit_or_library, "library", circuit_or_library)
    return list(FEATURE_STRUCTURAL) + [f"NB_{cell.name}" for cell in library]


def extract_features(
    circuit: Circuit, graph: CircuitGraph | None = None, *, hops: int = 2
) -> np.ndarray:
    """Feature matrix of shape ``(n_gates, 5 + n_cell_types)``.

    ``hops`` controls the neighbourhood radius of the gate-type counts; the
    paper uses two hops.
    """
    if graph is None:
        graph = circuit_to_graph(circuit)
    library = circuit.library
    n = graph.n_nodes
    n_types = len(library)
    features = np.zeros((n, 5 + n_types), dtype=np.float64)

    fanout = circuit.fanout_map()
    type_onehot = np.zeros((n, n_types), dtype=np.float64)
    for i, name in enumerate(graph.nodes):
        gate = circuit.gate(name)
        connected_pi = any(circuit.is_input(net) for net in gate.inputs)
        connected_ki = any(circuit.is_key_input(net) for net in gate.inputs)
        connected_po = circuit.is_output(name)
        features[i, 0] = float(connected_pi)
        features[i, 1] = float(connected_ki)
        features[i, 2] = float(connected_po)
        features[i, 3] = float(len(gate.inputs))
        features[i, 4] = float(len(fanout.get(name, ())))
        type_onehot[i, library.index(gate.cell.name)] = 1.0

    # Neighbourhood reach within ``hops`` hops (excluding the node itself,
    # matching the example in Fig. 3b where node i's own XOR is not counted).
    adjacency = graph.adjacency
    reach = adjacency.copy()
    power = adjacency.copy()
    for _ in range(hops - 1):
        power = power @ adjacency
        reach = reach + power
    reach = (reach > 0).astype(np.float64)
    reach = sp.csr_matrix(reach)
    reach.setdiag(0)
    reach.eliminate_zeros()
    features[:, 5:] = reach @ type_onehot
    return features
