"""The end-to-end GNNUnlock attack (Fig. 3a).

Given a dataset of locked benchmarks, attacking one design means:

1. build the leave-one-design-out split (the attacked design is only tested),
2. train the GraphSAGE node classifier on the training graphs with GraphSAINT
   random-walk sampling, selecting the best model on the validation graphs,
3. predict a class for every gate of the attacked design,
4. rectify the predictions with the connectivity-based post-processing,
5. remove the identified protection logic and repair the netlist,
6. verify the recovered design against the original (the paper uses Synopsys
   Formality; we use structural hashing + SAT).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..gnn.model import GnnConfig, GraphSageClassifier
from ..gnn.trainer import TrainingHistory, train_node_classifier
from ..netlist.circuit import Circuit
from ..parallel import WorkerPool, resolve_pool
from ..sat.equivalence import check_equivalence
from .config import AttackConfig
from .dataset import LockedInstance, NodeDataset
from .labeling import classes_to_labels
from .metrics import ClassificationReport, classification_report
from .postprocess import postprocess_predictions
from .removal import remove_protection_logic
from .splits import leave_one_design_out

__all__ = [
    "InstanceOutcome",
    "AttackOutcome",
    "GnnUnlockAttack",
    "train_attack_model",
    "attack_design",
]


@dataclass
class InstanceOutcome:
    """Attack result for one locked instance of the target benchmark."""

    instance: LockedInstance
    gnn_report: ClassificationReport
    post_report: ClassificationReport
    removal_success: bool
    recovered: Optional[Circuit] = None
    removal_error: Optional[str] = None
    post_classes: Optional[np.ndarray] = None

    @property
    def name(self) -> str:
        return self.instance.name


@dataclass
class AttackOutcome:
    """Attack result for one target benchmark (all its locked instances)."""

    target_benchmark: str
    validation_benchmark: str
    scheme: str
    instances: List[InstanceOutcome]
    gnn_report: ClassificationReport
    post_report: ClassificationReport
    history: TrainingHistory
    train_nodes: int
    val_nodes: int
    test_nodes: int
    attack_time_s: float

    @property
    def gnn_accuracy(self) -> float:
        return self.gnn_report.accuracy

    @property
    def post_accuracy(self) -> float:
        return self.post_report.accuracy

    @property
    def removal_success_rate(self) -> float:
        if not self.instances:
            return 0.0
        return float(np.mean([o.removal_success for o in self.instances]))

    @property
    def n_misclassified(self) -> int:
        return self.gnn_report.n_misclassified


def _class_names_of(dataset: NodeDataset) -> tuple:
    return tuple(sorted(dataset.class_map, key=dataset.class_map.get))


def _resolve_gnn_config(dataset: NodeDataset, config: AttackConfig) -> GnnConfig:
    base = config.gnn
    return GnnConfig(
        **{
            **base.__dict__,
            "n_features": dataset.n_features,
            "n_classes": dataset.n_classes,
        }
    )


def train_attack_model(
    dataset: NodeDataset,
    target_benchmark: str,
    *,
    config: Optional[AttackConfig] = None,
    validation_benchmark: Optional[str] = None,
    pool: Optional[WorkerPool] = None,
):
    """Steps 1-2 of the attack: split the dataset and train the classifier.

    Returns ``(model, history, split)``.  Separated from :func:`attack_design`
    so campaign runners can cache the trained model and re-enter the attack
    at the prediction stage.  ``pool`` parallelises the GraphSAINT
    normalisation phase and enables batch prefetching; ``None`` consults the
    global ``REPRO_INTRA_WORKERS`` budget (no pool in budget = the legacy
    serial path, bit-identical to previous releases).
    """
    config = config if config is not None else AttackConfig()
    pool = resolve_pool(pool)
    split = leave_one_design_out(
        dataset, target_benchmark, validation_benchmark=validation_benchmark
    )
    graph_data = dataset.to_graph_data(split.train, split.val, split.test)
    gnn_config = _resolve_gnn_config(dataset, config)
    model, history = train_node_classifier(
        graph_data, gnn_config, rng=np.random.default_rng(gnn_config.seed), pool=pool
    )
    return model, history, split


def attack_design(
    dataset: NodeDataset,
    target_benchmark: str,
    *,
    config: Optional[AttackConfig] = None,
    validation_benchmark: Optional[str] = None,
    verify_removal: bool = True,
    apply_postprocessing: bool = True,
    model: Optional[GraphSageClassifier] = None,
    history: Optional[TrainingHistory] = None,
    pool: Optional[WorkerPool] = None,
) -> AttackOutcome:
    """Task-level entry point: attack one benchmark of a dataset.

    This is the unit of work a campaign runner schedules.  Passing a
    pre-trained ``model`` (with its ``history``) skips training and re-enters
    the attack at the prediction stage — the split is recomputed
    deterministically, so a cached model produces an outcome identical to the
    run that trained it.  ``pool`` (or the ambient ``REPRO_INTRA_WORKERS``
    budget) parallelises training's normalisation phase and shards the
    removal-verification equivalence checks per primary output.
    """
    start = time.perf_counter()
    config = config if config is not None else AttackConfig()
    pool = resolve_pool(pool)
    class_names = _class_names_of(dataset)
    if model is None:
        model, history, split = train_attack_model(
            dataset,
            target_benchmark,
            config=config,
            validation_benchmark=validation_benchmark,
            pool=pool,
        )
    else:
        if history is None:
            history = TrainingHistory()
        split = leave_one_design_out(
            dataset, target_benchmark, validation_benchmark=validation_benchmark
        )
    graph_data = dataset.to_graph_data(split.train, split.val, split.test)
    predictions = model.predict(
        graph_data.features, graph_data.normalized_adjacency()
    )

    instance_outcomes: List[InstanceOutcome] = []
    all_true: List[np.ndarray] = []
    all_gnn_pred: List[np.ndarray] = []
    all_post_pred: List[np.ndarray] = []
    for idx in dataset.instances_of_benchmark(target_benchmark):
        outcome = _attack_instance(
            dataset,
            class_names,
            idx,
            predictions,
            verify_removal=verify_removal,
            apply_postprocessing=apply_postprocessing,
            pool=pool,
        )
        instance_outcomes.append(outcome)
        nodes = dataset.nodes_of_instance(idx)
        all_true.append(dataset.labels[nodes])
        all_gnn_pred.append(predictions[nodes])
        post_classes = (
            outcome.post_classes
            if outcome.post_classes is not None
            else predictions[nodes]
        )
        all_post_pred.append(post_classes)

    true_concat = np.concatenate(all_true)
    gnn_concat = np.concatenate(all_gnn_pred)
    post_concat = np.concatenate(all_post_pred)
    gnn_report = classification_report(true_concat, gnn_concat, class_names)
    post_report = classification_report(true_concat, post_concat, class_names)

    counts = split.counts()
    return AttackOutcome(
        target_benchmark=target_benchmark,
        validation_benchmark=split.validation_benchmark,
        scheme=dataset.instances[0].result.scheme,
        instances=instance_outcomes,
        gnn_report=gnn_report,
        post_report=post_report,
        history=history,
        train_nodes=counts["train"],
        val_nodes=counts["val"],
        test_nodes=counts["test"],
        attack_time_s=time.perf_counter() - start,
    )


class GnnUnlockAttack:
    """Run GNNUnlock against designs of a :class:`NodeDataset`."""

    def __init__(
        self,
        dataset: NodeDataset,
        *,
        config: Optional[AttackConfig] = None,
    ):
        self.dataset = dataset
        self.config = config if config is not None else AttackConfig()
        self._class_names = _class_names_of(dataset)

    # ------------------------------------------------------------------
    def attack(
        self,
        target_benchmark: str,
        *,
        validation_benchmark: Optional[str] = None,
        verify_removal: bool = True,
        apply_postprocessing: bool = True,
        pool: Optional[WorkerPool] = None,
    ) -> AttackOutcome:
        """Attack one benchmark with leave-one-design-out training."""
        return attack_design(
            self.dataset,
            target_benchmark,
            config=self.config,
            validation_benchmark=validation_benchmark,
            verify_removal=verify_removal,
            apply_postprocessing=apply_postprocessing,
            pool=pool,
        )

    def attack_all(self, **kwargs) -> Dict[str, AttackOutcome]:
        """Attack every benchmark in the dataset, one at a time."""
        outcomes: Dict[str, AttackOutcome] = {}
        for benchmark in self.dataset.benchmarks():
            outcomes[benchmark] = self.attack(benchmark, **kwargs)
        return outcomes


def _attack_instance(
    dataset: NodeDataset,
    class_names: Sequence[str],
    instance_idx: int,
    predictions: np.ndarray,
    *,
    verify_removal: bool,
    apply_postprocessing: bool,
    pool: Optional[WorkerPool] = None,
) -> InstanceOutcome:
    instance = dataset.instances[instance_idx]
    nodes = dataset.nodes_of_instance(instance_idx)
    graph = dataset.graphs[instance_idx]
    circuit = instance.result.locked

    true_classes = dataset.labels[nodes]
    predicted_classes = predictions[nodes]
    gnn_report = classification_report(true_classes, predicted_classes, class_names)

    predicted_labels = dict(
        zip(graph.nodes, classes_to_labels(predicted_classes, dataset.class_map))
    )
    if apply_postprocessing:
        final_labels = postprocess_predictions(circuit, predicted_labels)
    else:
        final_labels = dict(predicted_labels)
    final_classes = np.array(
        [dataset.class_map[final_labels[node]] for node in graph.nodes]
    )
    post_report = classification_report(true_classes, final_classes, class_names)

    recovered: Optional[Circuit] = None
    removal_error: Optional[str] = None
    removal_success = False
    if verify_removal:
        try:
            recovered = remove_protection_logic(circuit, final_labels)
            equivalence = check_equivalence(
                recovered, instance.result.original, method="auto", pool=pool
            )
            removal_success = bool(equivalence.equivalent)
        except Exception as exc:  # noqa: BLE001 - an attack failure is a result
            removal_error = str(exc)
            removal_success = False

    return InstanceOutcome(
        instance=instance,
        gnn_report=gnn_report,
        post_report=post_report,
        removal_success=removal_success,
        recovered=recovered,
        removal_error=removal_error,
        post_classes=final_classes,
    )
