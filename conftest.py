"""Pytest bootstrap: make ``src/`` importable even without installation.

The project is normally installed with ``pip install -e .``; on fully offline
machines where the editable install cannot build (missing ``wheel``), tests
and benchmarks still run because this conftest prepends ``src/`` to
``sys.path``.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
