"""Quickstart: lock one benchmark with Anti-SAT and break it with GNNUnlock.

Run with ``python examples/quickstart.py``.
"""

from repro.core import (
    AttackConfig,
    GnnUnlockAttack,
    build_dataset,
    format_percent,
    generate_instances,
)


def main() -> None:
    # 1. Generate a small Anti-SAT dataset: four ISCAS-85-like benchmarks,
    #    each locked once with K = 8 and K = 16.
    config = AttackConfig(locks_per_setting=1, seed=3).with_gnn(
        hidden_dim=32, epochs=60, root_nodes=600
    )
    instances = generate_instances(
        "antisat",
        ["c2670", "c3540", "c5315", "c7552"],
        key_sizes=(8, 16),
        config=config,
    )
    dataset = build_dataset(instances)
    print("dataset:", dataset.summary())

    # 2. Attack c7552: its graphs are only ever used as the test set.
    attack = GnnUnlockAttack(dataset, config=config)
    outcome = attack.attack("c7552", validation_benchmark="c5315")

    # 3. Report what the paper's Table IV reports.
    print(f"target               : {outcome.target_benchmark}")
    print(f"GNN accuracy         : {format_percent(outcome.gnn_accuracy)}%")
    print(f"post-processed acc.  : {format_percent(outcome.post_accuracy)}%")
    print(f"misclassified nodes  : {outcome.gnn_report.misclassification_summary()}")
    print(f"removal success      : {format_percent(outcome.removal_success_rate)}%")
    for instance in outcome.instances:
        status = "recovered" if instance.removal_success else "FAILED"
        print(f"  {instance.name:32s} -> {status}")


if __name__ == "__main__":
    main()
