"""Corner case study (Section V-D): SFLL-HD with K/h = 2.

The FALL and SFLL-HD-Unlocked attacks report zero keys on these designs,
while GNNUnlock still removes the protection logic.  This example reproduces
that comparison on one benchmark.
"""

from repro.baselines import fall_attack, sfll_hd_unlocked_attack
from repro.core import (
    AttackConfig,
    GnnUnlockAttack,
    build_dataset,
    format_percent,
    generate_instances,
)

KEY_SIZE = 16
H = KEY_SIZE // 2  # the corner case: K / h = 2


def main() -> None:
    config = AttackConfig(locks_per_setting=1, seed=9).with_gnn(
        hidden_dim=32, epochs=60, root_nodes=600
    )
    benchmarks = ["c2670", "c3540", "c5315", "c7552"]
    instances = generate_instances(
        "sfll", benchmarks, key_sizes=(KEY_SIZE,), h=H, config=config
    )
    dataset = build_dataset(instances)
    target = "c7552"

    print(f"SFLL-HD with K={KEY_SIZE}, h={H} (K/h = 2) on {target}\n")

    # Prior oracle-less attacks on the locked instance of the target.
    locked = next(i.result for i in instances if i.benchmark == target)
    for name, attack in (
        ("FALL", fall_attack),
        ("SFLL-HD-Unlocked", sfll_hd_unlocked_attack),
    ):
        result = attack(locked)
        verdict = "key recovered" if result.success else f"failed ({result.reason})"
        print(f"{name:18s}: {verdict}")

    # GNNUnlock on the same target.
    outcome = GnnUnlockAttack(dataset, config=config).attack(target)
    print(
        f"{'GNNUnlock':18s}: removal success "
        f"{format_percent(outcome.removal_success_rate)}% "
        f"(GNN accuracy {format_percent(outcome.gnn_accuracy)}%, "
        f"post-processed {format_percent(outcome.post_accuracy)}%)"
    )


if __name__ == "__main__":
    main()
