"""Inspect the netlist-to-graph transformation (Section IV-B, Fig. 3b).

Locks a benchmark with TTLock, synthesises it onto the 65nm-like library,
converts it to a graph, and prints the feature vector of the gate driving the
protected output — the same walk-through the paper illustrates.
"""

import numpy as np

from repro.core import circuit_to_graph, extract_features, feature_names
from repro.benchgen import get_benchmark
from repro.locking import SCHEMES
from repro.synth import SynthesisOptions, synthesize_locked


def main() -> None:
    rng = np.random.default_rng(5)
    locker = SCHEMES.create("ttlock", key_size=16)
    result = locker.lock(get_benchmark("c5315"), rng=rng)
    mapped = synthesize_locked(result, SynthesisOptions(technology="GEN65"))

    graph = circuit_to_graph(mapped.locked)
    features = extract_features(mapped.locked, graph)
    names = feature_names(mapped.locked)

    print(f"locked design: {mapped.locked.name}")
    print(f"nodes (gates): {graph.n_nodes}, feature length |f| = {len(names)}")
    print(f"classes: DN={sum(1 for l in mapped.labels.values() if l == 'DN')}, "
          f"RN={sum(1 for l in mapped.labels.values() if l == 'RN')}, "
          f"PN={sum(1 for l in mapped.labels.values() if l == 'PN')}")

    node = mapped.target_net
    idx = graph.node_index(node)
    print(f"\nfeature vector of the protected-output gate {node!r} "
          f"(label {mapped.labels[node]}):")
    for name, value in zip(names, features[idx]):
        if value:
            print(f"  {name:12s} = {value:g}")


if __name__ == "__main__":
    main()
