"""Capability comparison across attacks and locking schemes (Table I flavour).

Locks one benchmark with traditional XOR locking, Anti-SAT, TTLock and
SFLL-HD2, runs every applicable attack on every instance, and prints a
capability matrix.
"""

import numpy as np

from repro.baselines import fall_attack, sat_attack, sfll_hd_unlocked_attack, sps_attack
from repro.benchgen import get_benchmark
from repro.core import format_table
from repro.locking import (
    AntiSatLocking,
    RandomXorLocking,
    SfllHdLocking,
    TTLockLocking,
)


def main() -> None:
    rng = np.random.default_rng(21)
    circuit = get_benchmark("c7552")
    locked = {
        "RandomXOR": RandomXorLocking(8).lock(circuit.copy(), rng=rng),
        "Anti-SAT": AntiSatLocking(16).lock(circuit.copy(), rng=rng),
        "TTLock": TTLockLocking(16).lock(circuit.copy(), rng=rng),
        "SFLL-HD2": SfllHdLocking(16, 2).lock(circuit.copy(), rng=rng),
    }
    attacks = {
        "SAT (oracle)": lambda r: sat_attack(r, max_iterations=16),
        "SPS": sps_attack,
        "FALL": fall_attack,
        "SFLL-HD-Unlocked": sfll_hd_unlocked_attack,
    }

    rows = []
    for scheme, result in locked.items():
        row = [scheme]
        for attack in attacks.values():
            outcome = attack(result)
            row.append("break" if outcome.success else "-")
        rows.append(row)
    print(format_table(["Scheme"] + list(attacks), rows))
    print(
        "\nGNNUnlock (see quickstart.py / the benchmark harnesses) breaks "
        "Anti-SAT, TTLock and SFLL-HD without an oracle, which is the gap "
        "this capability matrix motivates."
    )


if __name__ == "__main__":
    main()
