"""Capability comparison across attacks and locking schemes (Table I flavour).

Locks one benchmark with traditional XOR locking, Anti-SAT, TTLock and
SFLL-HD2, runs every applicable baseline attack on every instance — as one
parallel campaign through :mod:`repro.runner` — and prints a capability
matrix.
"""

from repro.core import AttackConfig, format_table
from repro.runner import CampaignSpec, run_campaign

#: (scheme grid entry, key size) per capability-matrix row.
_SCHEMES = (
    ("xor", 8),
    ("antisat", 16),
    ("ttlock", 16),
    ("sfll:2", 16),
)

_ATTACKS = ("sat", "sps", "fall", "sfll-hd-unlocked")

_ROW_LABELS = {
    "xor": "RandomXOR",
    "antisat": "Anti-SAT",
    "ttlock": "TTLock",
    "sfll": "SFLL-HD2",
}


def main() -> None:
    config = AttackConfig(locks_per_setting=1, seed=21)
    tasks = []
    for scheme, key_size in _SCHEMES:
        spec = CampaignSpec(
            name="capability",
            schemes=(f"{scheme}@BENCH8",),
            benchmarks=("c7552",),
            key_size_groups=((key_size,),),
            attacks=_ATTACKS,
            attack_params={"sat": {"max_iterations": 16}},
            config=config,
        )
        tasks += spec.expand()

    results = run_campaign(tasks, use_cache=False)
    by_task = {}
    for result in results:
        if not result.ok:
            raise RuntimeError(f"{result.task_id} failed: {result.error}")
        record = result.record
        by_task[(record["scheme"], record["attack"])] = record["baseline_success"]

    attack_names = {
        "sat": "SAT (oracle)",
        "sps": "SPS",
        "fall": "FALL",
        "sfll-hd-unlocked": "SFLL-HD-Unlocked",
    }
    rows = []
    for scheme, _ in _SCHEMES:
        scheme_key = "sfll" if scheme.startswith("sfll") else scheme
        row = [_ROW_LABELS[scheme_key]]
        for attack in _ATTACKS:
            row.append("break" if by_task[(scheme_key, attack)] else "-")
        rows.append(row)
    print(format_table(["Scheme"] + [attack_names[a] for a in _ATTACKS], rows))
    print(
        "\nGNNUnlock (see quickstart.py / the benchmark harnesses) breaks "
        "Anti-SAT, TTLock and SFLL-HD without an oracle, which is the gap "
        "this capability matrix motivates."
    )


if __name__ == "__main__":
    main()
