"""Setup shim.

The canonical metadata lives in ``pyproject.toml``.  This file exists so the
package can be installed in environments without the ``wheel`` package (plain
``python setup.py develop`` / legacy editable installs), e.g. fully offline
machines.
"""

from setuptools import setup

setup()
