"""Distributed fleet benchmark: drainer scaling + kill -9 fault injection.

Starts a ``CampaignService(fleet=True)`` in-process, spawns real
``python -m repro work`` drainer subprocesses against it, and measures a
dataset-summary campaign end to end:

* **scaling** — wall time and tasks/s at 1, 2 and 4 drainers (fresh state
  and cache per size, so no cross-run artifact reuse flatters the numbers);
* **fault injection** — 2 drainers, one SIGKILLed as soon as it holds a
  lease; the run must still complete every task exactly once (lease
  reclaim re-queues the orphaned task) with a report byte-identical to
  the serial reference.

Every phase asserts byte-identity of the job's rendered report against an
offline ``run_campaign(serial=True)`` reference — the fleet must be an
execution strategy, never an answer-changing one.

Emits ``BENCH_fleet.json`` at the repository root.  tasks/s should rise
monotonically with drainer count on a multi-core host; the exit code only
enforces that under ``REPRO_BENCH_STRICT=1`` (single-core runners time-slice
the drainers, so CI records the numbers without gating on them — the
exactly-once and byte-identity assertions always gate).

Run directly::

    PYTHONPATH=src python benchmarks/bench_fleet.py
    REPRO_BENCH_STRICT=1 PYTHONPATH=src python benchmarks/bench_fleet.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
sys.path.insert(0, str(SRC))

from repro.core import AttackConfig  # noqa: E402
from repro.runner import CampaignSpec, ResultStore, render_report, run_campaign  # noqa: E402
from repro.service import CampaignService, ServiceClient  # noqa: E402

RESULT_PATH = ROOT / "BENCH_fleet.json"
DRAINER_COUNTS = (1, 2, 4)
LEASE_TTL_S = 2.0
WAIT_TIMEOUT_S = 600.0


def fleet_spec() -> CampaignSpec:
    """A dataset-summary campaign with enough tasks to share around."""
    config = AttackConfig(locks_per_setting=1, iscas_key_sizes=(8,), seed=11)
    return CampaignSpec(
        name="bench-fleet",
        schemes=("antisat",),
        benchmarks=("c2670", "c3540", "c5315"),
        targets=("c2670", "c3540", "c5315"),
        key_size_groups=((8,), (16,)),
        attacks=("dataset-summary",),
        config=config,
    )


def spawn_drainer(url: str, name: str, cache_dir: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "work",
            "--url", url,
            "--name", name,
            "--poll", "0.1",
            "--max-idle", "60",
            "--cache-dir", str(cache_dir),
        ],
        env=env,
        cwd=ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def stop_drainers(procs) -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def fleet_counters(client: ServiceClient) -> dict:
    counts = {}
    for line in client.metrics().splitlines():
        if line.startswith("repro_fleet_leases_total{"):
            event = line.split('event="')[1].split('"')[0]
            counts[event] = int(float(line.rsplit(" ", 1)[1]))
    return counts


def run_fleet_phase(
    workdir: Path,
    spec: CampaignSpec,
    n_drainers: int,
    reference_report: str,
    *,
    kill_one: bool = False,
) -> dict:
    state = workdir / "state"
    service = CampaignService(
        state,
        port=0,
        fleet=True,
        lease_ttl_s=LEASE_TTL_S,
        cache_dir=workdir / "cache",
    )
    service.start()
    client = ServiceClient(service.url)
    procs = []
    try:
        names = [f"drainer-{i}" for i in range(n_drainers)]
        procs = [
            spawn_drainer(service.url, name, workdir / f"{name}-cache")
            for name in names
        ]
        victim, victim_name = (procs[0], names[0]) if kill_one else (None, None)

        started = time.perf_counter()
        job = client.submit(spec)["job"]

        if kill_one:
            # SIGKILL the victim the moment it holds a lease: no heartbeat,
            # no release — the coordinator must reclaim by TTL expiry.
            deadline = time.monotonic() + WAIT_TIMEOUT_S
            while time.monotonic() < deadline:
                events = client.stream(job["job_id"], timeout=0.5)["events"]
                if any(
                    event.get("event") == "lease_granted"
                    and event.get("worker") == victim_name
                    for event in events
                ):
                    break
            victim.send_signal(signal.SIGKILL)
            victim.wait()

        final = client.wait(job["job_id"], timeout=WAIT_TIMEOUT_S)
        wall_s = time.perf_counter() - started

        assert final["status"] == "done", f"job ended {final['status']}"
        records = ResultStore(service.queue.get(job["job_id"]).store_path).load()
        task_ids = [record["task_id"] for record in records]
        exactly_once = len(task_ids) == len(set(task_ids)) == final["progress"][
            "tasks_total"
        ]
        report = client.report(job["job_id"])
        counters = fleet_counters(client)
        n_tasks = final["progress"]["tasks_total"]
        return {
            "drainers": n_drainers,
            "wall_s": wall_s,
            "tasks": n_tasks,
            "tasks_per_s": n_tasks / wall_s,
            "exactly_once": bool(exactly_once),
            "report_matches_reference": report == reference_report,
            "lease_counters": counters,
            **({"killed": victim_name} if kill_one else {}),
        }
    finally:
        stop_drainers(procs)
        service.stop()


def main() -> int:
    spec = fleet_spec()
    tasks = spec.expand()
    print(f"campaign expands to {len(tasks)} task(s)")

    with tempfile.TemporaryDirectory(prefix="repro-bench-fleet-") as tmp:
        tmpdir = Path(tmp)

        # Serial reference: same spec, ordinary in-process executor.
        reference_store = ResultStore(tmpdir / "reference.jsonl")
        started = time.perf_counter()
        run_campaign(
            tasks,
            serial=True,
            cache_dir=tmpdir / "reference-cache",
            store=reference_store,
        )
        reference_wall = time.perf_counter() - started
        reference = render_report(list(reference_store.latest().values()))
        print(f"serial reference: {reference_wall:.2f} s")

        drainer_results = {}
        for count in DRAINER_COUNTS:
            result = run_fleet_phase(
                tmpdir / f"fleet-{count}", spec, count, reference
            )
            drainer_results[str(count)] = result
            print(
                f"{count} drainer(s): {result['wall_s']:.2f} s "
                f"({result['tasks_per_s']:.2f} tasks/s, "
                f"identical={result['report_matches_reference']})"
            )

        fault = run_fleet_phase(
            tmpdir / "fleet-fault", spec, 2, reference, kill_one=True
        )
        print(
            f"fault injection (kill -9 {fault['killed']}): "
            f"{fault['wall_s']:.2f} s, exactly_once={fault['exactly_once']}, "
            f"reclaimed={fault['lease_counters'].get('reclaimed', 0)}"
        )

    rates = [drainer_results[str(c)]["tasks_per_s"] for c in DRAINER_COUNTS]
    monotonic = all(b >= a for a, b in zip(rates, rates[1:]))
    correct = all(
        row["exactly_once"] and row["report_matches_reference"]
        for row in [*drainer_results.values(), fault]
    )
    report = {
        "bench": "fleet",
        "tasks": len(tasks),
        "lease_ttl_s": LEASE_TTL_S,
        "serial_reference_wall_s": reference_wall,
        "drainers": drainer_results,
        "fault_injection": fault,
        "acceptance": {
            "throughput_monotonic_1_2_4": monotonic,
            "exactly_once_and_byte_identical": correct,
            "pass": bool(monotonic and correct),
        },
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {RESULT_PATH}")

    if not correct:
        return 1  # correctness always gates
    if os.environ.get("REPRO_BENCH_STRICT", "").strip() in ("1", "true", "yes"):
        return 0 if report["acceptance"]["pass"] else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
