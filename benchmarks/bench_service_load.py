"""Load / soak harness for the campaign service (``repro.service``).

Fires N concurrent clients at a **live** :class:`CampaignService` (real
loopback HTTP, auth enabled, one token per client) and checks the hardening
invariants under contention:

* **no lost or duplicated jobs** — every submission lands exactly once;
  the admin listing holds exactly the submitted fingerprints;
* **quotas enforced** — a token with ``max_queued=2`` gets its third
  backlog submission rejected with 429/``quota_exceeded`` + ``Retry-After``;
* **rate limit enforced** — a token bucket rejects the burst-exceeding
  submission with 429/``rate_limited`` and a positive retry hint;
* **priority order** — with the workers pinned by blocker jobs, a
  high-priority submission starts before earlier low-priority backlog;
* **reports byte-identical to direct runs** — fetched reports diff clean
  against offline ``run_campaign`` renders of the same specs.

The workload is the synthetic-fast ``dataset-summary`` attack (no GNN
training; ~10ms/task warm-cache), so the measured numbers are dominated by
the service itself: submit latency percentiles (p50/p95) and end-to-end
jobs/second.  Results land in ``BENCH_service_load.json`` next to the
repository root to seed the service-throughput trajectory, together with an
end-of-run ``/metricsz`` snapshot (aggregate series only) cross-checking the
client-side numbers against the service's own telemetry.

The invariants and a generous p95 submit-latency bound (2s — loopback JSON
handling, three orders of magnitude of headroom) are asserted on every run;
``REPRO_BENCH_STRICT=1`` additionally gates the throughput floor, which is
too hardware-dependent for shared CI runners.

Run directly::

    PYTHONPATH=src python benchmarks/bench_service_load.py                # defaults
    PYTHONPATH=src python benchmarks/bench_service_load.py --clients 16 --jobs-per-client 4
    PYTHONPATH=src python benchmarks/bench_service_load.py --soak-seconds 30
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import AttackConfig  # noqa: E402
from repro.obs import parse_prometheus  # noqa: E402
from repro.runner import CampaignSpec, ResultStore, render_report, run_campaign  # noqa: E402
from repro.service import (  # noqa: E402
    CampaignService,
    ServiceClient,
    ThrottledError,
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service_load.json"

#: Throughput floor gated only under REPRO_BENCH_STRICT=1.
STRICT_MIN_JOBS_PER_S = 2.0

#: Always-asserted bound on p95 submit latency (loopback JSON handling).
MAX_P95_SUBMIT_S = 2.0

TINY_CONFIG = AttackConfig(locks_per_setting=1, iscas_key_sizes=(8,), seed=5)


def fast_spec(name: str, priority: int = 0) -> CampaignSpec:
    """A one-task ``dataset-summary`` campaign.

    Every spec shares one :class:`DatasetSpec` fingerprint (same benchmarks,
    key sizes, seed), so the generated dataset is cached once and the load
    phase measures the service, not dataset generation.
    """
    return CampaignSpec(
        name=name,
        schemes=("antisat",),
        benchmarks=("c2670", "c3540", "c5315"),
        targets=("c2670",),
        key_size_groups=((8,),),
        attacks=("dataset-summary",),
        config=TINY_CONFIG,
        priority=priority,
    )


def write_tokens_file(path: Path, n_clients: int) -> Dict[str, str]:
    """Tokens file for a load run; returns ``{principal: secret}``.

    One submit token per load client, an admin token, a quota-probe token
    capped at 2 queued jobs, and a rate-probe token with a 2-burst bucket.
    """
    entries: Dict[str, Dict[str, object]] = {
        "tok-admin": {"name": "admin", "role": "admin"},
        "tok-quota": {"name": "quota-probe", "role": "submit", "max_queued": 2},
        "tok-rate": {
            "name": "rate-probe",
            "role": "submit",
            "submit_rate": 0.5,
            "submit_burst": 2,
        },
    }
    for i in range(n_clients):
        entries[f"tok-client-{i}"] = {"name": f"client-{i}", "role": "submit"}
    path.write_text(json.dumps({"tokens": entries}, indent=2), encoding="utf-8")
    return {info["name"]: secret for secret, info in entries.items()}  # type: ignore[index]


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1])."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


# ----------------------------------------------------------------------
# Phase 1: concurrent-client throughput + lost/duplicate/report invariants.
# ----------------------------------------------------------------------
def run_load_phase(
    service: CampaignService,
    secrets: Dict[str, str],
    *,
    clients: int,
    jobs_per_client: int,
    offline_checks: int = 2,
    offline_dir: Optional[Path] = None,
) -> Dict[str, object]:
    """N concurrent clients submit distinct campaigns and wait them out."""
    specs = {
        (c, j): fast_spec(f"load-c{c}-j{j}")
        for c in range(clients)
        for j in range(jobs_per_client)
    }
    latencies: List[float] = []
    throttled_retries = 0
    submitted: Dict[str, List[str]] = {}  # client name -> job ids, in order
    errors: List[str] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients)

    def one_client(c: int) -> None:
        nonlocal throttled_retries
        client = ServiceClient(service.url, token=secrets[f"client-{c}"])
        ids: List[str] = []
        barrier.wait()
        for j in range(jobs_per_client):
            while True:
                begin = time.monotonic()
                try:
                    response = client.submit(specs[(c, j)])
                except ThrottledError as exc:
                    with lock:
                        throttled_retries += 1
                    time.sleep(exc.retry_after_s or 0.5)
                    continue
                except Exception as exc:  # noqa: BLE001 - collected, not raised mid-thread
                    with lock:
                        errors.append(f"client-{c} job {j}: {exc}")
                    return
                elapsed = time.monotonic() - begin
                with lock:
                    latencies.append(elapsed)
                if not response["created"]:
                    with lock:
                        errors.append(f"client-{c} job {j}: deduped unexpectedly")
                ids.append(str(response["job"]["job_id"]))
                break
        with lock:
            submitted[f"client-{c}"] = ids

    begin = time.monotonic()
    threads = [
        threading.Thread(target=one_client, args=(c,), name=f"load-client-{c}")
        for c in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, f"client errors: {errors[:5]}"

    all_ids = [job_id for ids in submitted.values() for job_id in ids]
    total = clients * jobs_per_client
    no_duplicates = len(set(all_ids)) == len(all_ids) == total

    # Wait every job to done over the stream endpoint.
    admin = ServiceClient(service.url, token=secrets["admin"])
    finals = {job_id: admin.wait(job_id, timeout=300.0) for job_id in all_ids}
    wall_s = time.monotonic() - begin
    all_done = all(final["status"] == "done" for final in finals.values())
    progress_ok = all(
        final["progress"]["tasks_done"] == final["progress"]["tasks_total"]
        and final["progress"]["tasks_failed"] == 0
        for final in finals.values()
    )

    # No lost jobs: the admin listing holds exactly the submitted ids (the
    # load principals own nothing else), and each client sees exactly its own.
    listed = {
        snap["job_id"]
        for snap in admin.jobs()
        if any(owner.startswith("client-") for owner in snap["owners"])
    }
    no_lost = listed == set(all_ids)
    own_view_ok = all(
        {snap["job_id"] for snap in ServiceClient(service.url, token=secrets[name]).jobs()}
        == set(ids)
        for name, ids in submitted.items()
    )

    # Fetched reports diff clean against direct offline runs (same cache).
    reports_match = True
    check_keys = sorted(specs)[: max(0, offline_checks)]
    offline_root = Path(offline_dir or tempfile.mkdtemp(prefix="repro-load-offline-"))
    for key in check_keys:
        spec = specs[key]
        store = ResultStore(offline_root / f"{spec.name}.jsonl")
        run_campaign(
            spec.expand(),
            serial=True,
            cache_dir=service.worker.cache_dir,
            store=store,
        )
        offline = render_report(list(store.latest().values()))
        job_id = submitted[f"client-{key[0]}"][key[1]]
        if admin.report(job_id) != offline:
            reports_match = False

    return {
        "clients": clients,
        "jobs_per_client": jobs_per_client,
        "total_jobs": total,
        "wall_s": wall_s,
        "jobs_per_s": total / wall_s if wall_s > 0 else float("inf"),
        "submit_latency_s": {
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "max": max(latencies) if latencies else float("nan"),
        },
        "throttled_retries": throttled_retries,
        "invariants": {
            "no_duplicate_jobs": no_duplicates,
            "no_lost_jobs": no_lost,
            "all_done": all_done,
            "progress_consistent": progress_ok,
            "owner_views_disjoint": own_view_ok,
            "reports_match_offline": reports_match,
        },
    }


# ----------------------------------------------------------------------
# Phase 2: quota / rate-limit / priority invariants behind pinned workers.
# ----------------------------------------------------------------------
def run_guardrail_phase(
    service: CampaignService, secrets: Dict[str, str]
) -> Dict[str, object]:
    admin = ServiceClient(service.url, token=secrets["admin"])
    quota = ServiceClient(service.url, token=secrets["quota-probe"])
    rate = ServiceClient(service.url, token=secrets["rate-probe"])

    # Pause the claim pump so probe jobs stay queued deterministically (the
    # HTTP surface — auth, queue, quotas — stays fully live; tiny jobs on a
    # fast machine would otherwise drain before the probes land).
    service.worker.stop(timeout=60)

    # Quota: max_queued=2 admits exactly two backlog jobs, rejects the third.
    assert quota.submit(fast_spec("quota-1"))["created"]
    assert quota.submit(fast_spec("quota-2"))["created"]
    quota_enforced = False
    retry_after = None
    try:
        quota.submit(fast_spec("quota-3"))
    except ThrottledError as exc:
        quota_enforced = exc.code == "quota_exceeded"
        retry_after = exc.retry_after_s

    # Rate limit: burst of 2, then 429 with a positive Retry-After.
    assert rate.submit(fast_spec("rate-1"))["created"]
    assert rate.submit(fast_spec("rate-2"))["created"]
    rate_limited = False
    rate_retry_after = None
    try:
        rate.submit(fast_spec("rate-3"))
    except ThrottledError as exc:
        rate_limited = exc.code == "rate_limited"
        rate_retry_after = exc.retry_after_s

    # Priority: backlog at 0, then an urgent job; once the workers resume it
    # must start first (claim order is serialised by the queue lock, so
    # started_at ordering is faithful).
    low_ids = [
        admin.submit(fast_spec(f"prio-low-{i}"))["job"]["job_id"] for i in range(2)
    ]
    high_id = admin.submit(fast_spec("prio-high", priority=5))["job"]["job_id"]
    service.worker.start()
    waited = [admin.wait(job_id, timeout=300.0) for job_id in (high_id, *low_ids)]
    priority_order = all(
        waited[0]["started_at"] <= later["started_at"] for later in waited[1:]
    )

    # Drain the quota/rate probe backlog so the service ends idle.
    for snap in admin.jobs():
        if snap["status"] not in ("done", "failed", "cancelled"):
            admin.wait(snap["job_id"], timeout=300.0)

    return {
        "quota_enforced": quota_enforced,
        "quota_retry_after_s": retry_after,
        "rate_limited": rate_limited,
        "rate_retry_after_s": rate_retry_after,
        "priority_order": priority_order,
    }


# ----------------------------------------------------------------------
# Optional soak: sustained submit/wait cycles, stability over time.
# ----------------------------------------------------------------------
def run_soak_phase(
    service: CampaignService,
    secrets: Dict[str, str],
    *,
    duration_s: float,
    clients: int = 4,
) -> Dict[str, object]:
    stop_at = time.monotonic() + duration_s
    cycles = [0] * clients
    errors: List[str] = []

    def one_client(c: int) -> None:
        client = ServiceClient(service.url, token=secrets[f"client-{c}"])
        i = 0
        while time.monotonic() < stop_at:
            spec = fast_spec(f"soak-c{c}-i{i}")
            try:
                job_id = client.submit(spec)["job"]["job_id"]
                final = client.wait(job_id, timeout=120.0)
                if final["status"] != "done":
                    errors.append(f"soak client-{c} cycle {i}: {final['status']}")
                    return
            except Exception as exc:  # noqa: BLE001 - collected, not raised mid-thread
                errors.append(f"soak client-{c} cycle {i}: {exc}")
                return
            cycles[c] += 1
            i += 1

    threads = [threading.Thread(target=one_client, args=(c,)) for c in range(clients)]
    begin = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - begin
    healthy = ServiceClient(service.url, token=secrets["admin"]).health()
    return {
        "duration_s": wall,
        "clients": clients,
        "cycles": sum(cycles),
        "cycles_per_s": sum(cycles) / wall if wall > 0 else float("inf"),
        "errors": errors,
        "service_healthy_after": healthy.get("status") == "ok",
    }


# ----------------------------------------------------------------------
def run_bench(
    *,
    clients: int = 8,
    jobs_per_client: int = 3,
    job_slots: int = 2,
    soak_seconds: float = 0.0,
    offline_checks: int = 2,
    root: Optional[Path] = None,
) -> Dict[str, object]:
    """Full harness: live service, load phase, guardrail phase, optional soak."""
    root = Path(root or tempfile.mkdtemp(prefix="repro-service-load-"))
    tokens_path = root / "tokens.json"
    secrets = write_tokens_file(tokens_path, max(clients, 4))
    service = CampaignService(
        root / "state",
        port=0,
        job_slots=job_slots,
        task_workers=1,
        cache_dir=root / "cache",
        tokens_file=tokens_path,
    )
    service.start()
    try:
        results: Dict[str, object] = {
            "bench": "service_load",
            "job_slots": job_slots,
        }
        results["load"] = run_load_phase(
            service,
            secrets,
            clients=clients,
            jobs_per_client=jobs_per_client,
            offline_checks=offline_checks,
            offline_dir=root / "offline",
        )
        results["guardrails"] = run_guardrail_phase(service, secrets)
        if soak_seconds > 0:
            results["soak"] = run_soak_phase(
                service, secrets, duration_s=soak_seconds, clients=min(clients, 4)
            )
        results["metrics"] = scrape_metrics(service, secrets)
        return results
    finally:
        service.stop()


def scrape_metrics(
    service: CampaignService, secrets: Dict[str, str]
) -> Dict[str, float]:
    """End-of-run ``/metricsz`` snapshot: the series a dashboard would chart.

    Scraped through the admin token (the endpoint is admin-only under auth)
    and filtered to the aggregate series so the JSON stays diffable — the
    per-principal counters vary with ``--clients``.
    """
    parsed = parse_prometheus(
        ServiceClient(service.url, token=secrets["admin"]).metrics()
    )
    keep = (
        "repro_service_jobs{",
        "repro_service_jobs_finished_total{",
        "repro_service_claims_total",
        "repro_service_tasks_total{",
        "repro_service_job_queue_wait_seconds_count",
        "repro_service_job_run_seconds_count",
        "repro_service_event_feed_depth",
        "repro_service_worker_slots",
    )
    return {
        series: value
        for series, value in sorted(parsed.items())
        if series.startswith(keep)
    }


def check_results(results: Dict[str, object], *, strict: bool) -> List[str]:
    """Invariant failures (always) + throughput-floor failures (strict)."""
    failures: List[str] = []
    load = results["load"]
    for name, ok in load["invariants"].items():  # type: ignore[index]
        if not ok:
            failures.append(f"load invariant violated: {name}")
    for name, ok in results["guardrails"].items():  # type: ignore[union-attr]
        if isinstance(ok, bool) and not ok:
            failures.append(f"guardrail invariant violated: {name}")
    p95 = load["submit_latency_s"]["p95"]  # type: ignore[index]
    if not p95 < MAX_P95_SUBMIT_S:
        failures.append(f"p95 submit latency {p95:.3f}s >= {MAX_P95_SUBMIT_S}s")
    soak = results.get("soak")
    if soak and (soak["errors"] or not soak["service_healthy_after"]):
        failures.append(f"soak failures: {soak['errors'][:3]}")
    if strict:
        jobs_per_s = load["jobs_per_s"]  # type: ignore[index]
        if jobs_per_s < STRICT_MIN_JOBS_PER_S:
            failures.append(
                f"throughput {jobs_per_s:.2f} jobs/s < {STRICT_MIN_JOBS_PER_S}"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--jobs-per-client", type=int, default=3)
    parser.add_argument("--job-slots", type=int, default=2)
    parser.add_argument("--offline-checks", type=int, default=2)
    parser.add_argument("--soak-seconds", type=float, default=0.0)
    parser.add_argument("--out", type=Path, default=RESULT_PATH)
    args = parser.parse_args(argv)

    results = run_bench(
        clients=args.clients,
        jobs_per_client=args.jobs_per_client,
        job_slots=args.job_slots,
        soak_seconds=args.soak_seconds,
        offline_checks=args.offline_checks,
    )
    load = results["load"]
    latency = load["submit_latency_s"]  # type: ignore[index]
    print(
        f"service load: {load['total_jobs']} job(s) from {load['clients']} "  # type: ignore[index]
        f"client(s) in {load['wall_s']:.2f}s "  # type: ignore[index]
        f"({load['jobs_per_s']:.1f} jobs/s)"  # type: ignore[index]
    )
    print(
        f"submit latency: p50 {latency['p50'] * 1000:.1f}ms  "
        f"p95 {latency['p95'] * 1000:.1f}ms  max {latency['max'] * 1000:.1f}ms"
    )
    print(f"guardrails: {results['guardrails']}")
    if "soak" in results:
        soak = results["soak"]
        print(
            f"soak: {soak['cycles']} cycle(s) over {soak['duration_s']:.1f}s, "
            f"{len(soak['errors'])} error(s)"
        )
    args.out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"results -> {args.out}")

    failures = check_results(
        results, strict=os.environ.get("REPRO_BENCH_STRICT") == "1"
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
