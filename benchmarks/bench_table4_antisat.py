"""Table IV — GNNUnlock on Anti-SAT (per-benchmark results).

For every attacked benchmark: GNN accuracy, per-class precision / recall /
F1 (AN = Anti-SAT node, DN = design node), the misclassified-node breakdown,
and the removal success after post-processing.  The attacks run as one
campaign through :mod:`repro.runner` (parallel workers, cached datasets and
models).
"""

import pytest

from benchmarks.common import (
    attack_config,
    bench_suites,
    emit,
    iscas_benchmarks,
    run_bench_campaign,
)
from repro.runner import CampaignSpec, paper_table


def _run_table4() -> str:
    spec = CampaignSpec(
        name="table4",
        schemes=("antisat",),
        suites=tuple(bench_suites()),
        config=attack_config(),
    )
    records = run_bench_campaign(spec)
    return paper_table(records, class_order=("AN", "DN"))


@pytest.mark.benchmark(group="table4")
def test_table4_antisat(benchmark):
    table = benchmark.pedantic(_run_table4, rounds=1, iterations=1)
    emit("table4_antisat", table)
    # Shape check: every attacked design is fully recovered after
    # post-processing, as in the paper.
    assert table.count("100.00") >= len(iscas_benchmarks())
