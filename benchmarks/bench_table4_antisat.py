"""Table IV — GNNUnlock on Anti-SAT (per-benchmark results).

For every attacked benchmark: GNN accuracy, per-class precision / recall /
F1 (AN = Anti-SAT node, DN = design node), the misclassified-node breakdown,
and the removal success after post-processing.
"""

import pytest

from benchmarks.common import PROFILE, attack_config, emit, iscas_benchmarks, itc_benchmarks
from repro.core import (
    GnnUnlockAttack,
    build_dataset,
    format_percent,
    format_table,
    generate_instances,
)


def _attack_suite(benchmarks, key_sizes, config):
    instances = generate_instances(
        "antisat", benchmarks, key_sizes=key_sizes, config=config
    )
    dataset = build_dataset(instances)
    attack = GnnUnlockAttack(dataset, config=config)
    rows = []
    for target in benchmarks:
        outcome = attack.attack(target)
        an = outcome.gnn_report.per_class["AN"]
        dn = outcome.gnn_report.per_class["DN"]
        rows.append(
            [
                target,
                len(outcome.instances),
                format_percent(outcome.gnn_accuracy),
                format_percent(an.precision),
                format_percent(dn.precision),
                format_percent(an.recall),
                format_percent(dn.recall),
                format_percent(an.f1),
                format_percent(dn.f1),
                outcome.gnn_report.misclassification_summary(),
                format_percent(outcome.removal_success_rate),
            ]
        )
    return rows


def _run_table4() -> str:
    config = attack_config()
    rows = _attack_suite(iscas_benchmarks(), config.iscas_key_sizes, config)
    if itc_benchmarks():
        rows += _attack_suite(itc_benchmarks(), config.itc_key_sizes, config)
    return format_table(
        [
            "Test", "#TestGraphs", "GNN Acc. (%)",
            "Prec AN (%)", "Prec DN (%)", "Rec AN (%)", "Rec DN (%)",
            "F1 AN (%)", "F1 DN (%)", "#MN", "Removal Success (%)",
        ],
        rows,
    )


@pytest.mark.benchmark(group="table4")
def test_table4_antisat(benchmark):
    table = benchmark.pedantic(_run_table4, rounds=1, iterations=1)
    emit("table4_antisat", table)
    # Shape check: every attacked design is fully recovered after
    # post-processing, as in the paper.
    assert table.count("100.00") >= len(iscas_benchmarks())
