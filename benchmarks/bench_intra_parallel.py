"""Microbenchmark for the intra-task parallelism layer (``repro.parallel``).

Three hot paths, each measured at intra-worker budgets of 1 / 2 / 4 against
the *pre-refactor serial implementation* (the per-node Python walk loop, and
the monolithic single-query miter):

* **sampling + normalisation** — GraphSAINT sampler construction (the
  normalisation pre-sampling phase) plus mini-batch throughput,
* **epoch time** — GNN training epochs with and without the prefetching
  sampler pipeline (``TrainingHistory.sample_wait_s`` shows how long the
  training step actually blocked on batch construction),
* **equivalence-check latency** — multi-output combinational equivalence,
  monolithic miter vs per-output cone shards on the pool.

Emits ``BENCH_intra_parallel.json`` next to the repository root so successive
PRs can track the perf trajectory, and prints a human-readable summary.
Worker counts above the machine's core count still measure correctly — the
shard/vectorisation wins are algorithmic, the pool wins scale with cores.

The speedup floors (2x sampling, 1.5x equivalence, at 4 workers vs the
pre-refactor serial implementations) are recorded in the JSON either way;
the exit code only enforces them under ``REPRO_BENCH_STRICT=1`` — CI runs
report-only because sub-100ms wall-clock ratios on shared runners are too
noisy to gate a push on (the determinism suites are the correctness gate).

Run directly::

    PYTHONPATH=src python benchmarks/bench_intra_parallel.py                  # report
    REPRO_BENCH_STRICT=1 PYTHONPATH=src python benchmarks/bench_intra_parallel.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np
import scipy.sparse as sp

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.benchgen import RandomLogicSpec, generate_random_circuit  # noqa: E402
from repro.gnn import GnnConfig, GraphData, RandomWalkSampler, train_node_classifier  # noqa: E402
from repro.netlist.circuit import Circuit  # noqa: E402
from repro.parallel import WorkerPool  # noqa: E402
from repro.sat import check_equivalence  # noqa: E402
from repro.synth.decompose import decompose_to_primitives  # noqa: E402

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_intra_parallel.json"
WORKER_COUNTS = (1, 2, 4)


# ----------------------------------------------------------------------
# Workload construction
# ----------------------------------------------------------------------
def _sampler_graph(n_nodes: int = 30_000, degree: int = 6, seed: int = 0) -> GraphData:
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(n_nodes), degree)
    cols = rng.integers(0, n_nodes, n_nodes * degree)
    data = np.ones(rows.size)
    adj = sp.csr_matrix((data, (rows, cols)), shape=(n_nodes, n_nodes))
    adj = adj + adj.T
    adj.data[:] = 1
    return GraphData(
        adjacency=adj,
        features=rng.normal(size=(n_nodes, 8)),
        labels=rng.integers(0, 2, n_nodes),
        train_mask=np.ones(n_nodes, bool),
        val_mask=np.zeros(n_nodes, bool),
        test_mask=np.zeros(n_nodes, bool),
    )


def _legacy_normalisation_walks(
    graph: GraphData, n_roots: int, walk_length: int, n_samples: int, seed: int
) -> float:
    """The pre-refactor per-node Python loop, timed over the whole phase."""
    adjacency = sp.csr_matrix(graph.adjacency)
    train_nodes = np.flatnonzero(graph.train_mask)
    rng = np.random.default_rng(seed)
    counts = np.zeros(graph.n_nodes)
    indptr, indices = adjacency.indptr, adjacency.indices
    started = time.perf_counter()
    for _ in range(n_samples):
        roots = rng.choice(train_nodes, size=min(n_roots, train_nodes.size), replace=True)
        visited = set(int(r) for r in roots)
        current = roots.copy()
        for _ in range(walk_length):
            next_nodes = []
            for node in current:
                start, end = indptr[node], indptr[node + 1]
                if end > start:
                    nxt = int(indices[rng.integers(start, end)])
                else:
                    nxt = int(node)
                next_nodes.append(nxt)
                visited.add(nxt)
            current = np.array(next_nodes)
        counts[np.array(sorted(visited))] += 1
    return time.perf_counter() - started


def _multi_block_circuit(n_blocks: int = 8, seed: int = 0) -> Circuit:
    """One circuit made of independent random blocks (one output each).

    Disjoint per-output cones are the sharding-friendly shape: every shard
    is a small self-contained proof instead of a slice of one big miter.
    """
    merged = Circuit("bench_blocks")
    for block in range(n_blocks):
        spec = RandomLogicSpec(
            name=f"blk{block}", n_inputs=14, n_outputs=1, n_gates=160,
            seed=seed * 101 + block,
        )
        sub = generate_random_circuit(spec)
        rename = {net: f"b{block}_{net}" for net in
                  list(sub.inputs) + list(sub.gates)}
        for net in sub.inputs:
            merged.add_input(rename[net])
        for name in sub.topological_order():
            gate = sub.gate(name)
            merged.add_gate(
                rename[name], gate.cell, [rename[i] for i in gate.inputs]
            )
        for po in sub.outputs:
            merged.add_output(rename[po])
    return merged


# ----------------------------------------------------------------------
# Phases
# ----------------------------------------------------------------------
def bench_sampling() -> dict:
    graph = _sampler_graph()
    n_roots, walk_length, n_samples = 2000, 3, 64

    serial_loop_s = _legacy_normalisation_walks(
        graph, n_roots, walk_length, n_samples, seed=7
    )

    phase_s = {}
    for workers in WORKER_COUNTS:
        pool = None if workers == 1 else WorkerPool("process", max_workers=workers)
        started = time.perf_counter()
        sampler = RandomWalkSampler(
            graph,
            n_roots=n_roots,
            walk_length=walk_length,
            n_norm_samples=n_samples,
            rng=np.random.default_rng(7),
            pool=pool,
        )
        phase_s[workers] = time.perf_counter() - started
        if pool is not None:
            pool.shutdown()

    # Mini-batch throughput of the vectorised sampler (sequential by design).
    sampler = RandomWalkSampler(
        graph, n_roots=n_roots, walk_length=walk_length, n_norm_samples=4,
        rng=np.random.default_rng(7),
    )
    started = time.perf_counter()
    n_batches = 20
    for _ in range(n_batches):
        sampler.sample()
    sample_s = (time.perf_counter() - started) / n_batches

    return {
        "graph_nodes": graph.n_nodes,
        "n_roots": n_roots,
        "walk_length": walk_length,
        "n_norm_samples": n_samples,
        "serial_loop_phase_s": serial_loop_s,
        "phase_s_by_workers": phase_s,
        "batch_sample_s": sample_s,
        "batches_per_s": 1.0 / sample_s,
        "speedup_w4_vs_serial": serial_loop_s / phase_s[4],
    }


def bench_training() -> dict:
    graph = _sampler_graph(n_nodes=4000, degree=5, seed=3)
    config = GnnConfig(
        n_features=8, n_classes=2, hidden_dim=32, epochs=30,
        root_nodes=600, eval_every=10, seed=0,
    )
    out = {}
    for workers in WORKER_COUNTS:
        pool = None if workers == 1 else WorkerPool("thread", max_workers=workers)
        _, history = train_node_classifier(
            graph, config, rng=np.random.default_rng(1), pool=pool
        )
        out[workers] = {
            "epoch_s": history.train_time_s / max(history.epochs_run, 1),
            "sample_wait_s": history.sample_wait_s,
            "epochs_run": history.epochs_run,
        }
        if pool is not None:
            pool.shutdown()
    return out


def bench_equivalence() -> dict:
    original = _multi_block_circuit()
    restructured, _ = decompose_to_primitives(original)

    started = time.perf_counter()
    mono = check_equivalence(original, restructured, method="sat")
    serial_s = time.perf_counter() - started
    assert mono.equivalent and mono.shards == 0

    latency_s = {}
    for workers in WORKER_COUNTS:
        backend = "serial" if workers == 1 else "process"
        pool = WorkerPool(backend, max_workers=workers)
        started = time.perf_counter()
        sharded = check_equivalence(
            original, restructured, method="sat", pool=pool
        )
        latency_s[workers] = time.perf_counter() - started
        assert sharded.equivalent and sharded.shards == len(original.outputs)
        pool.shutdown()

    return {
        "outputs": len(original.outputs),
        "gates": len(original.gates),
        "serial_monolithic_s": serial_s,
        "sharded_s_by_workers": latency_s,
        "speedup_w4_vs_serial": serial_s / latency_s[4],
    }


def main() -> int:
    report = {
        "bench": "intra_parallel",
        "sampling": bench_sampling(),
        "training_epoch": bench_training(),
        "equivalence": bench_equivalence(),
    }
    sampling = report["sampling"]
    equivalence = report["equivalence"]
    report["acceptance"] = {
        "sampling_speedup_w4": sampling["speedup_w4_vs_serial"],
        "sampling_target": 2.0,
        "equivalence_speedup_w4": equivalence["speedup_w4_vs_serial"],
        "equivalence_target": 1.5,
        "pass": bool(
            sampling["speedup_w4_vs_serial"] >= 2.0
            and equivalence["speedup_w4_vs_serial"] >= 1.5
        ),
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(f"== sampling+normalisation ({sampling['graph_nodes']} nodes) ==")
    print(f"  pre-refactor loop : {sampling['serial_loop_phase_s']:.3f} s")
    for workers, seconds in sampling["phase_s_by_workers"].items():
        print(f"  {workers} intra-worker(s) : {seconds:.3f} s")
    print(f"  speedup @4 workers: {sampling['speedup_w4_vs_serial']:.1f}x (target 2x)")
    print("== training epoch ==")
    for workers, row in report["training_epoch"].items():
        print(
            f"  {workers} intra-worker(s) : {row['epoch_s']*1e3:.1f} ms/epoch, "
            f"sample wait {row['sample_wait_s']:.3f} s"
        )
    print(f"== equivalence ({equivalence['outputs']} outputs) ==")
    print(f"  monolithic serial : {equivalence['serial_monolithic_s']:.3f} s")
    for workers, seconds in equivalence["sharded_s_by_workers"].items():
        print(f"  {workers} intra-worker(s) : {seconds:.3f} s")
    print(
        f"  speedup @4 workers: {equivalence['speedup_w4_vs_serial']:.1f}x (target 1.5x)"
    )
    print(f"\nwrote {RESULT_PATH}")
    if os.environ.get("REPRO_BENCH_STRICT", "").strip() in ("1", "true", "yes"):
        return 0 if report["acceptance"]["pass"] else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
