"""Microbenchmark for the attack hot paths: simulation, SAT, CNF encoding.

Three raw-speed workloads, each checked for correctness before timing is
reported:

* **packed simulation** — bit-parallel (uint64-lane) vs dense engine on the
  largest benchgen profile (b17_C), asserting bit-identical outputs.  This
  is the oracle-query / signal-probability / labeling hot loop.
* **incremental SAT** — model enumeration with blocking clauses on one live
  solver (watches + learned clauses retained) vs a fresh solver per query,
  asserting both enumerate the same solution count to exhaustion.
* **encode cache** — memoised Tseitin template replay vs the direct netlist
  walk, in the miter shape real callers use (same circuit encoded twice),
  asserting byte-identical clause streams.

Emits ``BENCH_hot_paths.json`` next to the repository root so successive PRs
can track the perf trajectory, and prints a human-readable summary.

The speedup floors (5x packed simulation, 1.5x incremental enumeration) are
recorded in the JSON either way; the exit code only enforces them under
``REPRO_BENCH_STRICT=1`` — CI runs report-only because wall-clock ratios on
shared runners are noisy (the bit-identical asserts are the correctness
gate and always enforced).

Run directly::

    PYTHONPATH=src python benchmarks/bench_hot_paths.py                  # report
    REPRO_BENCH_STRICT=1 PYTHONPATH=src python benchmarks/bench_hot_paths.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.benchgen import RandomLogicSpec, generate_random_circuit, get_benchmark  # noqa: E402
from repro.netlist import random_patterns, simulate_patterns  # noqa: E402
from repro.sat import CNF, SatSolver, solve  # noqa: E402
from repro.sat.tseitin import CircuitEncoder, clear_encoding_cache  # noqa: E402

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_hot_paths.json"

SIM_PROFILE = "b17_C"  # largest benchgen profile
SIM_PATTERNS_LOG2 = 17
REPEATS = 3


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


# ----------------------------------------------------------------------
# Phase 1: packed vs dense simulation
# ----------------------------------------------------------------------
def bench_packed_sim() -> dict:
    circuit = get_benchmark(SIM_PROFILE)
    n_patterns = 1 << SIM_PATTERNS_LOG2
    patterns = random_patterns(
        len(circuit.all_inputs), n_patterns, np.random.default_rng(1)
    )
    # Warm both engines (cell safety proofs, simulator plan) outside timing.
    simulate_patterns(circuit, patterns[:256], engine="dense")
    simulate_patterns(circuit, patterns[:256], engine="packed")

    dense_s, dense_out = _best_of(
        REPEATS, lambda: simulate_patterns(circuit, patterns, engine="dense")
    )
    packed_s, packed_out = _best_of(
        REPEATS, lambda: simulate_patterns(circuit, patterns, engine="packed")
    )
    assert np.array_equal(dense_out, packed_out), "engines disagree"

    return {
        "profile": SIM_PROFILE,
        "gates": len(circuit.gates),
        "inputs": len(circuit.all_inputs),
        "n_patterns": n_patterns,
        "dense_s": dense_s,
        "packed_s": packed_s,
        "dense_patterns_per_s": n_patterns / dense_s,
        "packed_patterns_per_s": n_patterns / packed_s,
        "speedup": dense_s / packed_s,
        "bit_identical": True,
    }


# ----------------------------------------------------------------------
# Phase 2: incremental vs fresh-solver enumeration
# ----------------------------------------------------------------------
def _enumeration_instance():
    spec = RandomLogicSpec(
        name="enum", n_inputs=16, n_outputs=1, n_gates=1500, seed=11
    )
    circuit = generate_random_circuit(spec)
    encoder = CircuitEncoder()
    var_of = encoder.encode(circuit)
    cnf = encoder.cnf
    # Enumerate every projection onto the first 6 inputs (exactly 64): each
    # query must extend the projection through the full circuit formula, and
    # the final query proves exhaustion (UNSAT).
    block_vars = [var_of[net] for net in list(circuit.inputs)[:6]]
    return cnf, block_vars


def _enumerate(cnf: CNF, block_vars, *, incremental: bool) -> tuple[int, float]:
    count = 0
    started = time.perf_counter()
    solver = SatSolver(cnf) if incremental else None
    while True:
        result = solver.solve() if incremental else solve(cnf)
        if not result.satisfiable:
            break
        count += 1
        blocking = [
            -v if result.value(v) else v for v in block_vars
        ]
        cnf.add_clause(blocking)
        if incremental:
            solver.add_clause(blocking)
    return count, time.perf_counter() - started


def bench_incremental_sat() -> dict:
    cnf_fresh, blocks_fresh = _enumeration_instance()
    fresh_count, fresh_s = _enumerate(cnf_fresh, blocks_fresh, incremental=False)

    cnf_inc, blocks_inc = _enumeration_instance()
    inc_count, inc_s = _enumerate(cnf_inc, blocks_inc, incremental=True)

    # Enumeration to exhaustion counts every distinct projected assignment:
    # both strategies must agree regardless of which models they visit first.
    assert fresh_count == inc_count, (fresh_count, inc_count)

    return {
        "cnf_vars": cnf_fresh.n_vars,
        "cnf_clauses": cnf_fresh.n_clauses,
        "projected_vars": len(blocks_fresh),
        "solutions": inc_count,
        "fresh_total_s": fresh_s,
        "incremental_total_s": inc_s,
        "fresh_s_per_query": fresh_s / (fresh_count + 1),
        "incremental_s_per_query": inc_s / (inc_count + 1),
        "speedup": fresh_s / inc_s,
        "counts_identical": True,
    }


# ----------------------------------------------------------------------
# Phase 3: memoised encode vs direct walk (miter shape)
# ----------------------------------------------------------------------
def _encode_miter(circuit, *, memo: bool):
    cnf = CNF()
    encoder = CircuitEncoder(cnf)
    encode = encoder.encode if memo else encoder._encode_direct
    left = encode(circuit, prefix="l_")
    encode(
        circuit,
        prefix="r_",
        share_nets={net: left[net] for net in circuit.inputs},
    )
    return cnf


def bench_encode_cache() -> dict:
    circuit = get_benchmark(SIM_PROFILE)

    direct_s, direct_cnf = _best_of(
        REPEATS, lambda: _encode_miter(circuit, memo=False)
    )
    clear_encoding_cache()
    cold_s, _ = _best_of(1, lambda: _encode_miter(circuit, memo=True))
    warm_s, warm_cnf = _best_of(
        REPEATS, lambda: _encode_miter(circuit, memo=True)
    )
    assert warm_cnf.clauses == direct_cnf.clauses, "cached encode diverged"
    assert warm_cnf.names == direct_cnf.names

    return {
        "profile": SIM_PROFILE,
        "gates": len(circuit.gates),
        "miter_clauses": direct_cnf.n_clauses,
        "direct_s": direct_s,
        "cold_cached_s": cold_s,
        "warm_cached_s": warm_s,
        "speedup_warm": direct_s / warm_s,
        "byte_identical": True,
    }


def main() -> int:
    report = {
        "bench": "hot_paths",
        "packed_sim": bench_packed_sim(),
        "incremental_sat": bench_incremental_sat(),
        "encode_cache": bench_encode_cache(),
    }
    sim = report["packed_sim"]
    inc = report["incremental_sat"]
    enc = report["encode_cache"]
    report["acceptance"] = {
        "packed_sim_speedup": sim["speedup"],
        "packed_sim_target": 5.0,
        "incremental_sat_speedup": inc["speedup"],
        "incremental_sat_target": 1.5,
        "pass": bool(sim["speedup"] >= 5.0 and inc["speedup"] >= 1.5),
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(
        f"== packed simulation ({sim['profile']}, {sim['gates']} gates, "
        f"2^{SIM_PATTERNS_LOG2} patterns) =="
    )
    print(f"  dense engine  : {sim['dense_s']:.3f} s "
          f"({sim['dense_patterns_per_s']:.0f} patterns/s)")
    print(f"  packed engine : {sim['packed_s']:.3f} s "
          f"({sim['packed_patterns_per_s']:.0f} patterns/s)")
    print(f"  speedup       : {sim['speedup']:.1f}x (target 5x), bit-identical")
    print(
        f"== incremental SAT enumeration ({inc['cnf_clauses']} clauses, "
        f"{inc['solutions']} solutions) =="
    )
    print(f"  fresh solver per query : {inc['fresh_total_s']:.3f} s total")
    print(f"  one incremental solver : {inc['incremental_total_s']:.3f} s total")
    print(f"  speedup                : {inc['speedup']:.1f}x (target 1.5x)")
    print(f"== encode cache (miter over {enc['profile']}) ==")
    print(f"  direct walk   : {enc['direct_s']*1e3:.1f} ms")
    print(f"  cold (build)  : {enc['cold_cached_s']*1e3:.1f} ms")
    print(f"  warm (replay) : {enc['warm_cached_s']*1e3:.1f} ms "
          f"({enc['speedup_warm']:.1f}x vs direct), byte-identical")
    print(f"\nwrote {RESULT_PATH}")
    if os.environ.get("REPRO_BENCH_STRICT", "").strip() in ("1", "true", "yes"):
        return 0 if report["acceptance"]["pass"] else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
