"""Ablation — GNN-only accuracy vs. accuracy after post-processing.

Section V-B/V-C of the paper reports the GNN's own accuracy (99.9x % on
average) and states that post-processing rectifies the remaining
misclassifications, reaching 100% for all tested benchmarks.  The harness
runs every attack twice through the campaign runner's ``postprocessing``
grid axis — once with and once without rectification.  Both variants share
one trained (cached) model, so the ablation trains each classifier once.
"""

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import pytest

from benchmarks.common import attack_config, emit, iscas_benchmarks, run_bench_campaign
from repro.core import AttackConfig, format_percent, format_table
from repro.runner import CampaignSpec


def ablation_specs(
    config: AttackConfig,
    *,
    benchmarks: Optional[Sequence[str]] = None,
) -> List[CampaignSpec]:
    """Anti-SAT and SFLL-HD2 attacks, each with and without post-processing."""
    benchmarks = tuple(benchmarks if benchmarks is not None else iscas_benchmarks())
    return [
        CampaignSpec(
            name="ablation",
            schemes=("antisat", "sfll:2@GEN65"),
            benchmarks=benchmarks,
            postprocessing=(True, False),
            config=config,
        )
    ]


def render_ablation(records: Sequence[Mapping]) -> str:
    by: Dict[Tuple[str, str, bool], Mapping] = {
        (str(r["scheme"]), str(r["target"]), bool(r["apply_postprocessing"])): r
        for r in records
    }
    rows = []
    for record in records:
        if not record["apply_postprocessing"]:
            continue
        scheme, target = str(record["scheme"]), str(record["target"])
        without = by[(scheme, target, False)]
        rows.append(
            [
                f"{scheme}/{target}",
                format_percent(float(record["gnn_accuracy"])),
                format_percent(float(record["post_accuracy"])),
                format_percent(float(without["removal_success_rate"])),
                format_percent(float(record["removal_success_rate"])),
            ]
        )
    return format_table(
        ["Attack", "GNN Acc. (%)", "Post-processed Acc. (%)",
         "Removal w/o post-proc (%)", "Removal w/ post-proc (%)"],
        rows,
    )


def _run_ablation() -> str:
    records = run_bench_campaign(ablation_specs(attack_config()), name="ablation")
    return render_ablation(records)


@pytest.mark.benchmark(group="ablation")
def test_ablation_postprocessing(benchmark):
    table = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    emit("ablation_postprocessing", table)
    assert "Post-processed" in table
