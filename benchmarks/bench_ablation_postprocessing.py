"""Ablation — GNN-only accuracy vs. accuracy after post-processing.

Section V-B/V-C of the paper reports the GNN's own accuracy (99.9x % on
average) and states that post-processing rectifies the remaining
misclassifications, reaching 100% for all tested benchmarks.  This harness
measures both numbers on the same attacks.
"""

import numpy as np
import pytest

from benchmarks.common import attack_config, emit, iscas_benchmarks
from repro.core import (
    GnnUnlockAttack,
    build_dataset,
    format_percent,
    format_table,
    generate_instances,
)


def _run_ablation() -> str:
    config = attack_config()
    benchmarks = iscas_benchmarks()
    rows = []
    for scheme, h, tech in (("antisat", None, "BENCH8"), ("sfll", 2, "GEN65")):
        instances = generate_instances(
            scheme, benchmarks, key_sizes=config.iscas_key_sizes, h=h,
            config=config, technology=tech,
        )
        dataset = build_dataset(instances)
        attack = GnnUnlockAttack(dataset, config=config)
        for target in benchmarks:
            with_pp = attack.attack(target)
            without_pp = attack.attack(
                target, apply_postprocessing=False, verify_removal=True
            )
            rows.append(
                [
                    f"{scheme}/{target}",
                    format_percent(with_pp.gnn_accuracy),
                    format_percent(with_pp.post_accuracy),
                    format_percent(without_pp.removal_success_rate),
                    format_percent(with_pp.removal_success_rate),
                ]
            )
    return format_table(
        ["Attack", "GNN Acc. (%)", "Post-processed Acc. (%)",
         "Removal w/o post-proc (%)", "Removal w/ post-proc (%)"],
        rows,
    )


@pytest.mark.benchmark(group="ablation")
def test_ablation_postprocessing(benchmark):
    table = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    emit("ablation_postprocessing", table)
    assert "Post-processed" in table
