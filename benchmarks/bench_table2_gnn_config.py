"""Table II — GNN configuration and sampling details.

The harness echoes the model configuration (architecture shapes, aggregation,
optimiser, sampler) and runs one sanity training job — scheduled as a
one-task campaign through :mod:`repro.runner` — to confirm the configuration
trains, reporting the measured epoch count and throughput from the stored
task record.
"""

from typing import Mapping, Sequence

import pytest

from benchmarks.common import attack_config, emit, run_bench_campaign
from repro.core import AttackConfig, format_table
from repro.gnn import GnnConfig
from repro.runner import CampaignSpec

#: GnnConfig fields echoed in the Paper / This-run comparison.
_ECHOED_FIELDS = (
    "hidden_dim", "dropout", "learning_rate", "epochs",
    "root_nodes", "walk_length", "sampler",
)


def table2_spec(
    config: AttackConfig,
    *,
    benchmarks: Sequence[str] = ("c2670", "c3540", "c5315"),
    target: str = "c3540",
    key_size: int = 8,
) -> CampaignSpec:
    """The sanity-training campaign: one Anti-SAT task on a tiny dataset."""
    return CampaignSpec(
        name="table2",
        schemes=("antisat",),
        benchmarks=tuple(benchmarks),
        targets=(target,),
        key_size_groups=((key_size,),),
        config=config,
    )


def render_table2(records: Sequence[Mapping], config: AttackConfig) -> str:
    """Configuration echo plus the sanity-run numbers from the task record."""
    paper = GnnConfig(n_features=34, n_classes=3, hidden_dim=512, epochs=2000)
    used = GnnConfig(
        n_features=34,
        n_classes=3,
        **{name: getattr(config.gnn, name) for name in _ECHOED_FIELDS},
    ).describe()
    rows = [
        [key, str(value), str(used[key])] for key, value in paper.describe().items()
    ]
    record = records[0]
    rows.append(["Sanity-run epochs", "-", str(record["epochs_run"])])
    rows.append(
        ["Sanity-run train time (s)", "-", f"{float(record['train_time_s']):.2f}"]
    )
    return format_table(["Parameter", "Paper", "This run"], rows)


def _run_table2() -> str:
    config = attack_config()
    records = run_bench_campaign(table2_spec(config))
    return render_table2(records, config)


@pytest.mark.benchmark(group="table2")
def test_table2_gnn_config(benchmark):
    table = benchmark.pedantic(_run_table2, rounds=1, iterations=1)
    emit("table2_gnn_config", table)
    assert "Mean with concatenation" in table
