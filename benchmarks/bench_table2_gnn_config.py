"""Table II — GNN configuration and sampling details.

The harness echoes the model configuration (architecture shapes, aggregation,
optimiser, sampler) and runs one sanity training job to confirm the
configuration trains, reporting the measured epoch throughput.
"""

import numpy as np
import pytest

from benchmarks.common import attack_config, emit
from repro.core import AttackConfig, GnnUnlockAttack, build_dataset, format_table, generate_instances
from repro.gnn import GnnConfig


def _run_table2() -> str:
    config = attack_config()
    paper = GnnConfig(n_features=34, n_classes=3, hidden_dim=512, epochs=2000)
    used = config.gnn

    rows = []
    for key, value in paper.describe().items():
        rows.append([key, str(value), str(GnnConfig(
            n_features=34, n_classes=3, **{
                k: getattr(used, k) for k in (
                    "hidden_dim", "dropout", "learning_rate", "epochs",
                    "root_nodes", "walk_length", "sampler",
                )
            }).describe()[key])])

    # Sanity training run on a tiny Anti-SAT dataset.
    instances = generate_instances(
        "antisat", ["c2670", "c3540", "c5315"], key_sizes=(8,), config=config
    )
    dataset = build_dataset(instances)
    outcome = GnnUnlockAttack(dataset, config=config).attack("c3540")
    rows.append(["Sanity-run epochs", "-", str(outcome.history.epochs_run)])
    rows.append(["Sanity-run train time (s)", "-", f"{outcome.history.train_time_s:.2f}"])
    return format_table(["Parameter", "Paper", "This run"], rows)


@pytest.mark.benchmark(group="table2")
def test_table2_gnn_config(benchmark):
    table = benchmark.pedantic(_run_table2, rounds=1, iterations=1)
    emit("table2_gnn_config", table)
    assert "Mean with concatenation" in table
