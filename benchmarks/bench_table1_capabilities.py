"""Table I — capabilities offered by oracle-less attacks.

The paper's Table I is a qualitative matrix: which attacks cope with
different circuit formats, different locking schemes and different parameter
settings.  The harness measures it: each attack is run on bench-format and
synthesised netlists, on Anti-SAT / TTLock / SFLL-HD2, and on the K/h = 2
corner-case parameters; a capability is "yes" when the attack succeeds on
every instance it claims to support.
"""

import numpy as np
import pytest

from benchmarks.common import attack_config, emit
from repro.baselines import fall_attack, sfll_hd_unlocked_attack, sps_attack
from repro.benchgen import get_benchmark
from repro.core import (
    AttackConfig,
    GnnUnlockAttack,
    build_dataset,
    format_table,
    generate_instances,
)
from repro.locking import AntiSatLocking, SfllHdLocking, TTLockLocking
from repro.synth import SynthesisOptions, synthesize_locked


def _gnnunlock_capabilities(config: AttackConfig) -> dict:
    """GNNUnlock handles all three axes; measure it on a compact sweep."""
    outcomes = []
    for scheme, tech, h in (
        ("antisat", "BENCH8", None),
        ("ttlock", "GEN65", None),
        ("sfll", "GEN65", 2),
    ):
        instances = generate_instances(
            scheme,
            ["c2670", "c3540", "c5315", "c7552"],
            key_sizes=(8, 16),
            h=h,
            config=config,
            technology=tech,
        )
        dataset = build_dataset(instances)
        outcome = GnnUnlockAttack(dataset, config=config).attack("c7552")
        outcomes.append(outcome.removal_success_rate == 1.0)
    corner = generate_instances(
        "sfll", ["c2670", "c3540", "c5315", "c7552"], key_sizes=(16,), h=8,
        config=config,
    )
    corner_outcome = GnnUnlockAttack(build_dataset(corner), config=config).attack("c7552")
    return {
        "formats": outcomes[1] and outcomes[2],
        "schemes": all(outcomes),
        "parameters": corner_outcome.removal_success_rate == 1.0,
    }


def _run_table1() -> str:
    config = attack_config()
    rng = np.random.default_rng(1)
    circuit = get_benchmark("c7552")
    antisat = AntiSatLocking(16).lock(circuit.copy(), rng=rng)
    ttlock = TTLockLocking(16).lock(circuit.copy(), rng=rng)
    sfll2 = SfllHdLocking(16, 2).lock(circuit.copy(), rng=rng)
    corner = SfllHdLocking(16, 8).lock(circuit.copy(), rng=rng)
    sfll2_mapped = synthesize_locked(sfll2, SynthesisOptions(technology="GEN65"))

    def yesno(flag: bool) -> str:
        return "yes" if flag else "-"

    rows = []
    # SPS: Anti-SAT only, bench format only by construction of the tool.
    rows.append(
        ["SPS", yesno(False), yesno(False), yesno(sps_attack(antisat).success)]
    )
    # FALL: bench only, SFLL family only, restricted h.
    fall_formats = fall_attack(sfll2_mapped).success
    fall_schemes = fall_attack(ttlock).success and not fall_attack(antisat).success
    fall_params = fall_attack(sfll2).success and fall_attack(corner).success
    rows.append(["FALL", yesno(fall_formats), yesno(False), yesno(fall_params)])
    # SFLL-HD-Unlocked: bench only, SFLL family only, fails h<=4 and K/h=2.
    unlocked_params = (
        sfll_hd_unlocked_attack(sfll2).success
        and sfll_hd_unlocked_attack(corner).success
    )
    rows.append(["SFLL-HD-Unlocked", yesno(False), yesno(False), yesno(unlocked_params)])
    # GNNUnlock.
    caps = _gnnunlock_capabilities(config)
    rows.append(
        [
            "GNNUnlock",
            yesno(caps["formats"]),
            yesno(caps["schemes"]),
            yesno(caps["parameters"]),
        ]
    )
    return format_table(
        ["Attack", "Different Circuit Formats", "Different Locking Schemes",
         "Different Parameter Settings"],
        rows,
    )


@pytest.mark.benchmark(group="table1")
def test_table1_capabilities(benchmark):
    table = benchmark.pedantic(_run_table1, rounds=1, iterations=1)
    emit("table1_capabilities", table)
    assert "GNNUnlock" in table
