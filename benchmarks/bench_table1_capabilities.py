"""Table I — capabilities offered by oracle-less attacks.

The paper's Table I is a qualitative matrix: which attacks cope with
different circuit formats, different locking schemes and different parameter
settings.  The harness measures it through the campaign runner: one probe
campaign runs every baseline attack against every scheme variant (bench vs.
synthesised, the K/h = 2 corner case), one campaign runs GNNUnlock on the
same axes, and the yes/no matrix is derived from the stored task records —
a capability is "yes" when the attack succeeds on every instance the paper
claims it supports.
"""

from typing import Dict, List, Mapping, Sequence, Tuple

import pytest

from benchmarks.common import attack_config, emit, run_bench_campaign
from repro.core import AttackConfig, format_table
from repro.runner import CampaignSpec

#: Benchmark pool of the capability measurement; the last entry is attacked.
CAP_BENCHMARKS: Tuple[str, ...] = ("c2670", "c3540", "c5315", "c7552")


def table1_specs(
    config: AttackConfig,
    *,
    benchmarks: Sequence[str] = CAP_BENCHMARKS,
    probe_key: int = 16,
    main_keys: Sequence[int] = (8, 16),
) -> List[CampaignSpec]:
    """Campaigns covering Table I's three capability axes.

    ``probe_key`` is the key size of the single-design baseline probes; the
    K/h = 2 corner case uses ``h = probe_key // 2``.  ``main_keys`` is the
    key sweep of the GNNUnlock multi-scheme datasets.
    """
    benchmarks = tuple(benchmarks)
    target = benchmarks[-1]
    corner_h = probe_key // 2
    # One probe campaign per baseline attack, each restricted to the scheme
    # variants its Table I row actually reads (no wasted cartesian product).
    probe_fields = dict(
        benchmarks=(target,),
        targets=(target,),
        key_size_groups=((probe_key,),),
        config=config,
    )
    probes = [
        CampaignSpec(
            name="table1-probes",
            schemes=("antisat",),
            attacks=("sps",),
            **probe_fields,
        ),
        CampaignSpec(
            name="table1-probes",
            # bench + synthesised SFLL-HD2, and the K/h = 2 corner parameters
            # on which FALL reports zero keys.
            schemes=("sfll:2@BENCH8", "sfll:2@GEN65", f"sfll:{corner_h}@BENCH8"),
            attacks=("fall",),
            **probe_fields,
        ),
        CampaignSpec(
            name="table1-probes",
            schemes=("sfll:2@BENCH8", f"sfll:{corner_h}@BENCH8"),
            attacks=("sfll-hd-unlocked",),
            **probe_fields,
        ),
    ]
    gnn_main = CampaignSpec(
        name="table1-gnn",
        schemes=("antisat", "ttlock", "sfll:2@GEN65"),
        benchmarks=benchmarks,
        targets=(target,),
        key_size_groups=(tuple(main_keys),),
        config=config,
    )
    gnn_corner = CampaignSpec(
        name="table1-corner",
        schemes=(f"sfll:{corner_h}@BENCH8",),
        benchmarks=benchmarks,
        targets=(target,),
        key_size_groups=((probe_key,),),
        config=config,
    )
    return probes + [gnn_main, gnn_corner]


def render_table1(records: Sequence[Mapping]) -> str:
    """Derive the Table I yes/no matrix from stored task records."""
    by: Dict[tuple, Mapping] = {}
    for record in records:
        by[
            (record["attack"], record["scheme"], record.get("h"),
             record["technology"])
        ] = record

    # The corner campaign is the only bench-format SFLL GNNUnlock dataset, so
    # its h value identifies the corner probes too — no separate parameter
    # that could drift out of sync with table1_specs.
    corner_hs = {
        record.get("h")
        for record in records
        if record["attack"] == "gnnunlock"
        and record["scheme"] == "sfll"
        and record["technology"] == "BENCH8"
    }
    if len(corner_hs) != 1:
        raise ValueError(
            f"expected exactly one corner-case dataset, found h values "
            f"{sorted(corner_hs, key=str)}"
        )
    (corner_h,) = corner_hs

    def probe(attack: str, scheme: str, h, tech: str) -> bool:
        record = by.get((attack, scheme, h, tech), {})
        return bool(record.get("baseline_success"))

    def removed(scheme: str, h, tech: str) -> bool:
        record = by.get(("gnnunlock", scheme, h, tech), {})
        return float(record.get("removal_success_rate", 0.0)) == 1.0

    def yesno(flag: bool) -> str:
        return "yes" if flag else "-"

    rows = []
    # SPS: Anti-SAT only, bench format only by construction of the tool.
    rows.append(
        ["SPS", yesno(False), yesno(False),
         yesno(probe("sps", "antisat", None, "BENCH8"))]
    )
    # FALL: handles synthesised netlists, SFLL family only, restricted h.
    fall_formats = probe("fall", "sfll", 2, "GEN65")
    fall_params = (
        probe("fall", "sfll", 2, "BENCH8")
        and probe("fall", "sfll", corner_h, "BENCH8")
    )
    rows.append(["FALL", yesno(fall_formats), yesno(False), yesno(fall_params)])
    # SFLL-HD-Unlocked: bench only, SFLL family only.
    unlocked_params = (
        probe("sfll-hd-unlocked", "sfll", 2, "BENCH8")
        and probe("sfll-hd-unlocked", "sfll", corner_h, "BENCH8")
    )
    rows.append(
        ["SFLL-HD-Unlocked", yesno(False), yesno(False), yesno(unlocked_params)]
    )
    # GNNUnlock covers all three axes.
    formats = removed("ttlock", None, "GEN65") and removed("sfll", 2, "GEN65")
    schemes = formats and removed("antisat", None, "BENCH8")
    parameters = removed("sfll", corner_h, "BENCH8")
    rows.append(
        ["GNNUnlock", yesno(formats), yesno(schemes), yesno(parameters)]
    )
    return format_table(
        ["Attack", "Different Circuit Formats", "Different Locking Schemes",
         "Different Parameter Settings"],
        rows,
    )


def _run_table1() -> str:
    records = run_bench_campaign(table1_specs(attack_config()), name="table1")
    return render_table1(records)


@pytest.mark.benchmark(group="table1")
def test_table1_capabilities(benchmark):
    table = benchmark.pedantic(_run_table1, rounds=1, iterations=1)
    emit("table1_capabilities", table)
    assert "GNNUnlock" in table
