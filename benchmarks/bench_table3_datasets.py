"""Table III — summary of the generated datasets.

For every dataset row of the paper's Table III (scheme x suite x technology)
the harness generates the locked benchmarks and reports the number of
circuits, nodes, classes and the feature-vector length.
"""

import pytest

from benchmarks.common import PROFILE, attack_config, emit, itc_benchmarks
from repro.core import build_dataset, format_table, generate_instances


_ROWS = [
    # (label, scheme, benchmarks-kind, h, technology)
    ("Anti-SAT / ISCAS-85 / bench", "antisat", "iscas", None, "BENCH8"),
    ("Anti-SAT / ITC-99 / bench", "antisat", "itc", None, "BENCH8"),
    ("TTLock / ISCAS-85 / 65nm", "ttlock", "iscas", None, "GEN65"),
    ("TTLock / ITC-99 / 65nm", "ttlock", "itc", None, "GEN65"),
    ("SFLL-HD2 / ISCAS-85 / 65nm", "sfll", "iscas", 2, "GEN65"),
    ("SFLL-HD2 / ITC-99 / 65nm", "sfll", "itc", 2, "GEN65"),
    ("SFLL-HD2 / ITC-99 / 45nm", "sfll", "itc", 2, "GEN45"),
    ("SFLL-HD4 / ITC-99 / 65nm", "sfll", "itc", 4, "GEN65"),
    ("SFLL-HD16 / ISCAS-85 / 65nm (K=32)", "sfll", "iscas-corner", 16, "GEN65"),
]


def _run_table3() -> str:
    config = attack_config()
    iscas = ["c2670", "c3540", "c5315", "c7552"]
    itc = itc_benchmarks()
    rows = []
    for label, scheme, kind, h, tech in _ROWS:
        if kind == "iscas":
            benchmarks, key_sizes = iscas, config.iscas_key_sizes
        elif kind == "itc":
            if not itc:
                benchmarks, key_sizes = iscas, config.iscas_key_sizes
                label += " [ISCAS stand-in: quick profile]"
            else:
                benchmarks, key_sizes = itc, config.itc_key_sizes
        else:  # the ISCAS corner case uses K = 32, h = 16
            benchmarks, key_sizes = iscas, (32,)
        instances = generate_instances(
            scheme, benchmarks, key_sizes=key_sizes, h=h, config=config,
            technology=tech,
        )
        dataset = build_dataset(instances)
        summary = dataset.summary()
        rows.append(
            [label, summary["#Classes"], summary["|f|"], summary["#Nodes"],
             summary["#Circuits"]]
        )
    return format_table(["Dataset", "#Classes", "|f|", "#Nodes", "#Circuits"], rows)


@pytest.mark.benchmark(group="table3")
def test_table3_dataset_summary(benchmark):
    table = benchmark.pedantic(_run_table3, rounds=1, iterations=1)
    emit("table3_datasets", table)
    assert "| 13" in table and "| 34" in table and "| 18" in table
