"""Table III — summary of the generated datasets.

For every dataset row of the paper's Table III (scheme x suite x technology)
the harness schedules one ``dataset-summary`` task through the campaign
runner: the locked benchmarks are generated (or loaded from the shared
artifact cache — Table IV/V/VI reuse the same datasets) and the stored
record reports the number of circuits, nodes, classes and the
feature-vector length.
"""

from typing import List, Mapping, Optional, Sequence, Tuple

import pytest

from benchmarks.common import attack_config, emit, itc_benchmarks, run_bench_campaign
from repro.core import AttackConfig, format_table
from repro.runner import CampaignSpec

_ISCAS = ("c2670", "c3540", "c5315", "c7552")

_ROWS = [
    # (label, scheme, benchmarks-kind, h, technology)
    ("Anti-SAT / ISCAS-85 / bench", "antisat", "iscas", None, "BENCH8"),
    ("Anti-SAT / ITC-99 / bench", "antisat", "itc", None, "BENCH8"),
    ("TTLock / ISCAS-85 / 65nm", "ttlock", "iscas", None, "GEN65"),
    ("TTLock / ITC-99 / 65nm", "ttlock", "itc", None, "GEN65"),
    ("SFLL-HD2 / ISCAS-85 / 65nm", "sfll", "iscas", 2, "GEN65"),
    ("SFLL-HD2 / ITC-99 / 65nm", "sfll", "itc", 2, "GEN65"),
    ("SFLL-HD2 / ITC-99 / 45nm", "sfll", "itc", 2, "GEN45"),
    ("SFLL-HD4 / ITC-99 / 65nm", "sfll", "itc", 4, "GEN65"),
    ("SFLL-HD16 / ISCAS-85 / 65nm (K=32)", "sfll", "iscas-corner", 16, "GEN65"),
]


def table3_specs(
    config: AttackConfig,
    *,
    iscas: Sequence[str] = _ISCAS,
    itc: Optional[Sequence[str]] = None,
) -> Tuple[List[CampaignSpec], List[str]]:
    """One single-task ``dataset-summary`` campaign per Table III row.

    Returns ``(specs, row_labels)`` in row order.  With an empty ``itc``
    pool (the quick profile) the ITC rows fall back to the ISCAS stand-ins,
    mirroring the profile note in the rendered label.
    """
    iscas = list(iscas)
    itc = list(itc if itc is not None else itc_benchmarks())
    specs: List[CampaignSpec] = []
    labels: List[str] = []
    for label, scheme, kind, h, tech in _ROWS:
        suite = "ISCAS-85"
        if kind == "iscas":
            pool, key_sizes = iscas, config.iscas_key_sizes
        elif kind == "itc":
            if not itc:
                pool, key_sizes = iscas, config.iscas_key_sizes
                label += " [ISCAS stand-in: quick profile]"
            else:
                # Real ITC pool: the suite must be carried on the spec so the
                # dataset fingerprint matches Table VI's ITC campaigns (cache
                # sharing) and stored records aggregate under the right suite.
                pool, key_sizes, suite = itc, config.itc_key_sizes, "ITC-99"
        else:  # the ISCAS corner case uses K = 32, h = 16
            pool, key_sizes = iscas, (32,)
        scheme_text = scheme + (f":{h}" if h is not None else "") + f"@{tech}"
        specs.append(
            CampaignSpec(
                name="table3",
                schemes=(scheme_text,),
                suites=(suite,),
                benchmarks=tuple(pool),
                targets=(pool[0],),
                key_size_groups=(tuple(key_sizes),),
                attacks=("dataset-summary",),
                config=config,
            )
        )
        labels.append(label)
    return specs, labels


def render_table3(records: Sequence[Mapping], labels: Sequence[str]) -> str:
    rows = [
        [label, record["n_classes"], record["n_features"], record["n_nodes"],
         record["n_circuits"]]
        for label, record in zip(labels, records)
    ]
    return format_table(["Dataset", "#Classes", "|f|", "#Nodes", "#Circuits"], rows)


def _run_table3() -> str:
    specs, labels = table3_specs(attack_config())
    records = run_bench_campaign(specs, name="table3")
    return render_table3(records, labels)


@pytest.mark.benchmark(group="table3")
def test_table3_dataset_summary(benchmark):
    table = benchmark.pedantic(_run_table3, rounds=1, iterations=1)
    emit("table3_datasets", table)
    assert "| 13" in table and "| 34" in table and "| 18" in table
