"""Table VI — effect of the h value and the technology node, plus the corner
cases where the state-of-the-art attacks fail (Section V-D).

Rows mirror the paper: TTLock and SFLL-HD2 on two technologies, larger h
values, and the K/h = 2 corner-case datasets on which FALL and
SFLL-HD-Unlocked report zero keys while GNNUnlock recovers the design.
Every attack runs as a campaign task; the per-dataset averages come from
:func:`repro.runner.h_tech_table`, the ``aggregate()``-backed renderer that
groups stored records by (scheme, h, technology, suite).
"""

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import pytest

from benchmarks.common import (
    attack_config,
    emit,
    iscas_benchmarks,
    itc_benchmarks,
    run_bench_campaign,
)
from repro.core import AttackConfig, format_percent, format_table
from repro.runner import CampaignSpec, h_tech_table


def table6_specs(
    config: AttackConfig,
    *,
    iscas: Optional[Sequence[str]] = None,
    itc: Optional[Sequence[str]] = None,
    corner_key: int = 32,
    corner_h: int = 16,
) -> List[CampaignSpec]:
    """Campaigns producing Table VI's dataset rows (one task per target)."""
    iscas = tuple(iscas if iscas is not None else iscas_benchmarks())
    itc = tuple(itc if itc is not None else itc_benchmarks())
    specs = [
        CampaignSpec(
            name="table6",
            schemes=("ttlock@GEN45", "sfll:2@GEN45", "sfll:2@GEN65", "sfll:4@GEN65"),
            benchmarks=iscas,
            config=config,
        ),
        CampaignSpec(
            name="table6",
            schemes=(f"sfll:{corner_h}@GEN65",),
            benchmarks=iscas,
            key_size_groups=((corner_key,),),
            config=config,
        ),
    ]
    if itc:
        specs += [
            CampaignSpec(
                name="table6",
                suites=("ITC-99",),
                schemes=("ttlock@GEN65", "sfll:4@GEN65"),
                benchmarks=itc,
                config=config,
            ),
            CampaignSpec(
                name="table6",
                suites=("ITC-99",),
                schemes=("sfll:32@GEN65",),
                benchmarks=itc,
                key_size_groups=((64,),),
                config=config,
            ),
        ]
    return specs


def corner_case_specs(
    config: AttackConfig,
    *,
    benchmarks: Optional[Sequence[str]] = None,
    key_size: int = 32,
    h: int = 16,
) -> List[CampaignSpec]:
    """Section V-D: K/h = 2 bench-format designs, three attacks per target."""
    benchmarks = tuple(benchmarks if benchmarks is not None else iscas_benchmarks())
    return [
        CampaignSpec(
            name="table6-corner",
            schemes=(f"sfll:{h}@BENCH8",),
            benchmarks=benchmarks,
            key_size_groups=((key_size,),),
            attacks=("fall", "sfll-hd-unlocked", "gnnunlock"),
            config=config,
        )
    ]


def render_corner_cases(records: Sequence[Mapping]) -> str:
    """Per-design comparison of FALL / SFLL-HD-Unlocked / GNNUnlock."""
    by: Dict[Tuple[str, str], Mapping] = {
        (str(r["attack"]), str(r["target"])): r for r in records
    }
    targets: List[str] = []
    for record in records:
        if record["attack"] == "gnnunlock" and record["target"] not in targets:
            targets.append(str(record["target"]))

    def keys_found(attack: str, target: str) -> str:
        success = bool(by.get((attack, target), {}).get("baseline_success"))
        return "key recovered" if success else "0 keys"

    rows = []
    for target in targets:
        gnn = by[("gnnunlock", target)]
        key_size = gnn["key_sizes"][0]
        rows.append(
            [
                f"{target} (K={key_size}, h={gnn['h']})",
                keys_found("fall", target),
                keys_found("sfll-hd-unlocked", target),
                format_percent(float(gnn["removal_success_rate"])),
            ]
        )
    return format_table(
        ["Design", "FALL", "SFLL-HD-Unlocked", "GNNUnlock removal (%)"], rows
    )


def _run_table6() -> str:
    records = run_bench_campaign(table6_specs(attack_config()), name="table6")
    return h_tech_table(records)


def _run_corner_cases() -> str:
    records = run_bench_campaign(
        corner_case_specs(attack_config()), name="table6-corner"
    )
    return render_corner_cases(records)


@pytest.mark.benchmark(group="table6")
def test_table6_h_and_technology(benchmark):
    table = benchmark.pedantic(_run_table6, rounds=1, iterations=1)
    emit("table6_h_and_tech", table)
    assert "SFLL-HD16" in table


@pytest.mark.benchmark(group="table6")
def test_table6_corner_cases_vs_prior_attacks(benchmark):
    table = benchmark.pedantic(_run_corner_cases, rounds=1, iterations=1)
    emit("table6_corner_cases", table)
    assert "0 keys" in table
